//! Offline, API-compatible subset of the `bytes` crate: just enough of
//! `Bytes`, `BytesMut`, and `BufMut` for this workspace, so builds never
//! need the network. Cheap-clone semantics are preserved (shared
//! `Arc<[u8]>` storage; static slices are borrowed, not copied).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Bytes {
        Bytes {
            inner: Inner::Static(&[]),
        }
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            inner: Inner::Static(data),
        }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            inner: Inner::Shared(Arc::from(data)),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copy the range `at..` into a new buffer (subset of the real
    /// `slice` API used here).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.as_slice()[range])
    }

    /// A plain `Vec` copy of the contents.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            inner: Inner::Shared(Arc::from(v)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from_static(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data)
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional)
    }

    /// Truncate to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.vec.truncate(len)
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.vec), f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> BytesMut {
        BytesMut { vec }
    }
}

/// Append-only writer trait (big-endian put methods, as in the real
/// crate).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u128.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_and_equality() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b, Bytes::copy_from_slice(b"hello"));
        assert_eq!(&b[1..3], b"el");
        let c = b.clone();
        assert_eq!(c.to_vec(), b"hello".to_vec());
    }

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u16(0x0203);
        m.put_u32(0x0405_0607);
        m.put_slice(b"xy");
        m[0] = 9;
        assert_eq!(m.len(), 9);
        let frozen = m.freeze();
        assert_eq!(&frozen[..], &[9, 2, 3, 4, 5, 6, 7, b'x', b'y']);
    }
}
