//! Offline, API-compatible subset of the `crossbeam` crate: scoped
//! threads (`crossbeam::thread::scope`) layered over `std::thread::scope`,
//! and bounded/unbounded MPMC channels (`crossbeam::channel`) built on
//! `Mutex`/`Condvar`. Just enough surface for this workspace to build
//! without the network.

/// Scoped threads, in the crossbeam 0.8 shape (`scope` returns a
/// `Result`, `spawn` closures receive the scope).
pub mod thread {
    use std::any::Any;

    /// A scope handle; passed to `scope`'s closure and to every spawned
    /// closure, so workers can spawn siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope whose threads all join before returning.
    ///
    /// The real crossbeam returns `Err` with the set of panics from
    /// unjoined threads; `std::thread::scope` propagates such panics
    /// instead, so here a clean return is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// MPMC channels in the crossbeam shape (`bounded`, `try_send`, receiver
/// iteration, disconnect-on-drop).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiver disconnected; the value comes back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error from [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    /// All senders dropped and the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    /// Create a channel with unbounded buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued (or every receiver is gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.cap.map(|c| st.queue.len() >= c).unwrap_or(false);
                if !full {
                    st.queue.push_back(value);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }

        /// Enqueue without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let full = st.cap.map(|c| st.queue.len() >= c).unwrap_or(false);
            if full {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TrySendError};

    #[test]
    fn scoped_threads_fan_out_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn bounded_channel_backpressures_and_disconnects() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        match tx.try_send(3) {
            Err(TrySendError::Full(3)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(tx);
        let rest: Vec<u32> = rx.iter().collect();
        assert_eq!(rest, vec![2, 3]);
    }

    #[test]
    fn producer_consumer_across_threads() {
        let (tx, rx) = bounded::<u64>(4);
        let sum = super::thread::scope(|s| {
            let consumer = s.spawn(move |_| rx.iter().sum::<u64>());
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            consumer.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 499_500);
    }
}
