//! Offline, API-compatible subset of the `rand` crate covering what this
//! workspace uses: `StdRng` (xoshiro256** core), the `Rng`/`SeedableRng`
//! traits with `gen`/`gen_range`/`gen_bool`, `distributions::WeightedIndex`,
//! and `seq::SliceRandom`.
//!
//! The streams differ from upstream `rand`'s `StdRng` (different core
//! generator), but are fully deterministic for a given seed, which is the
//! property the workspace relies on.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generator interface.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random-value generation for `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types `gen_range` can sample uniformly. Implemented per scalar type;
/// the range impls below are generic over it so integer-literal inference
/// flows through `gen_range(0..3_600)` exactly as with the real crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform value in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        lo + f64::draw(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        lo + f64::draw(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        lo + f32::draw(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        lo + f32::draw(rng) * (hi - lo)
    }
}

/// Uniform sampling from range types, for `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, auto-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }

    /// Sample from a distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fill a slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256** core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn fix_zero(mut s: [u64; 4]) -> [u64; 4] {
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            s
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            StdRng {
                s: Self::fix_zero(s),
            }
        }

        fn seed_from_u64(state: u64) -> StdRng {
            let mut x = state;
            let s = [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ];
            StdRng {
                s: Self::fix_zero(s),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions (the subset used: `WeightedIndex` over f64 weights).
pub mod distributions {
    use super::RngCore;

    /// A sampleable distribution over `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }

    /// Error from constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were provided.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights are zero.
        AllWeightsZero,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no items in weighted index"),
                WeightedError::InvalidWeight => write!(f, "invalid weight"),
                WeightedError::AllWeightsZero => write!(f, "all weights zero"),
            }
        }
    }
    impl std::error::Error for WeightedError {}

    /// Sample indices proportionally to a weight list.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex<X> {
        cumulative: Vec<X>,
    }

    impl WeightedIndex<f64> {
        /// Build from an iterator of non-negative weights.
        pub fn new<I>(weights: I) -> Result<WeightedIndex<f64>, WeightedError>
        where
            I: IntoIterator,
            I::Item: std::borrow::Borrow<f64>,
        {
            use std::borrow::Borrow;
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative })
        }
    }

    impl Distribution<usize> for WeightedIndex<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let total = *self.cumulative.last().expect("non-empty");
            let u = <f64 as super::Standard>::draw(rng);
            let target = total * u;
            // First cumulative weight strictly above the target.
            match self
                .cumulative
                .binary_search_by(|c: &f64| c.partial_cmp(&target).expect("finite"))
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(29_000..61_000);
            assert!((29_000..61_000).contains(&v));
            let w = rng.gen_range(1..=200u32);
            assert!((1..=200).contains(&w));
            let t = rng.gen_range(-11i32..13);
            assert!((-11..13).contains(&t));
            let f = rng.gen_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let wi = WeightedIndex::new([1.0, 0.0, 9.0]).unwrap();
        let mut counts = [0u32; 3];
        for _ in 0..5000 {
            counts[wi.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "{counts:?}");
        assert!(WeightedIndex::new(std::iter::empty::<f64>()).is_err());
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::new([-1.0]).is_err());
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
