//! Offline, API-compatible subset of the `proptest` crate: the
//! `proptest!` macro, `Strategy` with `prop_map`, `prop_oneof!`, `Just`,
//! `any`, numeric-range and collection strategies, and panic-based
//! `prop_assert*` macros.
//!
//! No shrinking: a failing case panics with the generated inputs'
//! deterministic seed, and every run replays the same cases (seeding is
//! derived from the test name, not from time).

/// Test-runner types: the deterministic RNG and the config accepted by
/// `#![proptest_config(...)]`.
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases. An explicit
        /// `PROPTEST_CASES` environment variable still wins, so CI can
        /// pin (or a developer can crank) the case count globally.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: env_cases().unwrap_or(64),
            }
        }
    }

    /// `PROPTEST_CASES`, when set and parseable.
    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    /// Deterministic generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (the test name). A
        /// `PROPTEST_SEED` environment variable, when set, is folded into
        /// the stream so CI can pin the generation seed explicitly (and a
        /// developer can explore alternate streams) while different tests
        /// still draw distinct sequences.
        pub fn from_name(name: &str) -> TestRng {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                state ^= u64::from(b);
                state = state.wrapping_mul(0x1000_0000_01b3);
            }
            if let Some(seed) = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
            {
                state ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in [0, bound).
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0);
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Box the strategy (for heterogeneous collections).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<V> {
        /// The alternatives.
        pub options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (lo + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64 + rng.next_f64() * (self.end - self.start) as f64) as f32
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The "any value of `T`" strategy.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// Either boolean, uniformly.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// A vector of `elem` values, with a length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = self.len.start + rng.below(span.max(1));
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            options: vec![$(Box::new($strat) as $crate::strategy::BoxedStrategy<_>),+],
        }
    };
}

/// Assert inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Define property tests. Each `fn name(x in strategy, ...) { ... }`
/// becomes a test running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_and_maps_compose(
            x in 1u8..=255,
            y in -11i32..13,
            f in 0.0..0.5f64,
            e in arb_even(),
            v in crate::collection::vec(any::<u8>(), 0..10),
            b in crate::bool::ANY,
            which in prop_oneof![Just(1u8), Just(2u8), 5u8..7],
        ) {
            prop_assert!(x >= 1);
            prop_assert!((-11..13).contains(&y));
            prop_assert!((0.0..0.5).contains(&f));
            prop_assert_eq!(e % 2, 0);
            prop_assert!(v.len() < 10);
            prop_assert!((b as u8) < 2);
            prop_assert!(which == 1u8 || which == 2u8 || which == 5u8 || which == 6u8);
            prop_assert_ne!(f, 0.75);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_caps_cases(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
