//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Measurements are intentionally lightweight: each benchmark is warmed
//! up briefly, then timed for a fixed budget, and a single
//! `group/name  time: [median]  thrpt: [...]` line is printed. That keeps
//! `cargo bench` runs fast while still producing comparable numbers.

use std::time::{Duration, Instant};

/// Opaque value sink (defeats dead-code elimination).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by this harness).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Top-level harness handle.
pub struct Criterion {
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measure_budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accept (and ignore) CLI arguments, as the real harness does.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Print the closing summary (a no-op here).
    pub fn final_summary(&self) {}

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
            budget: self.measure_budget,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.measure_budget;
        run_benchmark(name, None, budget, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    budget: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; this harness is time-budgeted, not
    /// sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d.min(Duration::from_secs(2));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.throughput, self.budget, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_benchmark<F>(name: &str, throughput: Option<Throughput>, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        budget,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.total / (b.iters as u32).max(1)
    } else {
        Duration::ZERO
    };
    let mut line = format!(
        "{name:<40} time: [{per_iter:>12.3?}/iter, {} iters]",
        b.iters
    );
    if let Some(t) = throughput {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {:.0} elem/s", n as f64 / secs))
                }
                Throughput::Bytes(n) => line.push_str(&format!(
                    "  thrpt: {:.2} MiB/s",
                    n as f64 / secs / (1024.0 * 1024.0)
                )),
            }
        }
    }
    println!("{line}");
}

/// Handle passed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time a routine repeatedly within the measurement budget.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warmup.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters.max(1);
    }

    /// Time a routine with per-batch setup excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while wall.elapsed() < self.budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.total = measured;
        self.iters = iters.max(1);
    }
}

/// Group benchmark functions into one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            measure_budget: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(ran > 0);
    }
}
