#![warn(missing_docs)]

//! # tamper-obs
//!
//! The pipeline's observability layer: named counters, gauges, monotonic
//! stage timers, and fixed-bucket latency histograms, grouped into
//! per-component **scopes** (`reader`, `shard<i>`, `merge`, `offline`,
//! `report`).
//!
//! # Determinism containment
//!
//! The repo's headline guarantee is that the same capture bytes produce
//! the same report bytes at any shard count. Metric *values* are
//! inherently nondeterministic (they measure wall time and scheduling),
//! so the whole layer is built to keep them structurally out of the
//! deterministic output:
//!
//! - this crate is the **only** pipeline crate allowed to read the wall
//!   clock (`tamperlint`'s `ambient-clock` and `clock-containment` rules
//!   enforce that everything else reaches clocks through [`Stopwatch`]);
//! - metrics travel through a side [`Registry`], never through the
//!   engine's fold/merge accumulators, and are emitted to a *separate*
//!   file/stream (`--metrics-json`), never interleaved with verdicts or
//!   the byte-compared summary line;
//! - when no registry is attached every instrument is disabled: a
//!   disabled [`Stopwatch`] never touches `Instant::now`, so the
//!   unobserved hot path pays no clock reads at all.
//!
//! # Allocation frugality
//!
//! Instrument names are `&'static str` and live in small linear-scan
//! vectors (a scope has a handful of instruments — a linear scan beats a
//! hash map and allocates only on first use of a name). Histograms carry
//! fixed bucket bounds, so recording a sample is a branchless-ish scan
//! plus one add. The only per-scope allocations are the scope name and
//! one vector per instrument kind.

use std::sync::Mutex;
use std::time::Instant;

/// Fixed latency bucket upper bounds in nanoseconds (the last bucket in a
/// [`Histogram`] is the implicit overflow bucket above the final bound).
///
/// Chosen for per-flow classification work: sub-microsecond through
/// 100 ms, roughly geometric.
pub const LATENCY_BUCKETS_NS: [u64; 12] = [
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    10_000_000,
    100_000_000,
];

/// A monotonic stage timer handle. Started from a [`ScopeMetrics`];
/// disabled scopes hand out disabled stopwatches that never read the
/// clock.
///
/// This is the single sanctioned wall-clock entry point for pipeline
/// crates: everything outside `tamper-obs` is forbidden (by the
/// `clock-containment` lint rule) from touching `std::time::Instant` /
/// `SystemTime` directly.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// A stopwatch that never reads the clock and records nothing.
    pub fn disabled() -> Stopwatch {
        Stopwatch(None)
    }

    /// Start a running stopwatch (reads the monotonic clock).
    pub fn start() -> Stopwatch {
        Stopwatch(Some(Instant::now()))
    }

    /// Nanoseconds since start, or `None` for a disabled stopwatch.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0.map(|t| {
            let n = t.elapsed().as_nanos();
            u64::try_from(n).unwrap_or(u64::MAX)
        })
    }
}

/// Aggregated samples of one named stage timer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerStat {
    /// Number of recorded intervals.
    pub count: u64,
    /// Total nanoseconds across all intervals.
    pub total_ns: u64,
}

/// A fixed-bucket histogram: counts per bucket bound in
/// [`Histogram::bounds`], plus one overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Upper bounds (inclusive) of each bucket, ascending.
    pub bounds: &'static [u64],
    /// One count per bound, plus the trailing overflow bucket
    /// (`counts.len() == bounds.len() + 1`).
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub total: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Histogram {
    /// An empty histogram over the given bounds.
    pub fn new(bounds: &'static [u64]) -> Histogram {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            total: 0,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.count += 1;
        self.total = self.total.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram (same bounds) into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.bounds != other.bounds {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
    }
}

/// The metrics of one pipeline scope (`reader`, `shard<i>`, `merge`,
/// `offline`, `report`), owned by a single thread and published to a
/// [`Registry`] when the scope's work is done.
#[derive(Debug)]
pub struct ScopeMetrics {
    name: String,
    enabled: bool,
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, u64)>,
    timers: Vec<(&'static str, TimerStat)>,
    histograms: Vec<(&'static str, Histogram)>,
}

fn slot<'a, T: Default>(items: &'a mut Vec<(&'static str, T)>, name: &'static str) -> &'a mut T {
    if let Some(i) = items.iter().position(|(n, _)| *n == name) {
        return &mut items[i].1;
    }
    items.push((name, T::default()));
    let last = items.len() - 1;
    &mut items[last].1
}

impl ScopeMetrics {
    /// An enabled scope (normally obtained via [`Registry::scope`]).
    pub fn new(name: impl Into<String>) -> ScopeMetrics {
        ScopeMetrics {
            name: name.into(),
            enabled: true,
            counters: Vec::new(),
            gauges: Vec::new(),
            timers: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// A disabled scope: every instrument is a no-op and no clock is ever
    /// read. Lets call sites thread one `&mut ScopeMetrics` through
    /// unconditionally.
    pub fn disabled() -> ScopeMetrics {
        ScopeMetrics {
            name: String::new(),
            enabled: false,
            counters: Vec::new(),
            gauges: Vec::new(),
            timers: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Scope name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True when instruments record (scope came from a registry).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Add `n` to a named counter.
    pub fn count(&mut self, name: &'static str, n: u64) {
        if self.enabled {
            *slot(&mut self.counters, name) += n;
        }
    }

    /// Set a named gauge to `v`.
    pub fn gauge_set(&mut self, name: &'static str, v: u64) {
        if self.enabled {
            *slot(&mut self.gauges, name) = v;
        }
    }

    /// Raise a named gauge to at least `v` (high-water-mark semantics).
    pub fn gauge_max(&mut self, name: &'static str, v: u64) {
        if self.enabled {
            let g = slot(&mut self.gauges, name);
            *g = (*g).max(v);
        }
    }

    /// Start a stage timer; disabled scopes return a disabled stopwatch
    /// (no clock read).
    pub fn start(&self) -> Stopwatch {
        if self.enabled {
            Stopwatch::start()
        } else {
            Stopwatch::disabled()
        }
    }

    /// Stop `sw` and fold the interval into the named stage timer.
    pub fn stop(&mut self, name: &'static str, sw: Stopwatch) {
        if let Some(ns) = sw.elapsed_ns() {
            self.record_timer(name, ns);
        }
    }

    /// Fold a raw interval (nanoseconds) into the named stage timer.
    /// Useful when one clock read feeds several instruments.
    pub fn record_timer(&mut self, name: &'static str, ns: u64) {
        if !self.enabled {
            return;
        }
        let t = slot(&mut self.timers, name);
        t.count += 1;
        t.total_ns = t.total_ns.saturating_add(ns);
    }

    /// Stop `sw` and record the interval into the named latency histogram
    /// (buckets: [`LATENCY_BUCKETS_NS`]).
    pub fn stop_hist(&mut self, name: &'static str, sw: Stopwatch) {
        if let Some(ns) = sw.elapsed_ns() {
            self.record_hist(name, ns);
        }
    }

    /// Record a raw sample into the named latency histogram.
    pub fn record_hist(&mut self, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        if let Some(i) = self.histograms.iter().position(|(n, _)| *n == name) {
            self.histograms[i].1.record(value);
            return;
        }
        let mut h = Histogram::new(&LATENCY_BUCKETS_NS);
        h.record(value);
        self.histograms.push((name, h));
    }

    fn fold_into(self, other: &mut ScopeMetrics) {
        for (n, v) in self.counters {
            *slot(&mut other.counters, n) += v;
        }
        for (n, v) in self.gauges {
            let g = slot(&mut other.gauges, n);
            *g = (*g).max(v);
        }
        for (n, v) in self.timers {
            let t = slot(&mut other.timers, n);
            t.count += v.count;
            t.total_ns = t.total_ns.saturating_add(v.total_ns);
        }
        for (n, h) in self.histograms {
            if let Some(i) = other.histograms.iter().position(|(on, _)| *on == n) {
                other.histograms[i].1.merge(&h);
            } else {
                other.histograms.push((n, h));
            }
        }
    }
}

/// A thread-safe sink for published [`ScopeMetrics`]. Scopes are built
/// and mutated lock-free on their owning thread; the registry's mutex is
/// taken once per scope, at publish time.
#[derive(Debug, Default)]
pub struct Registry {
    scopes: Mutex<Vec<ScopeMetrics>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Create an enabled scope bound (by convention) to this registry.
    /// The caller owns it until [`Registry::publish`].
    pub fn scope(&self, name: impl Into<String>) -> ScopeMetrics {
        ScopeMetrics::new(name)
    }

    /// Hand a finished scope back. Scopes published under the same name
    /// fold together (counters/timers/histograms sum, gauges take max).
    pub fn publish(&self, scope: ScopeMetrics) {
        if !scope.enabled {
            return;
        }
        let mut guard = match self.scopes.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(existing) = guard.iter_mut().find(|s| s.name == scope.name) {
            scope.fold_into(existing);
        } else {
            guard.push(scope);
        }
    }

    /// A deterministic-order snapshot of everything published so far.
    /// Scope order is a natural sort (`shard2` before `shard10`), and
    /// instruments within a scope sort by name — so two runs that record
    /// the same instruments produce structurally identical documents
    /// (only the measured *values* differ).
    pub fn snapshot(&self) -> Snapshot {
        let guard = match self.scopes.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut scopes: Vec<ScopeSnapshot> = guard
            .iter()
            .map(|s| {
                let mut counters: Vec<(String, u64)> = s
                    .counters
                    .iter()
                    .map(|(n, v)| (n.to_string(), *v))
                    .collect();
                counters.sort();
                let mut gauges: Vec<(String, u64)> =
                    s.gauges.iter().map(|(n, v)| (n.to_string(), *v)).collect();
                gauges.sort();
                let mut timers: Vec<(String, TimerStat)> =
                    s.timers.iter().map(|(n, v)| (n.to_string(), *v)).collect();
                timers.sort_by(|a, b| a.0.cmp(&b.0));
                let mut histograms: Vec<(String, Histogram)> = s
                    .histograms
                    .iter()
                    .map(|(n, h)| (n.to_string(), h.clone()))
                    .collect();
                histograms.sort_by(|a, b| a.0.cmp(&b.0));
                ScopeSnapshot {
                    scope: s.name.clone(),
                    counters,
                    gauges,
                    timers,
                    histograms,
                }
            })
            .collect();
        scopes.sort_by_key(|a| natural_key(&a.scope));
        Snapshot { scopes }
    }
}

/// Natural-sort key: the name with any trailing digits split off as a
/// number, so `shard2` orders before `shard10`.
fn natural_key(name: &str) -> (String, u64) {
    let digits = name
        .bytes()
        .rev()
        .take_while(|b| b.is_ascii_digit())
        .count();
    let split = name.len() - digits;
    let n = name[split..].parse().unwrap_or(0);
    (name[..split].to_string(), n)
}

/// An immutable, deterministically ordered view of a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Scopes in natural-sorted name order.
    pub scopes: Vec<ScopeSnapshot>,
}

impl Snapshot {
    /// Find a scope by exact name.
    pub fn scope(&self, name: &str) -> Option<&ScopeSnapshot> {
        self.scopes.iter().find(|s| s.scope == name)
    }

    /// Sum of a counter across every scope whose name starts with
    /// `scope_prefix`.
    pub fn counter_sum(&self, scope_prefix: &str, counter: &str) -> u64 {
        self.scopes
            .iter()
            .filter(|s| s.scope.starts_with(scope_prefix))
            .map(|s| s.counter(counter))
            .sum()
    }
}

/// One scope inside a [`Snapshot`], instruments sorted by name.
#[derive(Debug, Clone)]
pub struct ScopeSnapshot {
    /// Scope name (`reader`, `shard0`, …).
    pub scope: String,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Stage timers, sorted by name.
    pub timers: Vec<(String, TimerStat)>,
    /// Latency histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl ScopeSnapshot {
    /// Counter value (0 when never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Gauge value (0 when never recorded).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Timer statistics, if the stage ever ran.
    pub fn timer(&self, name: &str) -> Option<TimerStat> {
        self.timers.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_accumulate() {
        let mut s = ScopeMetrics::new("reader");
        s.count("records", 3);
        s.count("records", 2);
        s.gauge_max("occupancy", 7);
        s.gauge_max("occupancy", 4);
        s.gauge_set("threads", 8);
        let reg = Registry::new();
        reg.publish(s);
        let snap = reg.snapshot();
        let r = snap.scope("reader").unwrap();
        assert_eq!(r.counter("records"), 5);
        assert_eq!(r.gauge("occupancy"), 7);
        assert_eq!(r.gauge("threads"), 8);
        assert_eq!(r.counter("never"), 0);
    }

    #[test]
    fn disabled_scope_records_nothing_and_skips_the_clock() {
        let mut s = ScopeMetrics::disabled();
        s.count("records", 9);
        s.gauge_max("occupancy", 9);
        let sw = s.start();
        assert!(sw.elapsed_ns().is_none(), "disabled stopwatch read a clock");
        s.stop("stage", sw);
        s.stop_hist("lat", sw);
        let reg = Registry::new();
        reg.publish(s);
        assert!(reg.snapshot().scopes.is_empty());
    }

    #[test]
    fn timers_and_histograms_record_real_time() {
        let reg = Registry::new();
        let mut s = reg.scope("shard0");
        let sw = s.start();
        std::hint::black_box((0..1000).sum::<u64>());
        s.stop("parse", sw);
        s.record_hist("classify_ns", 750);
        s.record_hist("classify_ns", 3_000);
        s.record_hist("classify_ns", u64::MAX / 2);
        reg.publish(s);
        let snap = reg.snapshot();
        let sh = snap.scope("shard0").unwrap();
        let t = sh.timer("parse").unwrap();
        assert_eq!(t.count, 1);
        let h = sh.histogram("classify_ns").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.max, u64::MAX / 2);
        // 750 lands in the ≤1000 bucket, 3000 in ≤5000, huge in overflow.
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.counts[LATENCY_BUCKETS_NS.len()], 1);
    }

    #[test]
    fn same_name_scopes_fold_and_order_is_natural() {
        let reg = Registry::new();
        for i in [10usize, 2, 0] {
            let mut s = reg.scope(format!("shard{i}"));
            s.count("flows", 1);
            s.gauge_max("occupancy", i as u64);
            reg.publish(s);
        }
        let mut again = reg.scope("shard2");
        again.count("flows", 4);
        again.gauge_max("occupancy", 1);
        reg.publish(again);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.scopes.iter().map(|s| s.scope.as_str()).collect();
        assert_eq!(names, vec!["shard0", "shard2", "shard10"]);
        let s2 = snap.scope("shard2").unwrap();
        assert_eq!(s2.counter("flows"), 5);
        assert_eq!(s2.gauge("occupancy"), 2, "gauge folds by max");
        assert_eq!(snap.counter_sum("shard", "flows"), 7);
    }

    #[test]
    fn histogram_merge_requires_matching_bounds() {
        let mut a = Histogram::new(&LATENCY_BUCKETS_NS);
        a.record(100);
        static OTHER: [u64; 1] = [10];
        let b = Histogram::new(&OTHER);
        a.merge(&b); // silently ignored
        assert_eq!(a.count, 1);
        let mut c = Histogram::new(&LATENCY_BUCKETS_NS);
        c.record(1);
        a.merge(&c);
        assert_eq!(a.count, 2);
    }

    #[test]
    fn snapshot_instruments_are_sorted() {
        let reg = Registry::new();
        let mut s = reg.scope("merge");
        s.count("zeta", 1);
        s.count("alpha", 1);
        reg.publish(s);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap
            .scope("merge")
            .unwrap()
            .counters
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
