//! The DPI trigger engine: what a tampering middlebox looks for.
//!
//! Real censors key on destination IPs (SYN stage), cleartext domain names
//! (TLS SNI / HTTP Host, first-data stage), and keywords anywhere in
//! cleartext payloads (later-data stage). Substring rules model the
//! over-blocking the paper discusses (e.g. Turkmenistan blocking every
//! domain containing `wn.com`).

use std::collections::HashSet;
use std::net::IpAddr;
use tamper_wire::{http, tls, Packet};

/// What part of the packet matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchReason {
    /// Destination IP is on the block list (SYN-stage trigger).
    BlockedIp(IpAddr),
    /// The middlebox blocks every connection it can see (blanket ban).
    BlanketBan,
    /// An exact domain-name rule hit (`domain`).
    Domain(String),
    /// A substring rule hit: `rule` matched within `domain`.
    DomainSubstring {
        /// The configured substring rule.
        rule: String,
        /// The observed domain it matched in.
        domain: String,
    },
    /// A payload keyword hit.
    Keyword(String),
}

/// A middlebox rule set.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    /// Exact destination IPs to block at SYN time.
    pub blocked_ips: HashSet<IpAddr>,
    /// If true, every connection traversing the box triggers at SYN time
    /// (blanket CDN bans as observed from Turkmenistan).
    pub blanket_ban: bool,
    /// Exact (lowercased) domain names to block on first data.
    pub blocked_domains: HashSet<String>,
    /// Substring rules over domain names (lowercased).
    pub domain_substrings: Vec<String>,
    /// Keywords matched case-insensitively anywhere in any cleartext
    /// payload.
    pub keywords: Vec<String>,
}

impl RuleSet {
    /// A rule set blocking exactly these domains.
    pub fn domains<I: IntoIterator<Item = S>, S: Into<String>>(domains: I) -> RuleSet {
        RuleSet {
            blocked_domains: domains
                .into_iter()
                .map(|d| d.into().to_ascii_lowercase())
                .collect(),
            ..Default::default()
        }
    }

    /// A blanket-ban rule set.
    pub fn blanket() -> RuleSet {
        RuleSet {
            blanket_ban: true,
            ..Default::default()
        }
    }

    /// Evaluate a SYN packet (stage: connection open).
    pub fn match_syn(&self, pkt: &Packet) -> Option<MatchReason> {
        if self.blanket_ban {
            return Some(MatchReason::BlanketBan);
        }
        let dst = pkt.ip.dst();
        if self.blocked_ips.contains(&dst) {
            return Some(MatchReason::BlockedIp(dst));
        }
        None
    }

    /// Extract the domain a DPI box would see in a first data packet:
    /// the TLS SNI or the HTTP Host header.
    pub fn extract_domain(payload: &[u8]) -> Option<String> {
        if tls::is_client_hello(payload) {
            // tamperlint: allow(discarded-wire-error) — DPI boxes drop unparsable ClientHellos silently; mirroring that is the point
            return tls::parse_sni(payload).ok().flatten();
        }
        // tamperlint: allow(discarded-wire-error) — DPI boxes drop unparsable requests silently; mirroring that is the point
        http::parse_request(payload).ok().and_then(|r| r.host)
    }

    /// Evaluate a first data packet (stage: request visible).
    pub fn match_first_data(&self, payload: &[u8]) -> Option<MatchReason> {
        if self.blanket_ban {
            return Some(MatchReason::BlanketBan);
        }
        let domain = Self::extract_domain(payload)?;
        let lower = domain.to_ascii_lowercase();
        if self.blocked_domains.contains(&lower) {
            return Some(MatchReason::Domain(lower));
        }
        for rule in &self.domain_substrings {
            if lower.contains(rule.as_str()) {
                return Some(MatchReason::DomainSubstring {
                    rule: rule.clone(),
                    domain: lower,
                });
            }
        }
        // Keyword rules also apply to the first packet (HTTP GET lines).
        self.match_keywords(payload)
    }

    /// Evaluate any cleartext payload for keyword rules.
    pub fn match_keywords(&self, payload: &[u8]) -> Option<MatchReason> {
        for kw in &self.keywords {
            if http::contains_keyword(payload, kw) {
                return Some(MatchReason::Keyword(kw.clone()));
            }
        }
        None
    }

    /// True if the rule set can never fire.
    pub fn is_empty(&self) -> bool {
        !self.blanket_ban
            && self.blocked_ips.is_empty()
            && self.blocked_domains.is_empty()
            && self.domain_substrings.is_empty()
            && self.keywords.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tamper_wire::{PacketBuilder, TcpFlags};

    fn syn_to(dst: IpAddr) -> Packet {
        PacketBuilder::new(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)), dst, 1, 443)
            .flags(TcpFlags::SYN)
            .build()
    }

    #[test]
    fn ip_rule_matches_syn() {
        let dst = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
        let mut rules = RuleSet::default();
        rules.blocked_ips.insert(dst);
        assert_eq!(
            rules.match_syn(&syn_to(dst)),
            Some(MatchReason::BlockedIp(dst))
        );
        let other = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 2));
        assert_eq!(rules.match_syn(&syn_to(other)), None);
    }

    #[test]
    fn blanket_ban_matches_everything() {
        let rules = RuleSet::blanket();
        let dst = IpAddr::V4(Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(rules.match_syn(&syn_to(dst)), Some(MatchReason::BlanketBan));
        assert_eq!(
            rules.match_first_data(b"anything"),
            Some(MatchReason::BlanketBan)
        );
    }

    #[test]
    fn sni_domain_rule() {
        let rules = RuleSet::domains(["Blocked.Example.COM"]);
        let hello = tls::build_client_hello("blocked.example.com", [0u8; 32]);
        assert_eq!(
            rules.match_first_data(&hello),
            Some(MatchReason::Domain("blocked.example.com".into()))
        );
        let ok = tls::build_client_hello("fine.example.com", [0u8; 32]);
        assert_eq!(rules.match_first_data(&ok), None);
    }

    #[test]
    fn host_header_rule() {
        let rules = RuleSet::domains(["blocked.example.com"]);
        let get = http::build_get("blocked.example.com", "/", "ua");
        assert!(rules.match_first_data(&get).is_some());
    }

    #[test]
    fn substring_rule_over_blocks() {
        let mut rules = RuleSet::default();
        rules.domain_substrings.push("wn.com".into());
        let hello = tls::build_client_hello("cnn-breakingnewn.com", [0u8; 32]);
        match rules.match_first_data(&hello) {
            Some(MatchReason::DomainSubstring { rule, domain }) => {
                assert_eq!(rule, "wn.com");
                assert_eq!(domain, "cnn-breakingnewn.com");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keyword_rule_matches_any_payload() {
        let mut rules = RuleSet::default();
        rules.keywords.push("forbidden-topic".into());
        let post = http::build_post("x.example", "/up", "ua", "about Forbidden-Topic today");
        assert_eq!(
            rules.match_keywords(&post),
            Some(MatchReason::Keyword("forbidden-topic".into()))
        );
        assert_eq!(rules.match_keywords(b"innocuous"), None);
    }

    #[test]
    fn no_domain_no_match() {
        let rules = RuleSet::domains(["a.example"]);
        assert_eq!(rules.match_first_data(b"\x00\x01binary"), None);
    }

    #[test]
    fn empty_detection() {
        assert!(RuleSet::default().is_empty());
        assert!(!RuleSet::blanket().is_empty());
        assert!(!RuleSet::domains(["x"]).is_empty());
    }
}
