#![warn(missing_docs)]

//! # tamper-middlebox
//!
//! Models of tampering middleboxes: the DPI trigger engine ([`RuleSet`]),
//! injection/drop action specifications ([`spec`]), the generic
//! [`TamperingMiddlebox`] hop, and [`Vendor`] profiles that regenerate each
//! of the paper's 19 tampering signatures.
//!
//! The guiding principle is the paper's observation that tampering
//! signatures come from a *small set of distinct vendor behaviours*:
//! how many tear-down packets are forged, RST vs RST+ACK, acknowledgement
//! strategies (exact / zero / window-guessing), whether the triggering
//! packet is dropped (in-path) or passed (on-path), and the injector's own
//! network-stack quirks (IP-ID and TTL initialization) that the paper's
//! §4.3 evidence detects.

pub mod rules;
pub mod spec;
pub mod stealth;
pub mod tamperbox;
pub mod vendors;

pub use rules::{MatchReason, RuleSet};
pub use spec::{
    AckStrategy, InjectorStack, RstKind, RstSpec, TamperAction, TriggerStages, TtlMode,
};
pub use stealth::StealthHijacker;
pub use tamperbox::{ForcedStage, TamperingMiddlebox};
pub use vendors::{Vendor, ALL_VENDORS};
