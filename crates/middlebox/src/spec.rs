//! Specifications of what a tampering middlebox does when it fires: which
//! tear-down packets it forges, with which acknowledgement strategy, and
//! with which network-stack quirks (IP-ID, TTL) — the quirks are exactly
//! what the paper's §4.3 evidence detects.

use tamper_netsim::{IpIdMode, SimDuration};

/// RST flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RstKind {
    /// Bare RST.
    Rst,
    /// RST+ACK.
    RstAck,
}

/// How the injector fills the acknowledgement number of a forged RST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStrategy {
    /// Use the best current estimate of the peer's next sequence number.
    Exact,
    /// Hard zero — produces the paper's novel `RST;RST₀` signature.
    Zero,
    /// Estimate plus `offset` — ack-guessing middleboxes (Weaver et al.)
    /// that fire several RSTs at successive window positions, producing
    /// `RST ≠ RST`.
    Offset(u32),
    /// A fresh random value per packet.
    Random,
}

/// One forged tear-down packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RstSpec {
    /// RST or RST+ACK.
    pub kind: RstKind,
    /// Acknowledgement strategy (ignored for bare RSTs, which carry no
    /// meaningful ack).
    pub ack: AckStrategy,
}

impl RstSpec {
    /// A bare RST with an exact-sequence guess.
    pub const fn rst() -> RstSpec {
        RstSpec {
            kind: RstKind::Rst,
            ack: AckStrategy::Exact,
        }
    }

    /// An exact RST+ACK.
    pub const fn rst_ack() -> RstSpec {
        RstSpec {
            kind: RstKind::RstAck,
            ack: AckStrategy::Exact,
        }
    }
}

/// How the injector's own IP stack initializes TTLs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TtlMode {
    /// Fixed initial TTL (64 / 128 / 255 are common).
    Fixed(u8),
    /// Uniform random in `lo..=hi` per packet — the behaviour the paper
    /// observed from a South Korean ISP.
    Random {
        /// Lower bound.
        lo: u8,
        /// Upper bound.
        hi: u8,
    },
    /// Copy the TTL of the triggering client packet (some censors do this
    /// to defeat TTL-based detection).
    CopyClient,
}

/// The forged-packet stack profile of one middlebox vendor.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectorStack {
    /// IP-ID policy of forged packets.
    pub ip_id: IpIdMode,
    /// TTL policy of forged packets.
    pub ttl: TtlMode,
    /// Gap between successive forged packets of one burst.
    pub burst_gap: SimDuration,
}

impl InjectorStack {
    /// A typical injector: random IP-ID far from the client's counter,
    /// fixed TTL distinct from client initial TTLs.
    pub fn typical() -> InjectorStack {
        InjectorStack {
            ip_id: IpIdMode::Random,
            ttl: TtlMode::Fixed(101),
            burst_gap: SimDuration::from_micros(150),
        }
    }

    /// A stealthy injector that copies client fields (defeats IP-ID/TTL
    /// evidence — used in tests of evidence limits).
    pub fn stealthy() -> InjectorStack {
        InjectorStack {
            ip_id: IpIdMode::Zero,
            ttl: TtlMode::CopyClient,
            burst_gap: SimDuration::from_micros(150),
        }
    }
}

/// Which connection stages a middlebox inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerStages {
    /// Fire on SYNs (IP/blanket rules).
    pub on_syn: bool,
    /// Fire on the first data packet (SNI / Host / GET).
    pub on_first_data: bool,
    /// Fire on later data packets (keywords).
    pub on_later_data: bool,
}

impl TriggerStages {
    /// Only the first data packet.
    pub const FIRST_DATA: TriggerStages = TriggerStages {
        on_syn: false,
        on_first_data: true,
        on_later_data: false,
    };
    /// Only SYNs.
    pub const SYN: TriggerStages = TriggerStages {
        on_syn: true,
        on_first_data: false,
        on_later_data: false,
    };
    /// Any data packet.
    pub const ANY_DATA: TriggerStages = TriggerStages {
        on_syn: false,
        on_first_data: true,
        on_later_data: true,
    };
    /// Only later data packets (commercial firewalls keying on content
    /// beyond the request line).
    pub const LATER_DATA: TriggerStages = TriggerStages {
        on_syn: false,
        on_first_data: false,
        on_later_data: true,
    };
}

/// What the middlebox does when a rule fires.
#[derive(Debug, Clone, PartialEq)]
pub enum TamperAction {
    /// In-path blocking: optionally drop the triggering packet, then drop
    /// every subsequent packet of the flow in both directions.
    DropFlow {
        /// Whether the triggering packet itself is dropped (true for
        /// in-path DPI; an on-path observer cannot drop).
        drop_trigger: bool,
    },
    /// Forge tear-down packets.
    Inject {
        /// Burst sent toward the server (spoofed as the client).
        to_server: Vec<RstSpec>,
        /// Burst sent toward the client (spoofed as the server).
        to_client: Vec<RstSpec>,
        /// Whether the triggering packet is dropped (in-path injectors).
        drop_trigger: bool,
        /// Whether the flow is drop-listed after injection.
        then_drop_flow: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_constructors() {
        assert_eq!(RstSpec::rst().kind, RstKind::Rst);
        assert_eq!(RstSpec::rst_ack().kind, RstKind::RstAck);
        assert_eq!(RstSpec::rst().ack, AckStrategy::Exact);
    }

    #[test]
    fn stage_presets() {
        // Read through a function so the values aren't compile-time
        // constants to the test (clippy::assertions_on_constants).
        let get = |s: TriggerStages| (s.on_syn, s.on_first_data, s.on_later_data);
        assert_eq!(get(TriggerStages::SYN), (true, false, false));
        assert_eq!(get(TriggerStages::FIRST_DATA), (false, true, false));
        assert_eq!(get(TriggerStages::ANY_DATA), (false, true, true));
        assert_eq!(get(TriggerStages::LATER_DATA), (false, false, true));
    }

    #[test]
    fn stack_profiles_differ() {
        assert_ne!(InjectorStack::typical(), InjectorStack::stealthy());
    }
}
