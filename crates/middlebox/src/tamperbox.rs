//! The tampering middlebox: a [`Hop`] implementation that watches a flow,
//! evaluates trigger rules at the configured connection stages, and fires
//! a [`TamperAction`] — dropping and/or forging tear-down packets with a
//! vendor-specific network-stack profile.

use crate::rules::RuleSet;
use crate::spec::{
    AckStrategy, InjectorStack, RstKind, RstSpec, TamperAction, TriggerStages, TtlMode,
};
use rand::Rng;
use std::net::IpAddr;
use tamper_netsim::{
    Direction, Hop, HopCtx, HopOutcome, IpIdGen, Mechanism, SimDuration, TamperEvent, TriggerStage,
};
use tamper_wire::{Packet, PacketBuilder, TcpFlags};

/// Fire unconditionally at a given stage, regardless of rules. The world
/// driver uses this to model policy decisions made outside the middlebox
/// (e.g. residual blocking, where a censor keeps tearing down a
/// client–domain pair it recently triggered on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForcedStage {
    /// Fire on the first SYN.
    Syn,
    /// Fire on the first data packet.
    FirstData,
    /// Fire on the `n`-th data packet (1-based; values ≥ 2 model
    /// later-data triggers).
    NthData(u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoxState {
    /// Watching for a trigger.
    Watching,
    /// Fired with a drop action: the flow is black-holed both ways.
    DroppingAll,
    /// Fired with an injection and no drop-list: the flow passes freely.
    Done,
}

/// Per-flow tracking of addressing and sequence state, as an on-path
/// observer reconstructs it.
#[derive(Debug, Default, Clone, Copy)]
struct FlowTrack {
    client: Option<(IpAddr, u16)>,
    server: Option<(IpAddr, u16)>,
    /// The client's next sequence number (server's rcv_nxt estimate).
    client_next: u32,
    /// The server's next sequence number (client's rcv_nxt estimate).
    server_next: u32,
    /// Data-bearing packets seen client→server.
    data_packets: u32,
    /// TTL of the last client packet as seen at the middlebox.
    client_ttl: u8,
}

/// A configurable tampering middlebox.
pub struct TamperingMiddlebox {
    rules: RuleSet,
    stages: TriggerStages,
    action: TamperAction,
    stack: InjectorStack,
    force: Option<ForcedStage>,
    ip_id: IpIdGen,
    flow: FlowTrack,
    state: BoxState,
}

impl TamperingMiddlebox {
    /// Build a middlebox from its parts.
    pub fn new(
        rules: RuleSet,
        stages: TriggerStages,
        action: TamperAction,
        stack: InjectorStack,
    ) -> TamperingMiddlebox {
        let ip_id = IpIdGen::new(stack.ip_id);
        TamperingMiddlebox {
            rules,
            stages,
            action,
            stack,
            force: None,
            ip_id,
            flow: FlowTrack::default(),
            state: BoxState::Watching,
        }
    }

    /// Force a trigger at the given stage regardless of rules.
    pub fn with_forced_trigger(mut self, stage: ForcedStage) -> TamperingMiddlebox {
        self.force = Some(stage);
        self
    }

    fn ttl_for_injection(&self, ctx: &mut HopCtx<'_>) -> u8 {
        match self.stack.ttl {
            TtlMode::Fixed(t) => t,
            TtlMode::Random { lo, hi } => ctx.rng.gen_range(lo..=hi),
            TtlMode::CopyClient => self.flow.client_ttl,
        }
    }

    fn ack_value(&self, strategy: AckStrategy, base: u32, ctx: &mut HopCtx<'_>) -> u32 {
        match strategy {
            AckStrategy::Exact => base,
            AckStrategy::Zero => 0,
            AckStrategy::Offset(o) => base.wrapping_add(o),
            AckStrategy::Random => ctx.rng.gen(),
        }
    }

    /// Forge one tear-down packet toward the server, spoofing the client.
    fn forge_to_server(&mut self, spec: RstSpec, ctx: &mut HopCtx<'_>) -> Option<Packet> {
        let (caddr, cport) = self.flow.client?;
        let (saddr, sport) = self.flow.server?;
        let ttl = self.ttl_for_injection(ctx);
        let id = self.ip_id.next(ctx.rng);
        let mut b = PacketBuilder::new(caddr, saddr, cport, sport)
            .ttl(ttl)
            .ip_id(id)
            .seq(self.flow.client_next)
            .window(0);
        b = match spec.kind {
            RstKind::Rst => b.flags(TcpFlags::RST),
            RstKind::RstAck => {
                let ack = self.ack_value(spec.ack, self.flow.server_next, ctx);
                b.flags(TcpFlags::RST_ACK).ack(ack)
            }
        };
        // Bare RSTs also carry an acknowledgement value in the header even
        // though the ACK flag is clear — the `RST = RST` / `RST ≠ RST` /
        // `RST; RST₀` distinctions in Table 1 are drawn from those values.
        if spec.kind == RstKind::Rst {
            let ack = self.ack_value(spec.ack, self.flow.server_next, ctx);
            b = b.ack(ack);
        }
        Some(b.build())
    }

    /// Forge one tear-down packet toward the client, spoofing the server.
    fn forge_to_client(&mut self, spec: RstSpec, ctx: &mut HopCtx<'_>) -> Option<Packet> {
        let (caddr, cport) = self.flow.client?;
        let (saddr, sport) = self.flow.server?;
        let ttl = self.ttl_for_injection(ctx);
        let id = self.ip_id.next(ctx.rng);
        let mut b = PacketBuilder::new(saddr, caddr, sport, cport)
            .ttl(ttl)
            .ip_id(id)
            .seq(self.flow.server_next)
            .window(0);
        b = match spec.kind {
            RstKind::Rst => b.flags(TcpFlags::RST),
            RstKind::RstAck => {
                let ack = self.ack_value(spec.ack, self.flow.client_next, ctx);
                b.flags(TcpFlags::RST_ACK).ack(ack)
            }
        };
        Some(b.build())
    }

    fn fire(&mut self, ctx: &mut HopCtx<'_>, stage: TriggerStage) -> HopOutcome {
        let action = self.action.clone();
        let mechanism = match action {
            TamperAction::DropFlow { .. } => Mechanism::Drop,
            TamperAction::Inject { .. } => Mechanism::Inject,
        };
        ctx.tamper_events.push(TamperEvent {
            time: ctx.now,
            hop: ctx.hop_index,
            mechanism,
            stage,
        });
        match action {
            TamperAction::DropFlow { drop_trigger } => {
                self.state = BoxState::DroppingAll;
                HopOutcome {
                    forward: !drop_trigger,
                    ..Default::default()
                }
            }
            TamperAction::Inject {
                to_server,
                to_client,
                drop_trigger,
                then_drop_flow,
            } => {
                let mut outcome = HopOutcome {
                    forward: !drop_trigger,
                    ..Default::default()
                };
                let gap = self.stack.burst_gap;
                for (i, spec) in to_server.iter().enumerate() {
                    if let Some(pkt) = self.forge_to_server(*spec, ctx) {
                        let delay = SimDuration(gap.as_nanos() * i as u64);
                        outcome.inject_to_server.push((pkt, delay));
                    }
                }
                for (i, spec) in to_client.iter().enumerate() {
                    if let Some(pkt) = self.forge_to_client(*spec, ctx) {
                        let delay = SimDuration(gap.as_nanos() * i as u64);
                        outcome.inject_to_client.push((pkt, delay));
                    }
                }
                self.state = if then_drop_flow {
                    BoxState::DroppingAll
                } else {
                    BoxState::Done
                };
                outcome
            }
        }
    }

    fn should_fire(&self, pkt: &Packet, stage_kind: StageKind) -> Option<TriggerStage> {
        // Forced triggers take precedence over (and bypass) the rules.
        if let Some(force) = self.force {
            let hit = match (force, stage_kind) {
                (ForcedStage::Syn, StageKind::Syn) => true,
                (ForcedStage::FirstData, StageKind::Data(1)) => true,
                (ForcedStage::NthData(n), StageKind::Data(k)) => k == n,
                _ => false,
            };
            if hit {
                return Some(match stage_kind {
                    StageKind::Syn => TriggerStage::Syn,
                    StageKind::Data(1) => TriggerStage::FirstData,
                    _ => TriggerStage::LaterData,
                });
            }
            return None;
        }
        match stage_kind {
            StageKind::Syn if self.stages.on_syn => {
                self.rules.match_syn(pkt).map(|_| TriggerStage::Syn)
            }
            StageKind::Data(1) if self.stages.on_first_data => self
                .rules
                .match_first_data(&pkt.payload)
                .map(|_| TriggerStage::FirstData),
            StageKind::Data(n) if n >= 2 && self.stages.on_later_data => self
                .rules
                .match_keywords(&pkt.payload)
                .map(|_| TriggerStage::LaterData),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageKind {
    Syn,
    /// `Data(n)`: the n-th data-bearing client packet (1-based).
    Data(u32),
    Other,
}

impl Hop for TamperingMiddlebox {
    fn on_packet(&mut self, ctx: &mut HopCtx<'_>, pkt: &Packet, dir: Direction) -> HopOutcome {
        if self.state == BoxState::DroppingAll {
            return HopOutcome::drop_packet();
        }
        match dir {
            Direction::ToClient => {
                self.flow.server = Some((pkt.ip.src(), pkt.tcp.src_port));
                let mut next = pkt.tcp.seq.wrapping_add(pkt.payload.len() as u32);
                if pkt.tcp.flags.has_syn() || pkt.tcp.flags.has_fin() {
                    next = next.wrapping_add(1);
                }
                self.flow.server_next = next;
                HopOutcome::pass()
            }
            Direction::ToServer => {
                let stage_kind = if pkt.tcp.flags.has_syn() && !pkt.tcp.flags.has_ack() {
                    self.flow.client = Some((pkt.ip.src(), pkt.tcp.src_port));
                    self.flow.server = self.flow.server.or(Some((pkt.ip.dst(), pkt.tcp.dst_port)));
                    self.flow.client_next = pkt
                        .tcp
                        .seq
                        .wrapping_add(1)
                        .wrapping_add(pkt.payload.len() as u32);
                    StageKind::Syn
                } else if !pkt.payload.is_empty() {
                    self.flow.data_packets += 1;
                    self.flow.client_next = pkt.tcp.seq.wrapping_add(pkt.payload.len() as u32);
                    StageKind::Data(self.flow.data_packets)
                } else {
                    StageKind::Other
                };
                self.flow.client_ttl = pkt.ip.ttl();

                if self.state == BoxState::Watching {
                    if let Some(stage) = self.should_fire(pkt, stage_kind) {
                        return self.fire(ctx, stage);
                    }
                }
                HopOutcome::pass()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tamper_netsim::derive_rng;
    use tamper_wire::tls;

    fn client() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(203, 0, 113, 9))
    }
    fn server() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1))
    }

    fn syn() -> Packet {
        PacketBuilder::new(client(), server(), 40000, 443)
            .flags(TcpFlags::SYN)
            .seq(100)
            .ttl(60)
            .build()
    }

    fn hello(sni: &str) -> Packet {
        PacketBuilder::new(client(), server(), 40000, 443)
            .flags(TcpFlags::PSH_ACK)
            .seq(101)
            .ack(501)
            .ttl(60)
            .payload(tls::build_client_hello(sni, [0u8; 32]))
            .build()
    }

    fn run_through(
        mb: &mut TamperingMiddlebox,
        pkts: &[(Packet, Direction)],
    ) -> (Vec<HopOutcome>, Vec<TamperEvent>) {
        let mut rng = derive_rng(5, 5);
        let mut events = Vec::new();
        let mut outs = Vec::new();
        for (i, (pkt, dir)) in pkts.iter().enumerate() {
            let mut ctx = HopCtx {
                now: tamper_netsim::SimTime::from_secs(i as u64),
                rng: &mut rng,
                tamper_events: &mut events,
                hop_index: 0,
            };
            outs.push(mb.on_packet(&mut ctx, pkt, *dir));
        }
        (outs, events)
    }

    #[test]
    fn sni_rule_fires_injection_on_first_data() {
        let mut mb = TamperingMiddlebox::new(
            RuleSet::domains(["bad.example"]),
            TriggerStages::FIRST_DATA,
            TamperAction::Inject {
                to_server: vec![RstSpec::rst_ack(), RstSpec::rst_ack()],
                to_client: vec![RstSpec::rst()],
                drop_trigger: false,
                then_drop_flow: false,
            },
            InjectorStack::typical(),
        );
        let (outs, events) = run_through(
            &mut mb,
            &[
                (syn(), Direction::ToServer),
                (hello("bad.example"), Direction::ToServer),
            ],
        );
        assert!(outs[0].forward);
        assert!(outs[1].forward); // on-path: trigger passes
        assert_eq!(outs[1].inject_to_server.len(), 2);
        assert_eq!(outs[1].inject_to_client.len(), 1);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].stage, TriggerStage::FirstData);
        assert_eq!(events[0].mechanism, Mechanism::Inject);
        // Forged packets spoof the client toward the server.
        let forged = &outs[1].inject_to_server[0].0;
        assert_eq!(forged.ip.src(), client());
        assert_eq!(forged.tcp.flags, TcpFlags::RST_ACK);
        // seq continues the client's stream past the ClientHello.
        let hello_len = hello("bad.example").payload.len() as u32;
        assert_eq!(forged.tcp.seq, 101 + hello_len);
    }

    #[test]
    fn innocent_domain_passes() {
        let mut mb = TamperingMiddlebox::new(
            RuleSet::domains(["bad.example"]),
            TriggerStages::FIRST_DATA,
            TamperAction::DropFlow { drop_trigger: true },
            InjectorStack::typical(),
        );
        let (outs, events) = run_through(
            &mut mb,
            &[
                (syn(), Direction::ToServer),
                (hello("good.example"), Direction::ToServer),
            ],
        );
        assert!(outs.iter().all(|o| o.forward));
        assert!(events.is_empty());
    }

    #[test]
    fn drop_flow_blackholes_everything_after_trigger() {
        let mut mb = TamperingMiddlebox::new(
            RuleSet::domains(["bad.example"]),
            TriggerStages::FIRST_DATA,
            TamperAction::DropFlow { drop_trigger: true },
            InjectorStack::typical(),
        );
        let retrans = hello("bad.example");
        let (outs, events) = run_through(
            &mut mb,
            &[
                (syn(), Direction::ToServer),
                (hello("bad.example"), Direction::ToServer),
                (retrans, Direction::ToServer),
                (syn(), Direction::ToClient),
            ],
        );
        assert!(outs[0].forward);
        assert!(!outs[1].forward); // trigger dropped
        assert!(!outs[2].forward); // retransmission dropped
        assert!(!outs[3].forward); // reverse direction dropped too
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].mechanism, Mechanism::Drop);
    }

    #[test]
    fn syn_stage_blanket_ban() {
        let mut mb = TamperingMiddlebox::new(
            RuleSet::blanket(),
            TriggerStages::SYN,
            TamperAction::Inject {
                to_server: vec![RstSpec::rst()],
                to_client: vec![RstSpec::rst()],
                drop_trigger: false,
                then_drop_flow: true,
            },
            InjectorStack::typical(),
        );
        let (outs, events) = run_through(&mut mb, &[(syn(), Direction::ToServer)]);
        assert!(outs[0].forward);
        assert_eq!(outs[0].inject_to_server.len(), 1);
        assert_eq!(events[0].stage, TriggerStage::Syn);
    }

    #[test]
    fn zero_ack_strategy_produces_zero() {
        let mut mb = TamperingMiddlebox::new(
            RuleSet::domains(["bad.example"]),
            TriggerStages::FIRST_DATA,
            TamperAction::Inject {
                to_server: vec![
                    RstSpec {
                        kind: RstKind::Rst,
                        ack: AckStrategy::Exact,
                    },
                    RstSpec {
                        kind: RstKind::Rst,
                        ack: AckStrategy::Zero,
                    },
                ],
                to_client: vec![],
                drop_trigger: false,
                then_drop_flow: false,
            },
            InjectorStack::typical(),
        );
        let (outs, _) = run_through(
            &mut mb,
            &[
                (syn(), Direction::ToServer),
                (hello("bad.example"), Direction::ToServer),
            ],
        );
        let acks: Vec<u32> = outs[1]
            .inject_to_server
            .iter()
            .map(|(p, _)| p.tcp.ack)
            .collect();
        assert_eq!(acks[1], 0);
    }

    #[test]
    fn forced_trigger_ignores_rules() {
        let mut mb = TamperingMiddlebox::new(
            RuleSet::default(), // empty: would never fire on its own
            TriggerStages::FIRST_DATA,
            TamperAction::Inject {
                to_server: vec![RstSpec::rst()],
                to_client: vec![RstSpec::rst()],
                drop_trigger: false,
                then_drop_flow: false,
            },
            InjectorStack::typical(),
        )
        .with_forced_trigger(ForcedStage::FirstData);
        let (outs, events) = run_through(
            &mut mb,
            &[
                (syn(), Direction::ToServer),
                (hello("anything.example"), Direction::ToServer),
            ],
        );
        assert_eq!(outs[1].inject_to_server.len(), 1);
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn forced_nth_data_fires_on_later_packet() {
        let mut mb = TamperingMiddlebox::new(
            RuleSet::default(),
            TriggerStages::LATER_DATA,
            TamperAction::Inject {
                to_server: vec![RstSpec::rst_ack()],
                to_client: vec![RstSpec::rst_ack()],
                drop_trigger: true,
                then_drop_flow: true,
            },
            InjectorStack::typical(),
        )
        .with_forced_trigger(ForcedStage::NthData(2));
        let (outs, events) = run_through(
            &mut mb,
            &[
                (syn(), Direction::ToServer),
                (hello("a.example"), Direction::ToServer),
                (hello("a.example"), Direction::ToServer), // 2nd data packet
            ],
        );
        assert!(outs[1].inject_to_server.is_empty());
        assert_eq!(outs[2].inject_to_server.len(), 1);
        assert_eq!(events[0].stage, TriggerStage::LaterData);
    }

    #[test]
    fn injection_ttl_respects_mode() {
        for (mode, check) in [
            (TtlMode::Fixed(200), Some(200u8)),
            (TtlMode::CopyClient, Some(60)),
        ] {
            let mut mb = TamperingMiddlebox::new(
                RuleSet::blanket(),
                TriggerStages::FIRST_DATA,
                TamperAction::Inject {
                    to_server: vec![RstSpec::rst()],
                    to_client: vec![],
                    drop_trigger: false,
                    then_drop_flow: false,
                },
                InjectorStack {
                    ttl: mode,
                    ..InjectorStack::typical()
                },
            );
            let (outs, _) = run_through(
                &mut mb,
                &[
                    (syn(), Direction::ToServer),
                    (hello("x.example"), Direction::ToServer),
                ],
            );
            let forged = &outs[1].inject_to_server[0].0;
            assert_eq!(Some(forged.ip.ttl()), check);
        }
    }

    #[test]
    fn fires_only_once() {
        let mut mb = TamperingMiddlebox::new(
            RuleSet::blanket(),
            TriggerStages::ANY_DATA,
            TamperAction::Inject {
                to_server: vec![RstSpec::rst()],
                to_client: vec![],
                drop_trigger: false,
                then_drop_flow: false,
            },
            InjectorStack::typical(),
        );
        let (outs, events) = run_through(
            &mut mb,
            &[
                (syn(), Direction::ToServer),
                (hello("x.example"), Direction::ToServer),
                (hello("x.example"), Direction::ToServer),
            ],
        );
        assert_eq!(outs[1].inject_to_server.len(), 1);
        assert!(outs[2].inject_to_server.is_empty());
        assert_eq!(events.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::spec::{InjectorStack, TriggerStages};
    use proptest::prelude::*;
    use std::net::Ipv4Addr;
    use tamper_netsim::derive_rng;
    use tamper_wire::tls;

    fn arb_action() -> impl Strategy<Value = TamperAction> {
        prop_oneof![
            proptest::bool::ANY.prop_map(|d| TamperAction::DropFlow { drop_trigger: d }),
            (
                proptest::collection::vec(
                    prop_oneof![Just(RstSpec::rst()), Just(RstSpec::rst_ack())],
                    0..4
                ),
                proptest::collection::vec(Just(RstSpec::rst()), 0..3),
                proptest::bool::ANY,
                proptest::bool::ANY,
            )
                .prop_map(|(to_server, to_client, drop_trigger, then_drop_flow)| {
                    TamperAction::Inject {
                        to_server,
                        to_client,
                        drop_trigger,
                        then_drop_flow,
                    }
                }),
        ]
    }

    fn arb_stages() -> impl Strategy<Value = TriggerStages> {
        prop_oneof![
            Just(TriggerStages::SYN),
            Just(TriggerStages::FIRST_DATA),
            Just(TriggerStages::ANY_DATA),
            Just(TriggerStages::LATER_DATA),
        ]
    }

    proptest! {
        /// Whatever the configuration, a middlebox fires at most once, and
        /// a fired drop-action never forwards subsequent packets.
        #[test]
        fn fires_at_most_once_and_drop_is_sticky(
            action in arb_action(),
            stages in arb_stages(),
            n_data in 1usize..5,
            seed in any::<u64>(),
        ) {
            let client = std::net::IpAddr::V4(Ipv4Addr::new(203, 0, 113, 8));
            let server = std::net::IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
            let mut mb = TamperingMiddlebox::new(
                RuleSet::blanket(),
                stages,
                action.clone(),
                InjectorStack::typical(),
            );
            let mut rng = derive_rng(seed, 0);
            let mut events = Vec::new();
            let syn = tamper_wire::PacketBuilder::new(client, server, 40000, 443)
                .flags(tamper_wire::TcpFlags::SYN)
                .seq(100)
                .build();
            let mut forwarded_after_drop = false;
            let process = |mb: &mut TamperingMiddlebox,
                               pkt: &tamper_wire::Packet,
                               rng: &mut rand::rngs::StdRng,
                               events: &mut Vec<tamper_netsim::TamperEvent>| {
                let mut ctx = HopCtx {
                    now: tamper_netsim::SimTime::ZERO,
                    rng,
                    tamper_events: events,
                    hop_index: 0,
                };
                mb.on_packet(&mut ctx, pkt, Direction::ToServer)
            };
            // "Sticky drop" only applies to actions that drop-list the
            // flow; a drop_trigger-only injection legitimately passes
            // later packets.
            let sticky = matches!(
                action,
                TamperAction::DropFlow { .. }
                    | TamperAction::Inject {
                        then_drop_flow: true,
                        ..
                    }
            );
            let mut dropped_mode = false;
            let out = process(&mut mb, &syn, &mut rng, &mut events);
            if sticky && !events.is_empty() && !out.forward {
                dropped_mode = true;
            }
            for i in 0..n_data {
                let data = tamper_wire::PacketBuilder::new(client, server, 40000, 443)
                    .flags(tamper_wire::TcpFlags::PSH_ACK)
                    .seq(101 + i as u32 * 100)
                    .payload(tls::build_client_hello("x.example", [0u8; 32]))
                    .build();
                let out = process(&mut mb, &data, &mut rng, &mut events);
                if dropped_mode && out.forward {
                    forwarded_after_drop = true;
                }
                if sticky && !events.is_empty() {
                    dropped_mode = true;
                }
            }
            prop_assert!(events.len() <= 1, "fired {} times", events.len());
            prop_assert!(!forwarded_after_drop, "forwarded after drop-flow engaged");
        }

        /// Forged packets always carry the flow's correct 4-tuple.
        #[test]
        fn forged_packets_spoof_the_client(seed in any::<u64>(), n in 1usize..4) {
            let client = std::net::IpAddr::V4(Ipv4Addr::new(203, 0, 113, 8));
            let server = std::net::IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
            let burst: Vec<RstSpec> = vec![RstSpec::rst_ack(); n];
            let mut mb = TamperingMiddlebox::new(
                RuleSet::blanket(),
                TriggerStages::FIRST_DATA,
                TamperAction::Inject {
                    to_server: burst,
                    to_client: vec![RstSpec::rst()],
                    drop_trigger: false,
                    then_drop_flow: false,
                },
                InjectorStack::typical(),
            );
            let mut rng = derive_rng(seed, 1);
            let mut events = Vec::new();
            let syn = tamper_wire::PacketBuilder::new(client, server, 41234, 443)
                .flags(tamper_wire::TcpFlags::SYN)
                .seq(7)
                .build();
            let hello = tamper_wire::PacketBuilder::new(client, server, 41234, 443)
                .flags(tamper_wire::TcpFlags::PSH_ACK)
                .seq(8)
                .payload(tls::build_client_hello("y.example", [1u8; 32]))
                .build();
            for pkt in [&syn, &hello] {
                let mut ctx = HopCtx {
                    now: tamper_netsim::SimTime::ZERO,
                    rng: &mut rng,
                    tamper_events: &mut events,
                    hop_index: 0,
                };
                let out = mb.on_packet(&mut ctx, pkt, Direction::ToServer);
                for (forged, _) in &out.inject_to_server {
                    prop_assert_eq!(forged.ip.src(), client);
                    prop_assert_eq!(forged.ip.dst(), server);
                    prop_assert_eq!(forged.tcp.src_port, 41234);
                    prop_assert_eq!(forged.tcp.dst_port, 443);
                    prop_assert!(forged.tcp.flags.has_rst());
                }
                for (forged, _) in &out.inject_to_client {
                    prop_assert_eq!(forged.ip.src(), server);
                    prop_assert_eq!(forged.ip.dst(), client);
                }
            }
        }
    }
}
