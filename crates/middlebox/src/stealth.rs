//! The evasion strategy from the paper's concluding discussion (§6):
//!
//! > "The ideal tampering strategy would involve blocking content from the
//! > server to the client (so the client does not get any objectionable
//! > content), while continuing the connection to the server as if it
//! > were the client (so the server does not detect any immediate
//! > connection tear-downs)."
//!
//! [`StealthHijacker`] implements exactly that: once a rule fires on the
//! first data packet, it black-holes everything toward the client and
//! impersonates the client toward the server — acknowledging response
//! segments and closing with a graceful FIN handshake. The server-side
//! classifier sees a perfectly normal connection.
//!
//! The paper notes this "would only be possible when the tampering
//! middlebox can drop packets, which is uncommon in practice" — this
//! module exists to *prove the blind spot* (see
//! `tests/evasion_limits.rs`), not because it is deployed at scale.

use crate::rules::RuleSet;
use rand::Rng;
use std::net::IpAddr;
use tamper_netsim::{
    Direction, Hop, HopCtx, HopOutcome, Mechanism, SimDuration, TamperEvent, TriggerStage,
};
use tamper_wire::{Packet, PacketBuilder, TcpFlags};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Watching,
    /// Client is cut off; we speak TCP to the server in its stead.
    Hijacked,
    /// Our FIN has been sent; waiting to ACK the server's FIN.
    Closing,
    Done,
}

/// A middlebox that hijacks offending connections instead of tearing them
/// down — invisible to server-side signature detection.
pub struct StealthHijacker {
    rules: RuleSet,
    state: State,
    client: Option<(IpAddr, u16)>,
    server: Option<(IpAddr, u16)>,
    /// Our sequence cursor when speaking as the client.
    snd_nxt: u32,
    /// Next expected server sequence.
    rcv_nxt: u32,
    /// TTL used for forged packets; copied from the client so even the
    /// TTL evidence stays silent.
    client_ttl: u8,
    ip_id: u16,
}

impl StealthHijacker {
    /// Create a hijacker with the given trigger rules (first-data stage).
    pub fn new(rules: RuleSet) -> StealthHijacker {
        StealthHijacker {
            rules,
            state: State::Watching,
            client: None,
            server: None,
            snd_nxt: 0,
            rcv_nxt: 0,
            client_ttl: 64,
            ip_id: 0,
        }
    }

    fn forge(&mut self, flags: TcpFlags, payload_consumes: u32) -> Option<Packet> {
        let (caddr, cport) = self.client?;
        let (saddr, sport) = self.server?;
        // Continue the client's IP-ID sequence plausibly.
        self.ip_id = self.ip_id.wrapping_add(1);
        let pkt = PacketBuilder::new(caddr, saddr, cport, sport)
            .flags(flags)
            .seq(self.snd_nxt)
            .ack(self.rcv_nxt)
            .ttl(self.client_ttl)
            .ip_id(self.ip_id)
            .window(64_240)
            .build();
        self.snd_nxt = self.snd_nxt.wrapping_add(payload_consumes);
        Some(pkt)
    }
}

impl Hop for StealthHijacker {
    fn on_packet(&mut self, ctx: &mut HopCtx<'_>, pkt: &Packet, dir: Direction) -> HopOutcome {
        match dir {
            Direction::ToServer => {
                if pkt.tcp.flags.has_syn() && !pkt.tcp.flags.has_ack() {
                    self.client = Some((pkt.ip.src(), pkt.tcp.src_port));
                    self.server = Some((pkt.ip.dst(), pkt.tcp.dst_port));
                    self.client_ttl = pkt.ip.ttl();
                    self.ip_id = pkt.ip.ip_id().unwrap_or(0);
                    self.snd_nxt = pkt.tcp.seq.wrapping_add(1);
                }
                match self.state {
                    State::Watching => {
                        if !pkt.payload.is_empty() {
                            self.client_ttl = pkt.ip.ttl();
                            self.ip_id = pkt.ip.ip_id().unwrap_or(self.ip_id);
                            if self.rules.match_first_data(&pkt.payload).is_some() {
                                // Fire: let the request through so the
                                // server keeps talking — to us.
                                ctx.tamper_events.push(TamperEvent {
                                    time: ctx.now,
                                    hop: ctx.hop_index,
                                    mechanism: Mechanism::Drop,
                                    stage: TriggerStage::FirstData,
                                });
                                self.snd_nxt = pkt.tcp.seq.wrapping_add(pkt.payload.len() as u32);
                                self.state = State::Hijacked;
                            }
                        }
                        HopOutcome::pass()
                    }
                    // The real client is cut off entirely.
                    _ => HopOutcome::drop_packet(),
                }
            }
            Direction::ToClient => match self.state {
                State::Watching => {
                    self.rcv_nxt = pkt
                        .tcp
                        .seq
                        .wrapping_add(pkt.payload.len() as u32)
                        .wrapping_add(u32::from(pkt.tcp.flags.has_syn()));
                    HopOutcome::pass()
                }
                State::Hijacked => {
                    // Swallow the response; speak as the client.
                    let mut out = HopOutcome::drop_packet();
                    if pkt.tcp.flags.has_rst() {
                        self.state = State::Done;
                        return out;
                    }
                    if !pkt.payload.is_empty() {
                        self.rcv_nxt = pkt.tcp.seq.wrapping_add(pkt.payload.len() as u32);
                        let jitter = SimDuration::from_micros(ctx.rng.gen_range(50..250));
                        if pkt.tcp.flags.has_psh() {
                            // Response complete: ACK it and close politely.
                            if let Some(ack) = self.forge(TcpFlags::ACK, 0) {
                                out = out.with_injection_to_server(ack, jitter);
                            }
                            if let Some(fin) = self.forge(TcpFlags::FIN_ACK, 1) {
                                out = out.with_injection_to_server(
                                    fin,
                                    jitter + SimDuration::from_micros(400),
                                );
                            }
                            self.state = State::Closing;
                        } else if let Some(ack) = self.forge(TcpFlags::ACK, 0) {
                            out = out.with_injection_to_server(ack, jitter);
                        }
                    }
                    out
                }
                State::Closing => {
                    let mut out = HopOutcome::drop_packet();
                    if pkt.tcp.flags.has_fin() {
                        self.rcv_nxt = pkt.tcp.seq.wrapping_add(1);
                        if let Some(ack) = self.forge(TcpFlags::ACK, 0) {
                            out = out.with_injection_to_server(ack, SimDuration::from_micros(120));
                        }
                        self.state = State::Done;
                    }
                    out
                }
                State::Done => HopOutcome::drop_packet(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tamper_netsim::derive_rng;
    use tamper_wire::tls;

    fn client() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(203, 0, 113, 9))
    }
    fn server() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1))
    }

    fn ctx_run(
        h: &mut StealthHijacker,
        pkts: &[(Packet, Direction)],
    ) -> (Vec<HopOutcome>, Vec<TamperEvent>) {
        let mut rng = derive_rng(1, 1);
        let mut events = Vec::new();
        let mut outs = Vec::new();
        for (i, (pkt, dir)) in pkts.iter().enumerate() {
            let mut ctx = HopCtx {
                now: tamper_netsim::SimTime::from_secs(i as u64),
                rng: &mut rng,
                tamper_events: &mut events,
                hop_index: 0,
            };
            outs.push(h.on_packet(&mut ctx, pkt, *dir));
        }
        (outs, events)
    }

    #[test]
    fn hijack_acks_server_and_closes_gracefully() {
        let mut h = StealthHijacker::new(RuleSet::domains(["bad.example"]));
        let syn = PacketBuilder::new(client(), server(), 40000, 443)
            .flags(TcpFlags::SYN)
            .seq(100)
            .ttl(60)
            .ip_id(9)
            .build();
        let synack = PacketBuilder::new(server(), client(), 443, 40000)
            .flags(TcpFlags::SYN_ACK)
            .seq(500)
            .ack(101)
            .build();
        let hello = PacketBuilder::new(client(), server(), 40000, 443)
            .flags(TcpFlags::PSH_ACK)
            .seq(101)
            .ack(501)
            .ttl(60)
            .ip_id(10)
            .payload(tls::build_client_hello("bad.example", [0u8; 32]))
            .build();
        let resp = PacketBuilder::new(server(), client(), 443, 40000)
            .flags(TcpFlags::PSH_ACK)
            .seq(501)
            .ack(h.snd_nxt)
            .payload(bytes::Bytes::from_static(b"content"))
            .build();
        let (outs, events) = ctx_run(
            &mut h,
            &[
                (syn, Direction::ToServer),
                (synack, Direction::ToClient),
                (hello.clone(), Direction::ToServer),
                (resp, Direction::ToClient),
                (hello, Direction::ToServer), // client retransmission
            ],
        );
        assert!(outs[2].forward, "trigger request must reach the server");
        assert_eq!(events.len(), 1);
        // The response is dropped toward the client but answered with an
        // ACK and a FIN toward the server.
        assert!(!outs[3].forward);
        let flags: Vec<TcpFlags> = outs[3]
            .inject_to_server
            .iter()
            .map(|(p, _)| p.tcp.flags)
            .collect();
        assert_eq!(flags, vec![TcpFlags::ACK, TcpFlags::FIN_ACK]);
        // Forged packets impersonate the client stack (TTL and IP-ID
        // continue the client's sequence).
        let forged = &outs[3].inject_to_server[0].0;
        assert_eq!(forged.ip.src(), client());
        assert_eq!(forged.ip.ttl(), 60);
        assert_eq!(forged.ip.ip_id(), Some(11));
        // The cut-off client's retransmission goes nowhere.
        assert!(!outs[4].forward);
    }

    #[test]
    fn innocent_flows_untouched() {
        let mut h = StealthHijacker::new(RuleSet::domains(["bad.example"]));
        let hello = PacketBuilder::new(client(), server(), 40000, 443)
            .flags(TcpFlags::PSH_ACK)
            .seq(101)
            .payload(tls::build_client_hello("good.example", [0u8; 32]))
            .build();
        let (outs, events) = ctx_run(&mut h, &[(hello, Direction::ToServer)]);
        assert!(outs[0].forward);
        assert!(events.is_empty());
    }
}
