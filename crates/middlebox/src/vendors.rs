//! Vendor profiles: named middlebox configurations that regenerate each of
//! the paper's 19 tampering signatures (Table 1), modelled on the behaviours
//! documented for real censorship systems (GFW, Iranian DPI, Turkmenistan's
//! HTTP filter, ack-guessing commercial devices, a South Korean ISP with
//! randomized TTLs, ...).

use crate::spec::{
    AckStrategy, InjectorStack, RstKind, RstSpec, TamperAction, TriggerStages, TtlMode,
};
use crate::tamperbox::TamperingMiddlebox;
use crate::RuleSet;
use tamper_netsim::{IpIdMode, SimDuration};

/// A named tampering-middlebox configuration.
///
/// The doc comment of each variant names the signature (Table 1 notation)
/// its deployment produces at the server.
///
/// ```
/// use tamper_middlebox::{RuleSet, Vendor};
/// // A GFW-style injector watching for one domain:
/// let mb = Vendor::GfwDoubleRstAck.build(RuleSet::domains(["blocked.example"]));
/// // `mb` implements `tamper_netsim::Hop` and can be placed on a Path.
/// let _hop: Box<dyn tamper_netsim::Hop> = Box::new(mb);
/// assert!(!Vendor::GfwDoubleRstAck.requires_in_path()); // on-path injector
/// assert!(Vendor::DataDropAll.requires_in_path()); // dropping needs in-path
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// `⟨SYN → ∅⟩` — in-path IP blocking that forwards the first SYN but
    /// black-holes the flow afterwards.
    SynDropAll,
    /// `⟨SYN → RST⟩` — on-path injector firing `n` bare RSTs on a SYN to a
    /// blocked destination.
    SynRst {
        /// Number of forged RSTs.
        n: u8,
    },
    /// `⟨SYN → RST+ACK⟩` — as above with RST+ACK.
    SynRstAck {
        /// Number of forged RST+ACKs.
        n: u8,
    },
    /// `⟨SYN → RST; RST+ACK⟩` — GFW-style IP blocking injecting both forms.
    SynRstBoth,
    /// `⟨SYN; ACK → ∅⟩` — in-path DPI that silently drops the offending
    /// first data packet and the rest of the flow (Iran's ClientHello
    /// dropping).
    DataDropAll,
    /// `⟨SYN; ACK → RST⟩` (n = 1) or `⟨SYN; ACK → RST; RST⟩` (n ≥ 2) —
    /// in-path DPI that drops the request and forges bare RSTs.
    DataDropRst {
        /// Number of forged RSTs.
        n: u8,
    },
    /// `⟨SYN; ACK → RST+ACK⟩` / `⟨SYN; ACK → RST+ACK; RST+ACK⟩` —
    /// in-path DPI that drops the request and forges RST+ACKs (observed in
    /// Iran).
    DataDropRstAck {
        /// Number of forged RST+ACKs.
        n: u8,
    },
    /// `⟨PSH+ACK → ∅⟩` — on-path box that lets the request through, then
    /// black-holes the flow.
    PshDropAll,
    /// `⟨PSH+ACK → RST⟩` — single bare RST after the request passes.
    PshRst,
    /// `⟨PSH+ACK → RST+ACK⟩` — single RST+ACK after the request passes.
    PshRstAck,
    /// `⟨PSH+ACK → RST; RST+ACK⟩` — GFW HTTP-style mixed burst.
    GfwMixed,
    /// `⟨PSH+ACK → RST+ACK; RST+ACK⟩` — GFW HTTPS-style double RST+ACK.
    GfwDoubleRstAck,
    /// `⟨PSH+ACK → RST = RST⟩` — multiple bare RSTs with identical acks.
    SameAckBurst {
        /// Burst size (≥ 2).
        n: u8,
    },
    /// `⟨PSH+ACK → RST ≠ RST⟩` — ack-guessing burst at successive window
    /// offsets (Weaver et al.).
    AckGuessBurst {
        /// Burst size (≥ 2).
        n: u8,
    },
    /// `⟨PSH+ACK → RST; RST₀⟩` — one exact RST plus one with a zero ack
    /// (observed from China and South Korea).
    ZeroAckPair,
    /// `⟨PSH+ACK; Data → RST⟩` — enterprise/commercial firewall keying on
    /// keywords in later data.
    FirewallRst,
    /// `⟨PSH+ACK; Data → RST+ACK⟩` — as above with RST+ACK (prevalent in
    /// Ukraine per the paper).
    FirewallRstAck,
}

/// All vendors, for exhaustive tests and benches.
pub const ALL_VENDORS: [Vendor; 17] = [
    Vendor::SynDropAll,
    Vendor::SynRst { n: 1 },
    Vendor::SynRstAck { n: 1 },
    Vendor::SynRstBoth,
    Vendor::DataDropAll,
    Vendor::DataDropRst { n: 1 },
    Vendor::DataDropRst { n: 2 },
    Vendor::DataDropRstAck { n: 1 },
    Vendor::DataDropRstAck { n: 2 },
    Vendor::PshDropAll,
    Vendor::PshRst,
    Vendor::PshRstAck,
    Vendor::GfwMixed,
    Vendor::GfwDoubleRstAck,
    Vendor::SameAckBurst { n: 2 },
    Vendor::AckGuessBurst { n: 3 },
    Vendor::ZeroAckPair,
];

impl Vendor {
    /// The connection stage this vendor inspects.
    pub fn stages(&self) -> TriggerStages {
        match self {
            Vendor::SynDropAll
            | Vendor::SynRst { .. }
            | Vendor::SynRstAck { .. }
            | Vendor::SynRstBoth => TriggerStages::SYN,
            Vendor::FirewallRst | Vendor::FirewallRstAck => TriggerStages::LATER_DATA,
            _ => TriggerStages::FIRST_DATA,
        }
    }

    /// The action this vendor takes when it fires.
    pub fn action(&self) -> TamperAction {
        let rst = RstSpec::rst;
        let rst_ack = RstSpec::rst_ack;
        match *self {
            // The SYN itself passes (a flow the server never sees cannot be
            // sampled); everything after it is black-holed.
            Vendor::SynDropAll => TamperAction::DropFlow {
                drop_trigger: false,
            },
            // The offending request is dropped along with the rest of the
            // flow (Iran's ClientHello dropping).
            Vendor::DataDropAll => TamperAction::DropFlow { drop_trigger: true },
            Vendor::PshDropAll => TamperAction::DropFlow {
                drop_trigger: false,
            },
            Vendor::SynRst { n } => TamperAction::Inject {
                to_server: vec![rst(); n as usize],
                to_client: vec![rst()],
                drop_trigger: false,
                then_drop_flow: true,
            },
            Vendor::SynRstAck { n } => TamperAction::Inject {
                to_server: vec![rst_ack(); n as usize],
                to_client: vec![rst_ack()],
                drop_trigger: false,
                then_drop_flow: true,
            },
            Vendor::SynRstBoth => TamperAction::Inject {
                to_server: vec![rst(), rst_ack()],
                to_client: vec![rst(), rst_ack()],
                drop_trigger: false,
                then_drop_flow: true,
            },
            Vendor::DataDropRst { n } => TamperAction::Inject {
                to_server: vec![rst(); n as usize],
                to_client: vec![rst()],
                drop_trigger: true,
                then_drop_flow: true,
            },
            Vendor::DataDropRstAck { n } => TamperAction::Inject {
                to_server: vec![rst_ack(); n as usize],
                to_client: vec![rst_ack()],
                drop_trigger: true,
                then_drop_flow: true,
            },
            Vendor::PshRst => TamperAction::Inject {
                to_server: vec![rst()],
                to_client: vec![rst()],
                drop_trigger: false,
                then_drop_flow: false,
            },
            Vendor::PshRstAck => TamperAction::Inject {
                to_server: vec![rst_ack()],
                to_client: vec![rst_ack()],
                drop_trigger: false,
                then_drop_flow: false,
            },
            Vendor::GfwMixed => TamperAction::Inject {
                to_server: vec![rst(), rst_ack()],
                to_client: vec![rst(), rst(), rst_ack()],
                drop_trigger: false,
                then_drop_flow: false,
            },
            Vendor::GfwDoubleRstAck => TamperAction::Inject {
                to_server: vec![rst_ack(), rst_ack()],
                to_client: vec![rst_ack(), rst_ack()],
                drop_trigger: false,
                then_drop_flow: false,
            },
            Vendor::SameAckBurst { n } => TamperAction::Inject {
                to_server: vec![rst(); n.max(2) as usize],
                to_client: vec![rst()],
                drop_trigger: false,
                then_drop_flow: false,
            },
            Vendor::AckGuessBurst { n } => {
                let mut burst = vec![RstSpec {
                    kind: RstKind::Rst,
                    ack: AckStrategy::Exact,
                }];
                for i in 1..n.max(2) as u32 {
                    burst.push(RstSpec {
                        kind: RstKind::Rst,
                        ack: AckStrategy::Offset(1460 * i),
                    });
                }
                TamperAction::Inject {
                    to_server: burst,
                    to_client: vec![rst()],
                    drop_trigger: false,
                    then_drop_flow: false,
                }
            }
            Vendor::ZeroAckPair => TamperAction::Inject {
                to_server: vec![
                    RstSpec {
                        kind: RstKind::Rst,
                        ack: AckStrategy::Exact,
                    },
                    RstSpec {
                        kind: RstKind::Rst,
                        ack: AckStrategy::Zero,
                    },
                ],
                to_client: vec![rst()],
                drop_trigger: false,
                then_drop_flow: false,
            },
            // Commercial firewalls typically reset both sides out-of-band
            // without dropping the triggering packet — which is what puts
            // the RST *after* multiple data packets at the server.
            Vendor::FirewallRst => TamperAction::Inject {
                to_server: vec![rst()],
                to_client: vec![rst()],
                drop_trigger: false,
                then_drop_flow: true,
            },
            Vendor::FirewallRstAck => TamperAction::Inject {
                to_server: vec![rst_ack()],
                to_client: vec![rst_ack()],
                drop_trigger: false,
                then_drop_flow: true,
            },
        }
    }

    /// A plausible default stack profile for this vendor.
    pub fn default_stack(&self) -> InjectorStack {
        match self {
            // The ack-guessing Korean ISP shows random TTLs (paper §4.3).
            Vendor::AckGuessBurst { .. } => InjectorStack {
                ip_id: IpIdMode::Random,
                ttl: TtlMode::Random { lo: 10, hi: 250 },
                burst_gap: SimDuration::from_micros(120),
            },
            // GFW-style boxes: random IP-ID, distinct fixed TTL.
            Vendor::GfwMixed | Vendor::GfwDoubleRstAck | Vendor::SynRstBoth => InjectorStack {
                ip_id: IpIdMode::Random,
                ttl: TtlMode::Fixed(101),
                burst_gap: SimDuration::from_micros(90),
            },
            // Commercial firewalls: counter IP-ID of their own, TTL 128.
            Vendor::FirewallRst | Vendor::FirewallRstAck => InjectorStack {
                ip_id: IpIdMode::Counter {
                    start: 0x9000,
                    stride_max: 1,
                },
                ttl: TtlMode::Fixed(120),
                burst_gap: SimDuration::from_micros(200),
            },
            _ => InjectorStack::typical(),
        }
    }

    /// Build a per-session middlebox instance with this vendor's defaults.
    pub fn build(&self, rules: RuleSet) -> TamperingMiddlebox {
        TamperingMiddlebox::new(rules, self.stages(), self.action(), self.default_stack())
    }

    /// Build with an explicit stack profile.
    pub fn build_with_stack(&self, rules: RuleSet, stack: InjectorStack) -> TamperingMiddlebox {
        TamperingMiddlebox::new(rules, self.stages(), self.action(), stack)
    }

    /// True if this vendor needs to be in-path (drops packets); on-path
    /// (copy-tap) deployment suffices otherwise.
    pub fn requires_in_path(&self) -> bool {
        match self.action() {
            TamperAction::DropFlow { .. } => true,
            TamperAction::Inject { drop_trigger, .. } => drop_trigger,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_assignment() {
        assert!(Vendor::SynDropAll.stages().on_syn);
        assert!(Vendor::DataDropAll.stages().on_first_data);
        assert!(Vendor::FirewallRst.stages().on_later_data);
        assert!(!Vendor::FirewallRst.stages().on_first_data);
    }

    #[test]
    fn in_path_requirement() {
        assert!(Vendor::SynDropAll.requires_in_path());
        assert!(Vendor::DataDropAll.requires_in_path());
        assert!(Vendor::DataDropRst { n: 1 }.requires_in_path());
        assert!(!Vendor::GfwDoubleRstAck.requires_in_path());
        assert!(!Vendor::PshRst.requires_in_path());
    }

    #[test]
    fn burst_sizes_match_names() {
        if let TamperAction::Inject { to_server, .. } = Vendor::GfwDoubleRstAck.action() {
            assert_eq!(to_server.len(), 2);
            assert!(to_server.iter().all(|s| s.kind == RstKind::RstAck));
        } else {
            panic!("expected inject");
        }
        if let TamperAction::Inject { to_server, .. } = (Vendor::AckGuessBurst { n: 3 }).action() {
            assert_eq!(to_server.len(), 3);
            let offsets: Vec<_> = to_server.iter().map(|s| s.ack).collect();
            assert_eq!(offsets[0], AckStrategy::Exact);
            assert_eq!(offsets[1], AckStrategy::Offset(1460));
            assert_eq!(offsets[2], AckStrategy::Offset(2920));
        } else {
            panic!("expected inject");
        }
    }

    #[test]
    fn all_vendors_build() {
        for v in ALL_VENDORS {
            let _ = v.build(RuleSet::blanket());
        }
    }
}

impl Vendor {
    /// Compact configuration-file encoding, e.g. `SynRst(2)`,
    /// `GfwDoubleRstAck`.
    pub fn as_config_str(&self) -> String {
        match *self {
            Vendor::SynDropAll => "SynDropAll".into(),
            Vendor::SynRst { n } => format!("SynRst({n})"),
            Vendor::SynRstAck { n } => format!("SynRstAck({n})"),
            Vendor::SynRstBoth => "SynRstBoth".into(),
            Vendor::DataDropAll => "DataDropAll".into(),
            Vendor::DataDropRst { n } => format!("DataDropRst({n})"),
            Vendor::DataDropRstAck { n } => format!("DataDropRstAck({n})"),
            Vendor::PshDropAll => "PshDropAll".into(),
            Vendor::PshRst => "PshRst".into(),
            Vendor::PshRstAck => "PshRstAck".into(),
            Vendor::GfwMixed => "GfwMixed".into(),
            Vendor::GfwDoubleRstAck => "GfwDoubleRstAck".into(),
            Vendor::SameAckBurst { n } => format!("SameAckBurst({n})"),
            Vendor::AckGuessBurst { n } => format!("AckGuessBurst({n})"),
            Vendor::ZeroAckPair => "ZeroAckPair".into(),
            Vendor::FirewallRst => "FirewallRst".into(),
            Vendor::FirewallRstAck => "FirewallRstAck".into(),
        }
    }

    /// Parse the configuration-file encoding.
    pub fn parse_config(s: &str) -> Option<Vendor> {
        let (name, arg) = match s.find('(') {
            Some(open) => {
                let close = s.strip_suffix(')')?;
                let n: u8 = close[open + 1..].parse().ok()?;
                (&s[..open], Some(n))
            }
            None => (s, None),
        };
        Some(match (name, arg) {
            ("SynDropAll", None) => Vendor::SynDropAll,
            ("SynRst", Some(n)) => Vendor::SynRst { n },
            ("SynRstAck", Some(n)) => Vendor::SynRstAck { n },
            ("SynRstBoth", None) => Vendor::SynRstBoth,
            ("DataDropAll", None) => Vendor::DataDropAll,
            ("DataDropRst", Some(n)) => Vendor::DataDropRst { n },
            ("DataDropRstAck", Some(n)) => Vendor::DataDropRstAck { n },
            ("PshDropAll", None) => Vendor::PshDropAll,
            ("PshRst", None) => Vendor::PshRst,
            ("PshRstAck", None) => Vendor::PshRstAck,
            ("GfwMixed", None) => Vendor::GfwMixed,
            ("GfwDoubleRstAck", None) => Vendor::GfwDoubleRstAck,
            ("SameAckBurst", Some(n)) => Vendor::SameAckBurst { n },
            ("AckGuessBurst", Some(n)) => Vendor::AckGuessBurst { n },
            ("ZeroAckPair", None) => Vendor::ZeroAckPair,
            ("FirewallRst", None) => Vendor::FirewallRst,
            ("FirewallRstAck", None) => Vendor::FirewallRstAck,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod config_codec_tests {
    use super::*;

    #[test]
    fn config_encoding_round_trips_every_vendor() {
        for v in ALL_VENDORS {
            let s = v.as_config_str();
            assert_eq!(Vendor::parse_config(&s), Some(v), "{s}");
        }
    }

    #[test]
    fn bad_encodings_rejected() {
        for bad in ["", "Nope", "SynRst", "SynRst(x)", "SynRst(1", "PshRst(2)"] {
            assert_eq!(Vendor::parse_config(bad), None, "{bad}");
        }
    }
}
