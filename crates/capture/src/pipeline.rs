//! The collection pipeline: turns a raw session trace into the constrained
//! [`FlowRecord`] the paper's infrastructure stored.
//!
//! Constraints reproduced exactly (paper §3.2):
//! 1. only inbound (client→server) packets are logged;
//! 2. only the first 10 packets are retained;
//! 3. timestamps are quantized to one second;
//! 4. log order may differ from arrival order within a timestamp bucket.

use crate::record::{FlowRecord, PacketRecord};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use tamper_netsim::SessionTrace;

/// Collector configuration.
#[derive(Debug, Clone, Copy)]
pub struct CollectorConfig {
    /// Maximum packets retained per flow (paper: 10).
    pub max_packets: usize,
    /// Quantize timestamps to whole seconds (paper: true). Disable only in
    /// the A3 ablation.
    pub quantize_timestamps: bool,
    /// Shuffle log order within each one-second bucket to model the
    /// paper's out-of-order logging.
    pub shuffle_within_second: bool,
    /// Re-encode each packet to wire bytes and re-parse it before
    /// recording, exercising the full serialization path (slower; on in
    /// fidelity tests).
    pub reencode: bool,
}

impl Default for CollectorConfig {
    fn default() -> CollectorConfig {
        CollectorConfig {
            max_packets: 10,
            quantize_timestamps: true,
            shuffle_within_second: true,
            reencode: false,
        }
    }
}

/// Convert one session trace into a flow record under the collection
/// constraints. Returns `None` when the server saw no packets at all (a
/// fully black-holed connection never creates server state to sample).
pub fn collect(
    trace: &SessionTrace,
    cfg: &CollectorConfig,
    rng: &mut StdRng,
) -> Option<FlowRecord> {
    let mut inbound: Vec<_> = trace.inbound().collect();
    if inbound.is_empty() {
        return None;
    }
    let truncated = inbound.len() > cfg.max_packets;
    inbound.truncate(cfg.max_packets);

    let first = &inbound[0];
    let client_ip = first.packet.ip.src();
    let server_ip = first.packet.ip.dst();
    let src_port = first.packet.tcp.src_port;
    let dst_port = first.packet.tcp.dst_port;

    let mut packets: Vec<PacketRecord> = inbound
        .iter()
        .map(|tp| {
            let ts = if cfg.quantize_timestamps {
                tp.time.as_secs()
            } else {
                // Ablation mode: keep nanosecond precision by encoding
                // nanoseconds in the (widened) seconds field.
                tp.time.as_nanos()
            };
            if cfg.reencode {
                let frame = tp.packet.emit();
                let parsed =
                    tamper_wire::Packet::parse(&frame).expect("emitted packet must re-parse");
                PacketRecord::from_packet(ts, &parsed)
            } else {
                PacketRecord::from_packet(ts, &tp.packet)
            }
        })
        .collect();

    if cfg.shuffle_within_second && cfg.quantize_timestamps {
        shuffle_within_buckets(&mut packets, rng);
    }

    Some(FlowRecord {
        client_ip,
        server_ip,
        src_port,
        dst_port,
        packets,
        observation_end_sec: if cfg.quantize_timestamps {
            trace.ended.as_secs()
        } else {
            trace.ended.as_nanos()
        },
        truncated,
    })
}

/// Shuffle records within runs of equal timestamps, deterministically.
fn shuffle_within_buckets(packets: &mut [PacketRecord], rng: &mut StdRng) {
    let mut i = 0;
    while i < packets.len() {
        let ts = packets[i].ts_sec;
        let mut j = i + 1;
        while j < packets.len() && packets[j].ts_sec == ts {
            j += 1;
        }
        packets[i..j].shuffle(rng);
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};
    use tamper_netsim::{
        derive_rng, run_session, ClientConfig, Path, ServerConfig, SessionParams, SimDuration,
        SimTime,
    };

    fn trace() -> SessionTrace {
        let src = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 20));
        let dst = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
        let cfg = ClientConfig::default_tls(src, dst, "site.example");
        let server = ServerConfig::default_edge(dst, 443);
        let mut path = Path::direct(SimDuration::from_millis(40), 11);
        let mut rng = derive_rng(11, 1);
        run_session(
            SessionParams::new(cfg, server, SimTime::from_secs(1000)),
            &mut path,
            &mut rng,
        )
    }

    #[test]
    fn collects_inbound_only_up_to_ten() {
        let t = trace();
        let mut rng = derive_rng(11, 2);
        let flow = collect(&t, &CollectorConfig::default(), &mut rng).unwrap();
        assert!(flow.packets.len() <= 10);
        assert!(!flow.packets.is_empty());
        assert_eq!(flow.dst_port, 443);
        assert_eq!(flow.client_ip, IpAddr::V4(Ipv4Addr::new(203, 0, 113, 20)));
    }

    #[test]
    fn timestamps_are_quantized() {
        let t = trace();
        let mut rng = derive_rng(11, 3);
        let flow = collect(&t, &CollectorConfig::default(), &mut rng).unwrap();
        // Session starts at t=1000s and completes within a couple seconds.
        for p in &flow.packets {
            assert!(p.ts_sec >= 1000 && p.ts_sec < 1005, "ts {}", p.ts_sec);
        }
        assert_eq!(flow.observation_end_sec, 1030);
    }

    #[test]
    fn empty_trace_yields_none() {
        let t = SessionTrace {
            packets: vec![],
            started: SimTime::ZERO,
            ended: SimTime::from_secs(30),
            tamper_events: vec![],
        };
        let mut rng = derive_rng(11, 4);
        assert!(collect(&t, &CollectorConfig::default(), &mut rng).is_none());
    }

    #[test]
    fn reencode_round_trips() {
        let t = trace();
        let mut rng1 = derive_rng(11, 5);
        let mut rng2 = derive_rng(11, 5);
        let cfg_direct = CollectorConfig {
            shuffle_within_second: false,
            ..Default::default()
        };
        let cfg_reencode = CollectorConfig {
            shuffle_within_second: false,
            reencode: true,
            ..Default::default()
        };
        let a = collect(&t, &cfg_direct, &mut rng1).unwrap();
        let b = collect(&t, &cfg_reencode, &mut rng2).unwrap();
        assert_eq!(a, b, "wire round-trip must not alter records");
    }

    #[test]
    fn shuffle_only_permutes_within_buckets() {
        let t = trace();
        let mut rng1 = derive_rng(11, 6);
        let mut rng2 = derive_rng(12, 6);
        let cfg = CollectorConfig::default();
        let a = collect(&t, &cfg, &mut rng1).unwrap();
        let b = collect(&t, &cfg, &mut rng2).unwrap();
        // Same multiset of packets regardless of shuffle seed.
        let mut sa: Vec<_> = a
            .packets
            .iter()
            .map(|p| (p.ts_sec, p.seq, p.flags))
            .collect();
        let mut sb: Vec<_> = b
            .packets
            .iter()
            .map(|p| (p.ts_sec, p.seq, p.flags))
            .collect();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb);
        // Timestamps remain non-decreasing (shuffle never crosses buckets).
        for w in a.packets.windows(2) {
            assert!(w[0].ts_sec <= w[1].ts_sec);
        }
    }

    #[test]
    fn truncation_marker_set_for_long_flows() {
        let src = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 21));
        let dst = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
        let cfg = ClientConfig::default_tls(src, dst, "site.example");
        let mut server = ServerConfig::default_edge(dst, 443);
        server.response_segments = 12; // client ACKs each → > 10 inbound
        let mut path = Path::direct(SimDuration::from_millis(30), 11);
        let mut rng = derive_rng(11, 7);
        let t = run_session(
            SessionParams::new(cfg, server, SimTime::ZERO),
            &mut path,
            &mut rng,
        );
        let mut crng = derive_rng(11, 8);
        let flow = collect(&t, &CollectorConfig::default(), &mut crng).unwrap();
        assert_eq!(flow.packets.len(), 10);
        assert!(flow.truncated);
    }
}
