//! The streaming, sharded classification engine.
//!
//! One reader thread pulls records off the pcap stream and fans them out
//! over bounded channels to N worker shards keyed by `hash(FlowKey) % N`.
//! Each shard owns its slice of the flow table ([`FlowTable`]), applies
//! the paper's collection constraints, evicts flows on the inactivity
//! timeout *as the capture streams*, and folds every closed flow into a
//! caller-supplied accumulator. The per-shard accumulators are merged in
//! shard order at the end — the same fold/merge shape `worldgen::driver`
//! uses — so the result is byte-identical for any thread count.
//!
//! # Determinism
//!
//! Three choices make the engine's output independent of thread count and
//! scheduling:
//!
//! 1. **A single capture clock.** The reader stamps every record with the
//!    running maximum timestamp seen so far. Shards evict on the predicate
//!    `last_packet_ts + timeout < stamp`, evaluated against the stamp of
//!    the record being absorbed — a pure function of the capture bytes,
//!    not of which shard saw which record when.
//! 2. **Stable flow ordering.** The reader assigns each record a global
//!    index; a flow remembers the index of the packet that opened it, and
//!    callers that need first-seen order sort closed flows by that index.
//! 3. **End-of-stream flush.** The reader publishes the final stamp
//!    through an atomic before closing the channels; each shard drains its
//!    table against that stamp, so the timeout-vs-end-of-capture split is
//!    also deterministic.
//!
//! The only scheduling- or shard-count-dependent outputs are the perf
//! counters ([`EngineStats::channel_stalls`], [`EngineStats::threads`],
//! [`EngineStats::max_live_flows`]) and anything published to an attached
//! [`tamper_obs::Registry`]; callers must keep both out of any
//! byte-compared report. [`run_engine_observed`] wires the registry
//! through the reader, every shard, and the merge step.
//!
//! # Memory bound
//!
//! With `max_flows = M` and `threads = N`, each shard caps its live table
//! at `max(1, M / N)` flows and sheds least-recently-active flows past
//! that (counted in [`EngineStats::evicted_cap`]), so live flows never
//! exceed `N * max(1, M / N)` — at most `M` whenever `N ≤ M`. Channels
//! are bounded, so a slow shard backpressures the reader instead of
//! growing a queue.

use crate::offline::{ClosedFlow, EvictionCause, FlowTable, IngestStats, OfflineConfig};
use crate::pcap::{PcapError, PcapReader};
use crossbeam::channel::{bounded, Receiver, TrySendError};
use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use tamper_netsim::splitmix64;
use tamper_obs::{Registry, ScopeMetrics};
use tamper_wire::Packet;

/// Configuration for [`run_engine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Flow-assembly constraints (ports, packet cap, timeout).
    pub offline: OfflineConfig,
    /// Worker shards (0 = one per available core).
    pub threads: usize,
    /// Global live-flow bound (0 = unbounded). Split evenly across shards.
    pub max_flows: usize,
    /// Records per channel message (amortizes channel overhead).
    pub batch_size: usize,
    /// Batches in flight per shard before the reader blocks.
    pub channel_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            offline: OfflineConfig::default(),
            threads: 0,
            max_flows: 0,
            batch_size: 256,
            channel_capacity: 64,
        }
    }
}

impl EngineConfig {
    /// The shard count this configuration resolves to.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }

    /// Per-shard live-flow cap (0 = unbounded).
    pub fn per_shard_cap(&self) -> usize {
        if self.max_flows == 0 {
            0
        } else {
            (self.max_flows / self.resolved_threads()).max(1)
        }
    }
}

/// Per-stage counters from one engine run.
///
/// Everything except `channel_stalls` and `threads` is a pure function of
/// the capture bytes and the [`EngineConfig`] flow parameters — identical
/// for any thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Records read off the pcap stream.
    pub records: u64,
    /// Flow-assembly counters (flows, packets kept, truncated, unparsable,
    /// not-inbound) — same meanings as the legacy single-pass path.
    pub ingest: IngestStats,
    /// Flows evicted because their inactivity timeout elapsed mid-capture.
    pub evicted_timeout: u64,
    /// Flows shed by the live-flow cap (memory pressure).
    pub evicted_cap: u64,
    /// Flows still live at end of capture, drained inside their timeout
    /// window.
    pub drained_eof: u64,
    /// True if the capture ended in a corrupt or truncated record; the
    /// bytes read up to that point were still processed.
    pub corrupt_tail: bool,
    /// Times the reader found a shard channel full and had to block
    /// (scheduling-dependent; exclude from byte-compared output).
    pub channel_stalls: u64,
    /// Largest per-shard live-flow high-water mark — the engine's actual
    /// peak table occupancy, a true maximum across shards. (The per-shard
    /// sum, if wanted, is the `sum_high_water` gauge in the `merge`
    /// metrics scope.) Depends on the shard count via routing, so keep it
    /// out of byte-compared output.
    pub max_live_flows: u64,
    /// Worker shards used (scheduling-dependent when auto-detected;
    /// exclude from byte-compared output).
    pub threads: usize,
}

/// One record in flight to a shard.
struct RecordMsg {
    index: u64,
    ts: u64,
    stamp: u64,
    frame: Vec<u8>,
}

/// What one shard hands back when its channel drains.
struct ShardOutcome<T> {
    acc: T,
    ingest: IngestStats,
    evicted_timeout: u64,
    evicted_cap: u64,
    drained_eof: u64,
    high_water: usize,
}

/// Route a raw IP frame to a shard by hashing its 4-tuple, without a full
/// (checksum-validating) parse. Returns `None` for frames that cannot be
/// TCP/IP — every such frame would also fail [`Packet::parse`], so the
/// reader counts it as unparsable without shipping it anywhere.
fn route_hash(frame: &[u8]) -> Option<u64> {
    fn mix(h: u64, v: u64) -> u64 {
        splitmix64(h ^ v)
    }
    fn word(b: &[u8], at: usize) -> u64 {
        // Callers guard the frame length, but stay bounds-checked anyway:
        // a short read hashes as zero instead of panicking.
        let mut w = [0u8; 4];
        if let Some(s) = b.get(at..at + 4) {
            w.copy_from_slice(s);
        }
        u64::from(u32::from_be_bytes(w))
    }
    let first = *frame.first()?;
    match first >> 4 {
        4 => {
            // The wire parser only accepts a 20-byte header (IHL 5) and
            // protocol 6; anything else fails full parse too.
            if frame.len() < 24 || (first & 0x0f) != 5 || frame.get(9) != Some(&6) {
                return None;
            }
            let mut h = mix(0x7461_6d70_6572_0004, word(frame, 12)); // src
            h = mix(h, word(frame, 16)); // dst
            Some(mix(h, word(frame, 20))) // ports
        }
        6 => {
            if frame.len() < 44 || frame.get(6) != Some(&6) {
                return None;
            }
            let mut h = 0x7461_6d70_6572_0006;
            for off in (8..40).step_by(4) {
                h = mix(h, word(frame, off)); // src + dst
            }
            Some(mix(h, word(frame, 40))) // ports
        }
        _ => None,
    }
}

fn run_shard<T, FO>(
    rx: Receiver<Vec<RecordMsg>>,
    cfg: OfflineConfig,
    per_shard_cap: usize,
    final_stamp: &AtomicU64,
    mut acc: T,
    observe: &FO,
    mut sm: ScopeMetrics,
) -> (ShardOutcome<T>, ScopeMetrics)
where
    FO: Fn(&mut T, ClosedFlow),
{
    let mut table = FlowTable::new(cfg, per_shard_cap);
    let mut ingest = IngestStats::default();
    let mut closed: Vec<ClosedFlow> = Vec::new();
    let mut evicted_timeout = 0u64;
    let mut evicted_cap = 0u64;
    let mut drained_eof = 0u64;

    let mut fold = |acc: &mut T, closed: &mut Vec<ClosedFlow>, sm: &mut ScopeMetrics| {
        for cf in closed.drain(..) {
            match cf.cause {
                EvictionCause::Timeout => evicted_timeout += 1,
                EvictionCause::CapPressure => evicted_cap += 1,
                EvictionCause::EndOfCapture => drained_eof += 1,
            }
            sm.count("flows_closed", 1);
            let sw = sm.start();
            observe(acc, cf);
            // One clock read feeds both the stage timer and the latency
            // histogram.
            if let Some(ns) = sw.elapsed_ns() {
                sm.record_timer("classify", ns);
                sm.record_hist("classify_latency_ns", ns);
            }
        }
    };

    for batch in rx.iter() {
        sm.count("batches", 1);
        for msg in batch {
            sm.count("records", 1);
            let sw = sm.start();
            let parsed = Packet::parse(&msg.frame);
            sm.stop("parse", sw);
            match parsed {
                Err(_) => ingest.unparsable += 1,
                Ok(pkt) => {
                    if !cfg.server_ports.contains(&pkt.tcp.dst_port) {
                        ingest.not_inbound += 1;
                    } else {
                        let sw = sm.start();
                        table.absorb(msg.index, msg.ts, msg.stamp, &pkt, &mut ingest, &mut closed);
                        sm.stop("absorb_evict", sw);
                        fold(&mut acc, &mut closed, &mut sm);
                        sm.gauge_max("live_flows", table.live() as u64);
                    }
                }
            }
        }
    }
    // Channel closed: the reader has published the final capture stamp.
    let sw = sm.start();
    table.drain(final_stamp.load(Ordering::Acquire), &mut closed);
    sm.stop("drain", sw);
    fold(&mut acc, &mut closed, &mut sm);
    sm.gauge_max("high_water", table.high_water() as u64);

    (
        ShardOutcome {
            acc,
            ingest,
            evicted_timeout,
            evicted_cap,
            drained_eof,
            high_water: table.high_water(),
        },
        sm,
    )
}

/// Run the streaming engine over a pcap stream.
///
/// `init` builds one accumulator per shard, `observe` folds each closed
/// flow into its shard's accumulator, and `merge` combines shard
/// accumulators (in shard order) into the first shard's. This is the same
/// fold/merge shape as `WorldSim::run_sharded`, so an
/// `analysis::Collector` drops in directly.
///
/// A malformed global header aborts with the error; a corrupt record
/// mid-stream ends reading with [`EngineStats::corrupt_tail`] set and
/// everything before it processed normally.
pub fn run_engine<R, T, FI, FO, FM>(
    input: R,
    cfg: &EngineConfig,
    init: FI,
    observe: FO,
    merge: FM,
) -> Result<(T, EngineStats), PcapError>
where
    R: Read,
    T: Send,
    FI: Fn() -> T + Sync,
    FO: Fn(&mut T, ClosedFlow) + Sync,
    FM: FnMut(&mut T, T),
{
    run_engine_observed(input, cfg, None, init, observe, merge)
}

/// [`run_engine`] with an optional [`Registry`] attached.
///
/// When `obs` is `Some`, the run publishes a `reader` scope (framing and
/// routing counters, channel stall accounting, whole-read timer), one
/// `shard<i>` scope per worker (parse/absorb/classify/drain stage timers,
/// a classify-latency histogram, live-flow occupancy gauges), and a
/// `merge` scope (merge timer, `sum_high_water` / `max_live_flows`
/// gauges). When `obs` is `None` every instrument is disabled and the hot
/// path performs no clock reads — [`run_engine`] is exactly this with
/// `None`.
///
/// Metric values are wall-clock and scheduling dependent; they ride the
/// registry only, never the returned accumulator or [`EngineStats`], so
/// attaching a registry cannot perturb byte-compared output.
pub fn run_engine_observed<R, T, FI, FO, FM>(
    input: R,
    cfg: &EngineConfig,
    obs: Option<&Registry>,
    init: FI,
    observe: FO,
    mut merge: FM,
) -> Result<(T, EngineStats), PcapError>
where
    R: Read,
    T: Send,
    FI: Fn() -> T + Sync,
    FO: Fn(&mut T, ClosedFlow) + Sync,
    FM: FnMut(&mut T, T),
{
    let mut reader = PcapReader::new(input)?;
    let threads = cfg.resolved_threads();
    let per_shard_cap = cfg.per_shard_cap();
    let batch_size = cfg.batch_size.max(1);
    let channel_capacity = cfg.channel_capacity.max(1);
    let final_stamp = AtomicU64::new(0);

    let mut stats = EngineStats {
        threads,
        ..EngineStats::default()
    };

    let offline = cfg.offline;
    let final_ref = &final_stamp;
    let init_ref = &init;
    let observe_ref = &observe;

    let mut rm = match obs {
        Some(r) => r.scope("reader"),
        None => ScopeMetrics::disabled(),
    };

    let outcomes: Vec<(ShardOutcome<T>, ScopeMetrics)> = crossbeam::thread::scope(|s| {
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx) = bounded::<Vec<RecordMsg>>(channel_capacity);
            senders.push(tx);
            let sm = match obs {
                Some(r) => r.scope(format!("shard{i}")),
                None => ScopeMetrics::disabled(),
            };
            handles.push(s.spawn(move |_| {
                run_shard(
                    rx,
                    offline,
                    per_shard_cap,
                    final_ref,
                    init_ref(),
                    observe_ref,
                    sm,
                )
            }));
        }

        // ---- reader loop (this thread) ----
        let read_sw = rm.start();
        let mut batches: Vec<Vec<RecordMsg>> = (0..threads).map(|_| Vec::new()).collect();
        let mut index = 0u64;
        let mut stamp = 0u64;
        let flush = |shard: usize,
                     batches: &mut Vec<Vec<RecordMsg>>,
                     stats: &mut EngineStats,
                     rm: &mut ScopeMetrics| {
            // tamperlint: allow(index) — shard < threads == batches.len() by the route_hash modulo
            let batch = std::mem::take(&mut batches[shard]);
            if batch.is_empty() {
                return;
            }
            rm.count("batches_sent", 1);
            // tamperlint: allow(index) — shard < threads == senders.len() by the route_hash modulo
            match senders[shard].try_send(batch) {
                Ok(()) => {}
                Err(TrySendError::Full(batch)) => {
                    stats.channel_stalls += 1;
                    rm.count("channel_stalls", 1);
                    // Worker threads only exit when senders drop, so a
                    // blocking send can only fail on worker panic.
                    let sw = rm.start();
                    // tamperlint: allow(index) — same in-bounds shard as the try_send above
                    let _ = senders[shard].send(batch);
                    rm.stop("stalled", sw);
                }
                Err(TrySendError::Disconnected(_)) => {}
            }
        };
        loop {
            match reader.next_record() {
                Ok(Some(rec)) => {
                    stats.records += 1;
                    rm.count("records", 1);
                    let ts = u64::from(rec.ts_sec);
                    stamp = stamp.max(ts);
                    match route_hash(&rec.frame) {
                        Some(h) => {
                            let shard = (h % threads as u64) as usize;
                            // tamperlint: allow(index) — shard < threads == batches.len() by construction
                            batches[shard].push(RecordMsg {
                                index,
                                ts,
                                stamp,
                                frame: rec.frame,
                            });
                            // tamperlint: allow(index) — same in-bounds shard as the push above
                            if batches[shard].len() >= batch_size {
                                flush(shard, &mut batches, &mut stats, &mut rm);
                            }
                        }
                        None => {
                            stats.ingest.unparsable += 1;
                            rm.count("unroutable", 1);
                        }
                    }
                    index += 1;
                }
                Ok(None) => break,
                Err(_) => {
                    // Corrupt or truncated tail: keep everything read so
                    // far, record the damage, stop reading.
                    stats.corrupt_tail = true;
                    rm.count("corrupt_tail", 1);
                    break;
                }
            }
        }
        for shard in 0..threads {
            flush(shard, &mut batches, &mut stats, &mut rm);
        }
        final_stamp.store(stamp, Ordering::Release);
        drop(senders);
        rm.stop("read", read_sw);

        handles
            .into_iter()
            // tamperlint: allow(panic) — join() only fails if the shard itself panicked; re-raising preserves the original panic
            .map(|h| h.join().expect("engine shard panicked"))
            .collect()
    })
    // tamperlint: allow(panic) — crossbeam scope() only fails if a scoped thread panicked; re-raising preserves it
    .expect("engine thread scope panicked");

    // Merge shard accumulators and counters in shard order — deterministic.
    let mut mm = match obs {
        Some(r) => r.scope("merge"),
        None => ScopeMetrics::disabled(),
    };
    let merge_sw = mm.start();
    let mut shard_scopes: Vec<ScopeMetrics> = Vec::with_capacity(threads);
    let mut shard_outcomes: Vec<ShardOutcome<T>> = Vec::with_capacity(threads);
    for (o, sm) in outcomes {
        shard_outcomes.push(o);
        shard_scopes.push(sm);
    }
    let mut it = shard_outcomes.into_iter();
    // tamperlint: allow(panic) — threads is clamped to >= 1 above, so one shard always exists
    let first = it.next().expect("at least one shard");
    let mut sum_high_water = 0u64;
    let mut fold_stats = |stats: &mut EngineStats, o: &ShardOutcome<T>| {
        stats.ingest.flows += o.ingest.flows;
        stats.ingest.packets += o.ingest.packets;
        stats.ingest.truncated_packets += o.ingest.truncated_packets;
        stats.ingest.unparsable += o.ingest.unparsable;
        stats.ingest.not_inbound += o.ingest.not_inbound;
        stats.evicted_timeout += o.evicted_timeout;
        stats.evicted_cap += o.evicted_cap;
        stats.drained_eof += o.drained_eof;
        // The engine's peak table occupancy is the *largest* per-shard
        // high-water mark, not the sum of them (the per-shard sum rides
        // the merge scope's `sum_high_water` gauge instead).
        stats.max_live_flows = stats.max_live_flows.max(o.high_water as u64);
        sum_high_water += o.high_water as u64;
    };
    fold_stats(&mut stats, &first);
    let mut acc = first.acc;
    for o in it {
        fold_stats(&mut stats, &o);
        merge(&mut acc, o.acc);
    }
    mm.stop("merge", merge_sw);
    mm.gauge_set("threads", threads as u64);
    mm.gauge_max("sum_high_water", sum_high_water);
    mm.gauge_max("max_live_flows", stats.max_live_flows);
    if let Some(r) = obs {
        for sm in shard_scopes {
            r.publish(sm);
        }
        r.publish(rm);
        r.publish(mm);
    }

    Ok((acc, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::PcapWriter;
    use bytes::Bytes;
    use std::net::{IpAddr, Ipv4Addr};
    use tamper_wire::{PacketBuilder, TcpFlags};

    fn client(i: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(203, 0, 113, i))
    }
    fn server() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1))
    }

    fn frame(
        src: IpAddr,
        sport: u16,
        flags: TcpFlags,
        seq: u32,
        payload: &'static [u8],
    ) -> Vec<u8> {
        PacketBuilder::new(src, server(), sport, 443)
            .flags(flags)
            .seq(seq)
            .payload(Bytes::from_static(payload))
            .build()
            .emit()
            .to_vec()
    }

    /// Collect every closed flow, tagged with its first-seen index.
    fn collect_flows(bytes: &[u8], cfg: &EngineConfig) -> (Vec<ClosedFlow>, EngineStats) {
        let (mut flows, stats) = run_engine(
            bytes,
            cfg,
            Vec::new,
            |acc: &mut Vec<ClosedFlow>, cf| acc.push(cf),
            |a, mut b| a.append(&mut b),
        )
        .unwrap();
        flows.sort_unstable_by_key(|cf| cf.first_index);
        (flows, stats)
    }

    fn capture(n_flows: u32) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..n_flows {
            let c = client((1 + i % 200) as u8);
            let sport = 4000 + (i % 10_000) as u16;
            let t = 100 + i;
            w.write_frame(t, 0, &frame(c, sport, TcpFlags::SYN, 1, b""))
                .unwrap();
            w.write_frame(t, 1, &frame(c, sport, TcpFlags::ACK, 2, b""))
                .unwrap();
            w.write_frame(t + 1, 0, &frame(c, sport, TcpFlags::PSH_ACK, 2, b"hello"))
                .unwrap();
        }
        w.into_inner()
    }

    #[test]
    fn engine_matches_legacy_path_for_any_thread_count() {
        let bytes = capture(120);
        let (legacy_flows, legacy_stats) =
            crate::offline::flows_from_pcap(&bytes[..], &OfflineConfig::default()).unwrap();
        for threads in [1, 2, 3, 8] {
            let cfg = EngineConfig {
                threads,
                ..EngineConfig::default()
            };
            let (flows, stats) = collect_flows(&bytes, &cfg);
            assert_eq!(flows.len(), legacy_flows.len(), "threads={threads}");
            for (cf, lf) in flows.iter().zip(&legacy_flows) {
                assert_eq!(&cf.flow, lf, "threads={threads}");
            }
            assert_eq!(stats.ingest, legacy_stats, "threads={threads}");
        }
    }

    #[test]
    fn timeout_eviction_splits_idle_flows() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        // One flow goes quiet for > 30s then resumes: two flows.
        w.write_frame(100, 0, &frame(client(1), 4000, TcpFlags::SYN, 1, b""))
            .unwrap();
        // Unrelated traffic advances the capture clock past the timeout.
        w.write_frame(140, 0, &frame(client(2), 4001, TcpFlags::SYN, 1, b""))
            .unwrap();
        w.write_frame(141, 0, &frame(client(1), 4000, TcpFlags::PSH_ACK, 2, b"x"))
            .unwrap();
        let bytes = w.into_inner();
        let (flows, stats) = collect_flows(
            &bytes,
            &EngineConfig {
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(stats.ingest.flows, 3);
        assert_eq!(stats.evicted_timeout, 1);
        assert_eq!(stats.drained_eof, 2);
        assert_eq!(flows[0].cause, EvictionCause::Timeout);
        assert_eq!(flows[0].flow.observation_end_sec, 100 + 30);
    }

    #[test]
    fn max_flows_bounds_live_tables() {
        let bytes = capture(3000);
        let cfg = EngineConfig {
            threads: 4,
            max_flows: 64,
            ..EngineConfig::default()
        };
        let (_, stats) = collect_flows(&bytes, &cfg);
        assert!(stats.evicted_cap > 0, "cap must have engaged");
        // max_live_flows is the largest per-shard high-water mark, so with
        // threads=4 and max_flows=64 it is bounded by the per-shard cap of
        // 16, not by the global 64.
        assert_eq!(cfg.per_shard_cap(), 16);
        assert!(
            stats.max_live_flows <= 16,
            "peak live flows {} exceeded the per-shard cap",
            stats.max_live_flows
        );
        assert!(stats.max_live_flows > 0, "peak occupancy must be observed");
        // Every opened flow is still accounted for exactly once.
        assert_eq!(
            stats.ingest.flows,
            stats.evicted_timeout + stats.evicted_cap + stats.drained_eof
        );
    }

    #[test]
    fn corrupt_tail_is_counted_not_fatal() {
        let mut bytes = capture(10);
        bytes.truncate(bytes.len() - 7);
        let (flows, stats) = collect_flows(
            &bytes,
            &EngineConfig {
                threads: 2,
                ..Default::default()
            },
        );
        assert!(stats.corrupt_tail);
        assert_eq!(stats.records, 29); // the torn 30th record is dropped
        assert!(!flows.is_empty());
    }

    #[test]
    fn garbage_frames_are_counted_either_side_of_the_channel() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(100, 0, &frame(client(1), 4000, TcpFlags::SYN, 1, b""))
            .unwrap();
        w.write_frame(100, 1, &[0u8; 3]).unwrap(); // fails the route peek
                                                   // Valid-looking v4/TCP shape but a corrupt checksum: routes to a
                                                   // shard, fails full parse there.
        let mut good = frame(client(1), 4001, TcpFlags::SYN, 1, b"");
        good[11] ^= 0xff;
        w.write_frame(100, 2, &good).unwrap();
        let bytes = w.into_inner();
        let (_, stats) = collect_flows(
            &bytes,
            &EngineConfig {
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(stats.ingest.unparsable, 2);
        assert_eq!(stats.ingest.flows, 1);
    }

    #[test]
    fn observed_run_publishes_scopes_without_changing_output() {
        let bytes = capture(100);
        let cfg = EngineConfig {
            threads: 3,
            ..EngineConfig::default()
        };
        let (plain_flows, plain_stats) = collect_flows(&bytes, &cfg);

        let reg = Registry::new();
        let (mut flows, stats) = run_engine_observed(
            &bytes[..],
            &cfg,
            Some(&reg),
            Vec::new,
            |acc: &mut Vec<ClosedFlow>, cf| acc.push(cf),
            |a, mut b| a.append(&mut b),
        )
        .unwrap();
        flows.sort_unstable_by_key(|cf| cf.first_index);
        assert_eq!(flows.len(), plain_flows.len());
        assert_eq!(stats, plain_stats, "registry must not perturb stats");

        let snap = reg.snapshot();
        let names: Vec<&str> = snap.scopes.iter().map(|s| s.scope.as_str()).collect();
        assert_eq!(names, vec!["merge", "reader", "shard0", "shard1", "shard2"]);
        let reader = snap.scope("reader").unwrap();
        assert_eq!(reader.counter("records"), stats.records);
        assert!(reader.timer("read").is_some());
        // Every routed record reaches some shard exactly once.
        assert_eq!(snap.counter_sum("shard", "records"), stats.records);
        assert_eq!(
            snap.counter_sum("shard", "flows_closed"),
            stats.ingest.flows
        );
        let merge = snap.scope("merge").unwrap();
        assert_eq!(merge.gauge("threads"), 3);
        assert_eq!(merge.gauge("max_live_flows"), stats.max_live_flows);
        assert!(merge.gauge("sum_high_water") >= merge.gauge("max_live_flows"));
        let shard0 = snap.scope("shard0").unwrap();
        assert!(shard0.histogram("classify_latency_ns").is_some());
        assert!(shard0.timer("parse").is_some());
    }

    #[test]
    fn route_hash_is_stable_per_flow() {
        let a = frame(client(1), 4000, TcpFlags::SYN, 1, b"");
        let b = frame(client(1), 4000, TcpFlags::PSH_ACK, 2, b"payload");
        assert_eq!(route_hash(&a), route_hash(&b));
        assert!(route_hash(&a).is_some());
        let c = frame(client(2), 4000, TcpFlags::SYN, 1, b"");
        assert_ne!(route_hash(&a), route_hash(&c));
        assert_eq!(route_hash(&[]), None);
        assert_eq!(route_hash(&[0x12, 0x34]), None);
    }
}
