//! The streaming, sharded classification engine.
//!
//! One reader thread pulls work items off a [`FlowSource`] and fans them
//! out over bounded channels to N worker shards chosen by the source's
//! pure routing function. Each shard owns the source's worker-side state
//! (for pcap: a slice of the flow table, see [`FlowTable`]), turns items
//! into finished flows *as the stream runs*, and folds every emitted flow
//! into a caller-supplied accumulator. The per-shard accumulators are
//! merged in shard order at the end, so the result is byte-identical for
//! any thread count.
//!
//! The front-ends live in [`crate::source`]: [`PcapSource`] (raw capture
//! bytes), [`crate::source::RecordSource`] (assembled [`crate::FlowRecord`]
//! streams), and [`crate::source::SimSource`] (deterministic generators —
//! `worldgen` worlds stream straight in with no intermediate pcap and no
//! second sharding implementation).
//!
//! [`FlowTable`]: crate::offline::FlowTable
//!
//! # Determinism
//!
//! Three choices make the engine's output independent of thread count and
//! scheduling:
//!
//! 1. **A single capture clock.** The pcap source stamps every record
//!    with the running maximum timestamp seen so far. Shards evict on the
//!    predicate `last_packet_ts + timeout < stamp`, evaluated against the
//!    stamp of the record being absorbed — a pure function of the capture
//!    bytes, not of which shard saw which record when.
//! 2. **Stable routing and ordering.** The reader assigns each item a
//!    global index; [`FlowSource::route`] is a pure function of the item,
//!    so a given shard count always yields the same partition, and
//!    callers that need first-seen order sort emitted flows by index.
//! 3. **End-of-stream flush.** The reader publishes the source's final
//!    stamp through an atomic before closing the channels; each shard
//!    flushes its buffered state against that stamp, so the
//!    timeout-vs-end-of-capture split is also deterministic.
//!
//! The only scheduling- or shard-count-dependent outputs are the perf
//! counters ([`EngineStats::channel_stalls`], [`EngineStats::threads`],
//! [`EngineStats::max_live_flows`]) and anything published to an attached
//! [`tamper_obs::Registry`]; callers must keep both out of any
//! byte-compared report. [`run_source_observed`] wires the registry
//! through the reader, every shard, and the merge step.
//!
//! # Memory bound
//!
//! With `max_flows = M` and `threads = N`, each pcap shard caps its live
//! table at `max(1, M / N)` flows and sheds least-recently-active flows
//! past that (counted in [`EngineStats::evicted_cap`]), so live flows
//! never exceed `N * max(1, M / N)` — at most `M` whenever `N ≤ M`.
//! Channels are bounded, so a slow shard backpressures the reader instead
//! of growing a queue.

use crate::offline::{ClosedFlow, IngestStats, OfflineConfig};
use crate::pcap::PcapError;
use crate::source::{FlowSource, PcapSource, ShardStats, SourceShard};
use crossbeam::channel::{bounded, Receiver, TrySendError};
use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use tamper_obs::{Registry, ScopeMetrics};

/// Configuration for [`run_engine`] / [`run_source`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Flow-assembly constraints (ports, packet cap, timeout).
    pub offline: OfflineConfig,
    /// Worker shards (0 = one per available core).
    pub threads: usize,
    /// Global live-flow bound (0 = unbounded). Split evenly across shards.
    pub max_flows: usize,
    /// Records per channel message (amortizes channel overhead).
    pub batch_size: usize,
    /// Batches in flight per shard before the reader blocks.
    pub channel_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            offline: OfflineConfig::default(),
            threads: 0,
            max_flows: 0,
            batch_size: 256,
            channel_capacity: 64,
        }
    }
}

impl EngineConfig {
    /// The shard count this configuration resolves to.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }

    /// Per-shard live-flow cap (0 = unbounded).
    pub fn per_shard_cap(&self) -> usize {
        if self.max_flows == 0 {
            0
        } else {
            (self.max_flows / self.resolved_threads()).max(1)
        }
    }
}

/// Per-stage counters from one engine run.
///
/// Everything except `channel_stalls` and `threads` is a pure function of
/// the source stream and the [`EngineConfig`] flow parameters — identical
/// for any thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Items pulled off the source (pcap records, flow records, or
    /// generator indices).
    pub records: u64,
    /// Flow-assembly counters (flows, packets kept, truncated, unparsable,
    /// not-inbound) — same meanings as the legacy single-pass path.
    pub ingest: IngestStats,
    /// Flows evicted because their inactivity timeout elapsed mid-capture.
    pub evicted_timeout: u64,
    /// Flows shed by the live-flow cap (memory pressure).
    pub evicted_cap: u64,
    /// Flows still live at end of capture, drained inside their timeout
    /// window.
    pub drained_eof: u64,
    /// True if the capture ended in a corrupt or truncated record; the
    /// bytes read up to that point were still processed.
    pub corrupt_tail: bool,
    /// Times the reader found a shard channel full and had to block
    /// (scheduling-dependent; exclude from byte-compared output).
    pub channel_stalls: u64,
    /// Largest per-shard live-flow high-water mark — the engine's actual
    /// peak table occupancy, a true maximum across shards. (The per-shard
    /// sum, if wanted, is the `sum_high_water` gauge in the `merge`
    /// metrics scope.) Depends on the shard count via routing, so keep it
    /// out of byte-compared output.
    pub max_live_flows: u64,
    /// Worker shards used (scheduling-dependent when auto-detected;
    /// exclude from byte-compared output).
    pub threads: usize,
}

/// One item in flight to a shard, tagged with its global index.
struct Routed<I> {
    index: u64,
    item: I,
}

/// What one shard hands back when its channel drains.
struct ShardOutcome<T> {
    acc: T,
    stats: ShardStats,
    high_water: usize,
}

/// Drain a shard's emitted outputs into its accumulator, charging the
/// classify timer and latency histogram per output.
fn fold_outputs<T, O, FO>(observe: &FO, acc: &mut T, emit: &mut Vec<O>, sm: &mut ScopeMetrics)
where
    FO: Fn(&mut T, O),
{
    for out in emit.drain(..) {
        sm.count("flows_closed", 1);
        let sw = sm.start();
        observe(acc, out);
        // One clock read feeds both the stage timer and the latency
        // histogram.
        if let Some(ns) = sw.elapsed_ns() {
            sm.record_timer("classify", ns);
            sm.record_hist("classify_latency_ns", ns);
        }
    }
}

fn run_shard<W, T, FO>(
    rx: Receiver<Vec<Routed<W::Item>>>,
    mut worker: W,
    final_stamp: &AtomicU64,
    mut acc: T,
    observe: &FO,
    mut sm: ScopeMetrics,
) -> (ShardOutcome<T>, ScopeMetrics)
where
    W: SourceShard,
    FO: Fn(&mut T, W::Out),
{
    let mut stats = ShardStats::default();
    let mut emit: Vec<W::Out> = Vec::new();

    let fold = |acc: &mut T, emit: &mut Vec<W::Out>, sm: &mut ScopeMetrics| {
        fold_outputs(observe, acc, emit, sm);
    };

    for batch in rx.iter() {
        sm.count("batches", 1);
        for msg in batch {
            sm.count("records", 1);
            worker.absorb(msg.index, msg.item, &mut stats, &mut emit, &mut sm);
            fold(&mut acc, &mut emit, &mut sm);
        }
    }
    // Channel closed: the reader has published the final capture stamp.
    worker.finish(
        final_stamp.load(Ordering::Acquire),
        &mut stats,
        &mut emit,
        &mut sm,
    );
    fold(&mut acc, &mut emit, &mut sm);

    (
        ShardOutcome {
            acc,
            stats,
            high_water: worker.high_water(),
        },
        sm,
    )
}

/// Run the streaming engine over a pcap stream.
///
/// `init` builds one accumulator per shard, `observe` folds each closed
/// flow into its shard's accumulator, and `merge` combines shard
/// accumulators (in shard order) into the first shard's. This is the same
/// fold/merge shape as `WorldSim::run_sharded`, so an
/// `analysis::Collector` drops in directly.
///
/// A malformed global header aborts with the error; a corrupt record
/// mid-stream ends reading with [`EngineStats::corrupt_tail`] set and
/// everything before it processed normally.
pub fn run_engine<R, T, FI, FO, FM>(
    input: R,
    cfg: &EngineConfig,
    init: FI,
    observe: FO,
    merge: FM,
) -> Result<(T, EngineStats), PcapError>
where
    R: Read,
    T: Send,
    FI: Fn() -> T + Sync,
    FO: Fn(&mut T, ClosedFlow) + Sync,
    FM: FnMut(&mut T, T),
{
    run_engine_observed(input, cfg, None, init, observe, merge)
}

/// [`run_engine`] with an optional [`Registry`] attached — the pcap
/// instantiation of [`run_source_observed`].
///
/// A malformed global header aborts with the error; a corrupt record
/// mid-stream ends reading with [`EngineStats::corrupt_tail`] set and
/// everything before it processed normally.
pub fn run_engine_observed<R, T, FI, FO, FM>(
    input: R,
    cfg: &EngineConfig,
    obs: Option<&Registry>,
    init: FI,
    observe: FO,
    merge: FM,
) -> Result<(T, EngineStats), PcapError>
where
    R: Read,
    T: Send,
    FI: Fn() -> T + Sync,
    FO: Fn(&mut T, ClosedFlow) + Sync,
    FM: FnMut(&mut T, T),
{
    let src = PcapSource::new(input)?;
    Ok(run_source_observed(src, cfg, obs, init, observe, merge))
}

/// Run the streaming engine over any [`FlowSource`].
///
/// Equivalent to [`run_source_observed`] with no registry: every
/// instrument is disabled and the hot path performs no clock reads.
pub fn run_source<S, T, FI, FO, FM>(
    src: S,
    cfg: &EngineConfig,
    init: FI,
    observe: FO,
    merge: FM,
) -> (T, EngineStats)
where
    S: FlowSource,
    T: Send,
    FI: Fn() -> T + Sync,
    FO: Fn(&mut T, S::Out) + Sync,
    FM: FnMut(&mut T, T),
{
    run_source_observed(src, cfg, None, init, observe, merge)
}

/// Run the streaming engine over any [`FlowSource`], with an optional
/// [`Registry`] attached.
///
/// When `obs` is `Some`, the run publishes a `reader` scope (pull and
/// routing counters, channel stall accounting, whole-read timer), one
/// `shard<i>` scope per worker (source stage timers — parse/absorb for
/// pcap, gen for simulators — classify timing with a latency histogram,
/// occupancy gauges for table-backed sources), and a `merge` scope
/// (merge timer, `sum_high_water` / `max_live_flows` gauges). When `obs`
/// is `None` every instrument is disabled and the hot path performs no
/// clock reads.
///
/// Metric values are wall-clock and scheduling dependent; they ride the
/// registry only, never the returned accumulator or [`EngineStats`], so
/// attaching a registry cannot perturb byte-compared output.
pub fn run_source_observed<S, T, FI, FO, FM>(
    mut src: S,
    cfg: &EngineConfig,
    obs: Option<&Registry>,
    init: FI,
    observe: FO,
    mut merge: FM,
) -> (T, EngineStats)
where
    S: FlowSource,
    T: Send,
    FI: Fn() -> T + Sync,
    FO: Fn(&mut T, S::Out) + Sync,
    FM: FnMut(&mut T, T),
{
    let threads = cfg.resolved_threads();
    let batch_size = cfg.batch_size.max(1);
    let channel_capacity = cfg.channel_capacity.max(1);
    let final_stamp = AtomicU64::new(0);
    src.prepare(threads);

    let mut stats = EngineStats {
        threads,
        ..EngineStats::default()
    };

    let final_ref = &final_stamp;
    let init_ref = &init;
    let observe_ref = &observe;

    let mut rm = match obs {
        Some(r) => r.scope("reader"),
        None => ScopeMetrics::disabled(),
    };

    let outcomes: Vec<(ShardOutcome<T>, ScopeMetrics)> = if threads == 1 {
        // Single-shard fast path: the one worker runs inline on the
        // reader thread — the same item sequence and absorb order as the
        // channel path, so the output is byte-identical, without a
        // worker thread to hop to. `channel_stalls` stays 0.
        let mut sm = match obs {
            Some(r) => r.scope("shard0"),
            None => ScopeMetrics::disabled(),
        };
        let mut worker = src.shard(cfg);
        let mut shard_stats = ShardStats::default();
        let mut acc = init();
        let mut emit: Vec<S::Out> = Vec::new();
        let mut pulled: Vec<S::Item> = Vec::with_capacity(batch_size);
        let mut index = 0u64;
        let read_sw = rm.start();
        loop {
            pulled.clear();
            let more = src.fill(&mut pulled, batch_size);
            for item in pulled.drain(..) {
                stats.records += 1;
                rm.count("records", 1);
                match src.route(index, &item, 1) {
                    Some(_) => {
                        sm.count("records", 1);
                        worker.absorb(index, item, &mut shard_stats, &mut emit, &mut sm);
                        fold_outputs(&observe, &mut acc, &mut emit, &mut sm);
                    }
                    None => {
                        stats.ingest.unparsable += 1;
                        rm.count("unroutable", 1);
                    }
                }
                index += 1;
            }
            if !more {
                break;
            }
        }
        stats.corrupt_tail = src.corrupt_tail();
        if stats.corrupt_tail {
            rm.count("corrupt_tail", 1);
        }
        rm.stop("read", read_sw);
        worker.finish(src.final_stamp(), &mut shard_stats, &mut emit, &mut sm);
        fold_outputs(&observe, &mut acc, &mut emit, &mut sm);
        vec![(
            ShardOutcome {
                acc,
                stats: shard_stats,
                high_water: worker.high_water(),
            },
            sm,
        )]
    } else {
        crossbeam::thread::scope(|s| {
            let mut senders = Vec::with_capacity(threads);
            let mut handles = Vec::with_capacity(threads);
            for i in 0..threads {
                let (tx, rx) = bounded::<Vec<Routed<S::Item>>>(channel_capacity);
                senders.push(tx);
                let sm = match obs {
                    Some(r) => r.scope(format!("shard{i}")),
                    None => ScopeMetrics::disabled(),
                };
                let worker = src.shard(cfg);
                handles.push(
                    s.spawn(move |_| run_shard(rx, worker, final_ref, init_ref(), observe_ref, sm)),
                );
            }

            // ---- reader loop (this thread) ----
            let read_sw = rm.start();
            let mut batches: Vec<Vec<Routed<S::Item>>> = (0..threads).map(|_| Vec::new()).collect();
            let mut pulled: Vec<S::Item> = Vec::with_capacity(batch_size);
            let mut index = 0u64;
            let flush = |shard: usize,
                         batches: &mut Vec<Vec<Routed<S::Item>>>,
                         stats: &mut EngineStats,
                         rm: &mut ScopeMetrics| {
                // tamperlint: allow(index) — shard < threads == batches.len(): routes are clamped below
                let batch = std::mem::take(&mut batches[shard]);
                if batch.is_empty() {
                    return;
                }
                rm.count("batches_sent", 1);
                // tamperlint: allow(index) — shard < threads == senders.len(): routes are clamped below
                match senders[shard].try_send(batch) {
                    Ok(()) => {}
                    Err(TrySendError::Full(batch)) => {
                        stats.channel_stalls += 1;
                        rm.count("channel_stalls", 1);
                        // Worker threads only exit when senders drop, so a
                        // blocking send can only fail on worker panic.
                        let sw = rm.start();
                        // tamperlint: allow(index) — same in-bounds shard as the try_send above
                        let _ = senders[shard].send(batch);
                        rm.stop("stalled", sw);
                    }
                    Err(TrySendError::Disconnected(_)) => {}
                }
            };
            loop {
                pulled.clear();
                let more = src.fill(&mut pulled, batch_size);
                for item in pulled.drain(..) {
                    stats.records += 1;
                    rm.count("records", 1);
                    match src.route(index, &item, threads) {
                        Some(t) => {
                            // Sources contract to route in 0..threads; clamp
                            // so a misbehaving impl degrades instead of
                            // panicking.
                            let shard = t.min(threads - 1);
                            // tamperlint: allow(index) — shard < threads == batches.len() by the clamp above
                            batches[shard].push(Routed { index, item });
                            // tamperlint: allow(index) — same in-bounds shard as the push above
                            if batches[shard].len() >= batch_size {
                                flush(shard, &mut batches, &mut stats, &mut rm);
                            }
                        }
                        None => {
                            stats.ingest.unparsable += 1;
                            rm.count("unroutable", 1);
                        }
                    }
                    index += 1;
                }
                if !more {
                    break;
                }
            }
            for shard in 0..threads {
                flush(shard, &mut batches, &mut stats, &mut rm);
            }
            stats.corrupt_tail = src.corrupt_tail();
            if stats.corrupt_tail {
                rm.count("corrupt_tail", 1);
            }
            final_stamp.store(src.final_stamp(), Ordering::Release);
            drop(senders);
            rm.stop("read", read_sw);

            handles
                .into_iter()
                // tamperlint: allow(panic) — join() only fails if the shard itself panicked; re-raising preserves the original panic
                .map(|h| h.join().expect("engine shard panicked"))
                .collect()
        })
        // tamperlint: allow(panic) — crossbeam scope() only fails if a scoped thread panicked; re-raising preserves it
        .expect("engine thread scope panicked")
    };

    // Merge shard accumulators and counters in shard order — deterministic.
    let mut mm = match obs {
        Some(r) => r.scope("merge"),
        None => ScopeMetrics::disabled(),
    };
    let merge_sw = mm.start();
    let mut shard_scopes: Vec<ScopeMetrics> = Vec::with_capacity(threads);
    let mut shard_outcomes: Vec<ShardOutcome<T>> = Vec::with_capacity(threads);
    for (o, sm) in outcomes {
        shard_outcomes.push(o);
        shard_scopes.push(sm);
    }
    let mut it = shard_outcomes.into_iter();
    // tamperlint: allow(panic) — threads is clamped to >= 1 above, so one shard always exists
    let first = it.next().expect("at least one shard");
    let mut sum_high_water = 0u64;
    let mut fold_stats = |stats: &mut EngineStats, o: &ShardOutcome<T>| {
        stats.ingest.flows += o.stats.ingest.flows;
        stats.ingest.packets += o.stats.ingest.packets;
        stats.ingest.truncated_packets += o.stats.ingest.truncated_packets;
        stats.ingest.unparsable += o.stats.ingest.unparsable;
        stats.ingest.not_inbound += o.stats.ingest.not_inbound;
        stats.evicted_timeout += o.stats.evicted_timeout;
        stats.evicted_cap += o.stats.evicted_cap;
        stats.drained_eof += o.stats.drained_eof;
        // The engine's peak table occupancy is the *largest* per-shard
        // high-water mark, not the sum of them (the per-shard sum rides
        // the merge scope's `sum_high_water` gauge instead).
        stats.max_live_flows = stats.max_live_flows.max(o.high_water as u64);
        sum_high_water += o.high_water as u64;
    };
    fold_stats(&mut stats, &first);
    let mut acc = first.acc;
    for o in it {
        fold_stats(&mut stats, &o);
        merge(&mut acc, o.acc);
    }
    mm.stop("merge", merge_sw);
    mm.gauge_set("threads", threads as u64);
    mm.gauge_max("sum_high_water", sum_high_water);
    mm.gauge_max("max_live_flows", stats.max_live_flows);
    if let Some(r) = obs {
        for sm in shard_scopes {
            r.publish(sm);
        }
        r.publish(rm);
        r.publish(mm);
    }

    (acc, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::EvictionCause;
    use crate::pcap::PcapWriter;
    use crate::source::{RecordSource, SimSource};
    use bytes::Bytes;
    use std::net::{IpAddr, Ipv4Addr};
    use tamper_wire::{PacketBuilder, TcpFlags};

    fn client(i: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(203, 0, 113, i))
    }
    fn server() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1))
    }

    fn frame(
        src: IpAddr,
        sport: u16,
        flags: TcpFlags,
        seq: u32,
        payload: &'static [u8],
    ) -> Vec<u8> {
        PacketBuilder::new(src, server(), sport, 443)
            .flags(flags)
            .seq(seq)
            .payload(Bytes::from_static(payload))
            .build()
            .emit()
            .to_vec()
    }

    /// Collect every closed flow, tagged with its first-seen index.
    fn collect_flows(bytes: &[u8], cfg: &EngineConfig) -> (Vec<ClosedFlow>, EngineStats) {
        let (mut flows, stats) = run_engine(
            bytes,
            cfg,
            Vec::new,
            |acc: &mut Vec<ClosedFlow>, cf| acc.push(cf),
            |a, mut b| a.append(&mut b),
        )
        .unwrap();
        flows.sort_unstable_by_key(|cf| cf.first_index);
        (flows, stats)
    }

    fn capture(n_flows: u32) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..n_flows {
            let c = client((1 + i % 200) as u8);
            let sport = 4000 + (i % 10_000) as u16;
            let t = 100 + i;
            w.write_frame(t, 0, &frame(c, sport, TcpFlags::SYN, 1, b""))
                .unwrap();
            w.write_frame(t, 1, &frame(c, sport, TcpFlags::ACK, 2, b""))
                .unwrap();
            w.write_frame(t + 1, 0, &frame(c, sport, TcpFlags::PSH_ACK, 2, b"hello"))
                .unwrap();
        }
        w.into_inner()
    }

    #[test]
    fn engine_matches_legacy_path_for_any_thread_count() {
        let bytes = capture(120);
        let (legacy_flows, legacy_stats) =
            crate::offline::flows_from_pcap(&bytes[..], &OfflineConfig::default()).unwrap();
        for threads in [1, 2, 3, 8] {
            let cfg = EngineConfig {
                threads,
                ..EngineConfig::default()
            };
            let (flows, stats) = collect_flows(&bytes, &cfg);
            assert_eq!(flows.len(), legacy_flows.len(), "threads={threads}");
            for (cf, lf) in flows.iter().zip(&legacy_flows) {
                assert_eq!(&cf.flow, lf, "threads={threads}");
            }
            assert_eq!(stats.ingest, legacy_stats, "threads={threads}");
        }
    }

    #[test]
    fn timeout_eviction_splits_idle_flows() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        // One flow goes quiet for > 30s then resumes: two flows.
        w.write_frame(100, 0, &frame(client(1), 4000, TcpFlags::SYN, 1, b""))
            .unwrap();
        // Unrelated traffic advances the capture clock past the timeout.
        w.write_frame(140, 0, &frame(client(2), 4001, TcpFlags::SYN, 1, b""))
            .unwrap();
        w.write_frame(141, 0, &frame(client(1), 4000, TcpFlags::PSH_ACK, 2, b"x"))
            .unwrap();
        let bytes = w.into_inner();
        let (flows, stats) = collect_flows(
            &bytes,
            &EngineConfig {
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(stats.ingest.flows, 3);
        assert_eq!(stats.evicted_timeout, 1);
        assert_eq!(stats.drained_eof, 2);
        assert_eq!(flows[0].cause, EvictionCause::Timeout);
        assert_eq!(flows[0].flow.observation_end_sec, 100 + 30);
    }

    #[test]
    fn max_flows_bounds_live_tables() {
        let bytes = capture(3000);
        let cfg = EngineConfig {
            threads: 4,
            max_flows: 64,
            ..EngineConfig::default()
        };
        let (_, stats) = collect_flows(&bytes, &cfg);
        assert!(stats.evicted_cap > 0, "cap must have engaged");
        // max_live_flows is the largest per-shard high-water mark, so with
        // threads=4 and max_flows=64 it is bounded by the per-shard cap of
        // 16, not by the global 64.
        assert_eq!(cfg.per_shard_cap(), 16);
        assert!(
            stats.max_live_flows <= 16,
            "peak live flows {} exceeded the per-shard cap",
            stats.max_live_flows
        );
        assert!(stats.max_live_flows > 0, "peak occupancy must be observed");
        // Every opened flow is still accounted for exactly once.
        assert_eq!(
            stats.ingest.flows,
            stats.evicted_timeout + stats.evicted_cap + stats.drained_eof
        );
    }

    #[test]
    fn corrupt_tail_is_counted_not_fatal() {
        let mut bytes = capture(10);
        bytes.truncate(bytes.len() - 7);
        let (flows, stats) = collect_flows(
            &bytes,
            &EngineConfig {
                threads: 2,
                ..Default::default()
            },
        );
        assert!(stats.corrupt_tail);
        assert_eq!(stats.records, 29); // the torn 30th record is dropped
        assert!(!flows.is_empty());
    }

    #[test]
    fn garbage_frames_are_counted_either_side_of_the_channel() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(100, 0, &frame(client(1), 4000, TcpFlags::SYN, 1, b""))
            .unwrap();
        w.write_frame(100, 1, &[0u8; 3]).unwrap(); // fails the route peek
                                                   // Valid-looking v4/TCP shape but a corrupt checksum: routes to a
                                                   // shard, fails full parse there.
        let mut good = frame(client(1), 4001, TcpFlags::SYN, 1, b"");
        good[11] ^= 0xff;
        w.write_frame(100, 2, &good).unwrap();
        let bytes = w.into_inner();
        let (_, stats) = collect_flows(
            &bytes,
            &EngineConfig {
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(stats.ingest.unparsable, 2);
        assert_eq!(stats.ingest.flows, 1);
    }

    #[test]
    fn observed_run_publishes_scopes_without_changing_output() {
        let bytes = capture(100);
        let cfg = EngineConfig {
            threads: 3,
            ..EngineConfig::default()
        };
        let (plain_flows, plain_stats) = collect_flows(&bytes, &cfg);

        let reg = Registry::new();
        let (mut flows, stats) = run_engine_observed(
            &bytes[..],
            &cfg,
            Some(&reg),
            Vec::new,
            |acc: &mut Vec<ClosedFlow>, cf| acc.push(cf),
            |a, mut b| a.append(&mut b),
        )
        .unwrap();
        flows.sort_unstable_by_key(|cf| cf.first_index);
        assert_eq!(flows.len(), plain_flows.len());
        assert_eq!(stats, plain_stats, "registry must not perturb stats");

        let snap = reg.snapshot();
        let names: Vec<&str> = snap.scopes.iter().map(|s| s.scope.as_str()).collect();
        assert_eq!(names, vec!["merge", "reader", "shard0", "shard1", "shard2"]);
        let reader = snap.scope("reader").unwrap();
        assert_eq!(reader.counter("records"), stats.records);
        assert!(reader.timer("read").is_some());
        // Every routed record reaches some shard exactly once.
        assert_eq!(snap.counter_sum("shard", "records"), stats.records);
        assert_eq!(
            snap.counter_sum("shard", "flows_closed"),
            stats.ingest.flows
        );
        let merge = snap.scope("merge").unwrap();
        assert_eq!(merge.gauge("threads"), 3);
        assert_eq!(merge.gauge("max_live_flows"), stats.max_live_flows);
        assert!(merge.gauge("sum_high_water") >= merge.gauge("max_live_flows"));
        let shard0 = snap.scope("shard0").unwrap();
        assert!(shard0.histogram("classify_latency_ns").is_some());
        assert!(shard0.timer("parse").is_some());
    }

    #[test]
    fn mem_batch_engine_matches_closed_flow_engine() {
        use crate::record::{FlowBatch, FlowRecord};
        use crate::source::PcapMemSource;
        let bytes = capture(300);
        let (reference, ref_stats) = collect_flows(
            &bytes,
            &EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
        );
        // Exercise cap pressure too, so every eviction cause appears.
        for (threads, max_flows, batch_flows) in [(1, 0, 16), (2, 0, 1), (8, 0, 512), (2, 32, 7)] {
            let cfg = EngineConfig {
                threads,
                max_flows,
                ..EngineConfig::default()
            };
            let (exp, exp_stats) = if max_flows == 0 {
                (reference.clone(), ref_stats)
            } else {
                collect_flows(
                    &bytes,
                    &EngineConfig {
                        threads,
                        max_flows,
                        ..EngineConfig::default()
                    },
                )
            };
            let src = PcapMemSource::new(Bytes::from(bytes.clone()))
                .unwrap()
                .with_batch_flows(batch_flows);
            let (mut got, stats) = run_source(
                src,
                &cfg,
                Vec::new,
                |acc: &mut Vec<(u64, FlowRecord, EvictionCause)>, batch: FlowBatch| {
                    for (i, span) in batch.spans().iter().enumerate() {
                        acc.push((span.first_index, batch.materialize(i), span.cause));
                    }
                },
                |a, mut b| a.append(&mut b),
            );
            got.sort_unstable_by_key(|(idx, _, _)| *idx);
            assert_eq!(got.len(), exp.len(), "threads={threads}");
            for ((idx, flow, cause), cf) in got.iter().zip(&exp) {
                assert_eq!(*idx, cf.first_index, "threads={threads}");
                assert_eq!(flow, &cf.flow, "threads={threads}");
                assert_eq!(*cause, cf.cause, "threads={threads}");
            }
            assert_eq!(stats.records, exp_stats.records, "threads={threads}");
            assert_eq!(stats.ingest, exp_stats.ingest, "threads={threads}");
            assert_eq!(
                (stats.evicted_timeout, stats.evicted_cap, stats.drained_eof),
                (
                    exp_stats.evicted_timeout,
                    exp_stats.evicted_cap,
                    exp_stats.drained_eof
                ),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn mem_source_corrupt_tail_matches_stream_source() {
        use crate::record::FlowBatch;
        use crate::source::PcapMemSource;
        let mut bytes = capture(10);
        bytes.truncate(bytes.len() - 7);
        let src = PcapMemSource::new(Bytes::from(bytes)).unwrap();
        let cfg = EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        };
        let (batches, stats) = run_source(
            src,
            &cfg,
            Vec::new,
            |acc: &mut Vec<FlowBatch>, b| acc.push(b),
            |a, mut b| a.append(&mut b),
        );
        assert!(stats.corrupt_tail);
        assert_eq!(stats.records, 29); // the torn 30th record is dropped
        assert!(batches.iter().any(|b| !b.is_empty()));
    }

    #[test]
    fn record_source_replays_assembled_flows_through_the_engine() {
        // Assemble flows once from pcap, then replay the records through
        // RecordSource: same flows come out, at any shard count.
        let bytes = capture(60);
        let (reference, _) = collect_flows(
            &bytes,
            &EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
        );
        let records: Vec<_> = reference.iter().map(|cf| cf.flow.clone()).collect();
        for threads in [1, 3] {
            let cfg = EngineConfig {
                threads,
                ..EngineConfig::default()
            };
            let (mut replayed, stats) = run_source(
                RecordSource::from_vec(records.clone()),
                &cfg,
                Vec::new,
                |acc: &mut Vec<ClosedFlow>, cf| acc.push(cf),
                |a: &mut Vec<ClosedFlow>, mut b| a.append(&mut b),
            );
            replayed.sort_unstable_by_key(|cf| cf.first_index);
            assert_eq!(stats.records, records.len() as u64);
            assert_eq!(stats.ingest.flows, records.len() as u64);
            assert_eq!(stats.drained_eof, records.len() as u64);
            let got: Vec<_> = replayed.iter().map(|cf| cf.flow.clone()).collect();
            assert_eq!(got, records, "threads={threads}");
        }
    }

    #[test]
    fn sim_source_preserves_serial_fold_order_at_any_shard_count() {
        // A generator that drops every 7th index; the engine must fold the
        // survivors in exactly serial order for any thread count, because
        // shards own contiguous chunks merged in shard order.
        let total = 1000u64;
        let gen = |i: u64| -> Option<u64> { (!i.is_multiple_of(7)).then_some(i * 3 + 1) };
        let serial: Vec<u64> = (0..total).filter_map(gen).collect();
        for threads in [1usize, 2, 3, 8] {
            let cfg = EngineConfig {
                threads,
                ..EngineConfig::default()
            };
            let (got, stats) = run_source(
                SimSource::new(total, &gen),
                &cfg,
                Vec::new,
                |acc: &mut Vec<u64>, v| acc.push(v),
                |a: &mut Vec<u64>, mut b| a.append(&mut b),
            );
            assert_eq!(got, serial, "threads={threads}");
            assert_eq!(stats.records, total);
            assert_eq!(stats.ingest.flows, serial.len() as u64);
        }
    }
}
