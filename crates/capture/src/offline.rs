//! Offline ingestion: build [`FlowRecord`]s from a pcap capture.
//!
//! This is the path a real deployment would use: point the reader at a
//! server-side capture (raw-IP link type), and get classifier-ready flow
//! records with the paper's collection constraints applied (inbound-only
//! by destination filter, 10 packets, 1-second timestamps).

use crate::pcap::{PcapError, PcapReader, PcapRecord};
use crate::record::{FlowRecord, PacketRecord};
use std::collections::HashMap;
use std::io::Read;
use std::net::IpAddr;
use tamper_wire::Packet;

/// A connection key: client/server addresses and ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Client address.
    pub client_ip: IpAddr,
    /// Server address.
    pub server_ip: IpAddr,
    /// Client port.
    pub src_port: u16,
    /// Server port.
    pub dst_port: u16,
}

/// Options for offline assembly.
#[derive(Debug, Clone, Copy)]
pub struct OfflineConfig {
    /// Keep only packets destined to these server ports (80/443 by
    /// default — the study's scope).
    pub server_ports: [u16; 2],
    /// Per-flow packet cap (paper: 10).
    pub max_packets: usize,
    /// Seconds of silence after the last packet before a flow is closed.
    pub flow_timeout_secs: u64,
}

impl Default for OfflineConfig {
    fn default() -> OfflineConfig {
        OfflineConfig {
            server_ports: [80, 443],
            max_packets: 10,
            flow_timeout_secs: 30,
        }
    }
}

/// Assemble flow records from raw pcap records. Packets that fail to
/// parse, or that are not TCP toward a configured server port, are
/// skipped and counted in the returned statistics.
pub fn flows_from_records(
    records: &[PcapRecord],
    cfg: &OfflineConfig,
) -> (Vec<FlowRecord>, IngestStats) {
    let mut stats = IngestStats::default();
    let mut flows: HashMap<FlowKey, FlowRecord> = HashMap::new();
    let mut order: Vec<FlowKey> = Vec::new();
    let mut last_ts = 0u64;

    for rec in records {
        let ts = u64::from(rec.ts_sec);
        last_ts = last_ts.max(ts);
        let pkt = match Packet::parse(&rec.frame) {
            Ok(p) => p,
            Err(_) => {
                stats.unparsable += 1;
                continue;
            }
        };
        if !cfg.server_ports.contains(&pkt.tcp.dst_port) {
            stats.not_inbound += 1;
            continue;
        }
        let key = FlowKey {
            client_ip: pkt.ip.src(),
            server_ip: pkt.ip.dst(),
            src_port: pkt.tcp.src_port,
            dst_port: pkt.tcp.dst_port,
        };
        let flow = flows.entry(key).or_insert_with(|| {
            order.push(key);
            stats.flows += 1;
            FlowRecord {
                client_ip: key.client_ip,
                server_ip: key.server_ip,
                src_port: key.src_port,
                dst_port: key.dst_port,
                packets: Vec::new(),
                observation_end_sec: ts,
                truncated: false,
            }
        });
        if flow.packets.len() >= cfg.max_packets {
            flow.truncated = true;
            stats.truncated_packets += 1;
            continue;
        }
        flow.packets.push(PacketRecord::from_packet(ts, &pkt));
        stats.packets += 1;
    }

    // Close every flow at capture end plus the flow timeout, mirroring an
    // online collector that watched each flow for `flow_timeout_secs`.
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let mut flow = flows.remove(&key).expect("flow recorded");
        let last = flow.packets.iter().map(|p| p.ts_sec).max().unwrap_or(0);
        flow.observation_end_sec = (last + cfg.flow_timeout_secs).min(last_ts.max(last) + cfg.flow_timeout_secs);
        out.push(flow);
    }
    (out, stats)
}

/// Read a pcap stream and assemble flows in one call.
pub fn flows_from_pcap<R: Read>(
    reader: R,
    cfg: &OfflineConfig,
) -> Result<(Vec<FlowRecord>, IngestStats), PcapError> {
    let mut pcap = PcapReader::new(reader)?;
    let records = pcap.read_all()?;
    Ok(flows_from_records(&records, cfg))
}

/// Counters from an offline ingestion pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Flows assembled.
    pub flows: u64,
    /// Packets retained.
    pub packets: u64,
    /// Packets past the per-flow cap.
    pub truncated_packets: u64,
    /// Frames that did not parse as IP/TCP.
    pub unparsable: u64,
    /// TCP packets not destined to a configured server port (outbound or
    /// other services).
    pub not_inbound: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::PcapWriter;
    use bytes::Bytes;
    use std::net::Ipv4Addr;
    use tamper_wire::{PacketBuilder, TcpFlags};

    fn client(i: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(203, 0, 113, i))
    }
    fn server() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1))
    }

    fn frame(src: IpAddr, sport: u16, flags: TcpFlags, seq: u32, payload: &'static [u8]) -> Vec<u8> {
        PacketBuilder::new(src, server(), sport, 443)
            .flags(flags)
            .seq(seq)
            .payload(Bytes::from_static(payload))
            .build()
            .emit()
            .to_vec()
    }

    #[test]
    fn assembles_flows_by_four_tuple() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(100, 0, &frame(client(1), 4000, TcpFlags::SYN, 1, b"")).unwrap();
        w.write_frame(100, 10, &frame(client(2), 4001, TcpFlags::SYN, 9, b"")).unwrap();
        w.write_frame(101, 0, &frame(client(1), 4000, TcpFlags::PSH_ACK, 2, b"x")).unwrap();
        let bytes = w.into_inner();
        let (flows, stats) = flows_from_pcap(&bytes[..], &OfflineConfig::default()).unwrap();
        assert_eq!(flows.len(), 2);
        assert_eq!(stats.flows, 2);
        assert_eq!(stats.packets, 3);
        let f1 = flows.iter().find(|f| f.client_ip == client(1)).unwrap();
        assert_eq!(f1.packets.len(), 2);
        assert_eq!(f1.observation_end_sec, 101 + 30);
    }

    #[test]
    fn outbound_and_garbage_skipped() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        // Outbound packet (server port as source, client port as dest).
        let outbound = PacketBuilder::new(server(), client(1), 443, 4000)
            .flags(TcpFlags::SYN_ACK)
            .build()
            .emit()
            .to_vec();
        w.write_frame(100, 0, &outbound).unwrap();
        w.write_frame(100, 1, &[0xde, 0xad]).unwrap();
        w.write_frame(100, 2, &frame(client(1), 4000, TcpFlags::SYN, 1, b"")).unwrap();
        let bytes = w.into_inner();
        let (flows, stats) = flows_from_pcap(&bytes[..], &OfflineConfig::default()).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(stats.not_inbound, 1);
        assert_eq!(stats.unparsable, 1);
    }

    #[test]
    fn per_flow_cap_marks_truncation() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..14u32 {
            w.write_frame(
                100 + i,
                0,
                &frame(client(1), 4000, TcpFlags::ACK, 100 + i, b""),
            )
            .unwrap();
        }
        let bytes = w.into_inner();
        let (flows, stats) = flows_from_pcap(&bytes[..], &OfflineConfig::default()).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].packets.len(), 10);
        assert!(flows[0].truncated);
        assert_eq!(stats.truncated_packets, 4);
    }
}
