//! Offline ingestion: build [`FlowRecord`]s from a pcap capture.
//!
//! This is the path a real deployment would use: point the reader at a
//! server-side capture (raw-IP link type), and get classifier-ready flow
//! records with the paper's collection constraints applied (inbound-only
//! by destination filter, 10 packets, 1-second timestamps).

use crate::pcap::{PcapError, PcapReader, PcapRecord};
use crate::record::{FlowBatch, FlowRecord, FlowTuple, PacketRecord, PacketRow, NO_IP_ID};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::io::Read;
use std::net::IpAddr;
use tamper_obs::{Registry, ScopeMetrics};
use tamper_wire::{Packet, PacketView};

pub use crate::record::EvictionCause;

/// A connection key: client/server addresses and ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowKey {
    /// Client address.
    pub client_ip: IpAddr,
    /// Server address.
    pub server_ip: IpAddr,
    /// Client port.
    pub src_port: u16,
    /// Server port.
    pub dst_port: u16,
}

impl std::hash::Hash for FlowKey {
    /// Packed writes instead of the derived per-field walk: the derived
    /// impl issues ~8 small `Hasher::write` calls per lookup (enum tags,
    /// octet arrays, ports), which dominated the ingest profile. The
    /// common all-IPv4 key packs into two words. V4 keys and V6 keys
    /// hash into disjoint streams via the trailing tag byte; a v4 and
    /// its v6-mapped form may collide, which only costs an `Eq` probe.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let ports = (u32::from(self.src_port) << 16) | u32::from(self.dst_port);
        match (self.client_ip, self.server_ip) {
            (IpAddr::V4(a), IpAddr::V4(b)) => {
                state.write_u64((u64::from(u32::from(a)) << 32) | u64::from(u32::from(b)));
                state.write_u32(ports);
                state.write_u8(4);
            }
            (a, b) => {
                let map = |ip: IpAddr| match ip {
                    IpAddr::V4(v) => v.to_ipv6_mapped().octets(),
                    IpAddr::V6(v) => v.octets(),
                };
                state.write(&map(a));
                state.write(&map(b));
                state.write_u32(ports);
                state.write_u8(6);
            }
        }
    }
}

/// Options for offline assembly.
#[derive(Debug, Clone, Copy)]
pub struct OfflineConfig {
    /// Keep only packets destined to these server ports (80/443 by
    /// default — the study's scope).
    pub server_ports: [u16; 2],
    /// Per-flow packet cap (paper: 10).
    pub max_packets: usize,
    /// Seconds of silence after the last packet before a flow is closed.
    pub flow_timeout_secs: u64,
}

impl Default for OfflineConfig {
    fn default() -> OfflineConfig {
        OfflineConfig {
            server_ports: [80, 443],
            max_packets: 10,
            flow_timeout_secs: 30,
        }
    }
}

/// A flow closed by the streaming assembler, ready for classification.
#[derive(Debug, Clone)]
pub struct ClosedFlow {
    /// The assembled record (collection constraints applied).
    pub flow: FlowRecord,
    /// Index of the capture record that opened the flow — a stable global
    /// sequence number assigned by the (single) reader, used to restore
    /// first-seen order after sharded processing.
    pub first_index: u64,
    /// Why the flow was closed.
    pub cause: EvictionCause,
}

struct LiveFlow {
    flow: FlowRecord,
    first_index: u64,
    /// Timestamp of the last packet seen for this flow (including packets
    /// past the retention cap — they still count as activity).
    last_ts: u64,
}

/// A streaming flow assembler with inactivity-timeout eviction and an
/// optional live-flow cap — the unit of state one engine shard owns.
///
/// Eviction decisions depend only on packet contents and the monotone
/// capture clock (`stamp`), never on wall time or shard placement, so any
/// partition of a capture over tables keyed by flow produces byte-identical
/// closed flows.
pub struct FlowTable {
    cfg: OfflineConfig,
    flows: HashMap<FlowKey, LiveFlow>,
    /// Maximum live flows held at once (0 = unbounded).
    max_live: usize,
    high_water: usize,
    last_sweep: u64,
    /// Retained scratch for [`Self::sweep`]'s expired-key pass: sized once
    /// to the sweep high-water mark instead of a fresh Vec per sweep.
    expired_scratch: Vec<(u64, u64, FlowKey)>,
}

impl FlowTable {
    /// Create a table; `max_live` of 0 means unbounded.
    pub fn new(cfg: OfflineConfig, max_live: usize) -> FlowTable {
        FlowTable {
            cfg,
            flows: HashMap::new(),
            max_live,
            high_water: 0,
            last_sweep: 0,
            expired_scratch: Vec::new(),
        }
    }

    /// Most live flows ever held at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Live flows currently held.
    pub fn live(&self) -> usize {
        self.flows.len()
    }

    /// Absorb one parsed inbound packet. `index` is the reader-assigned
    /// record index, `ts` the packet's own (quantized) timestamp, and
    /// `stamp` the running maximum capture timestamp — the capture clock.
    /// Flows whose timeout elapsed before `stamp` are evicted into `closed`
    /// *before* the packet is applied, so a packet arriving after its flow
    /// expired opens a fresh flow.
    pub fn absorb(
        &mut self,
        index: u64,
        ts: u64,
        stamp: u64,
        pkt: &Packet,
        stats: &mut IngestStats,
        closed: &mut Vec<ClosedFlow>,
    ) {
        self.sweep(stamp, closed);
        let key = FlowKey {
            client_ip: pkt.ip.src(),
            server_ip: pkt.ip.dst(),
            src_port: pkt.tcp.src_port,
            dst_port: pkt.tcp.dst_port,
        };
        let live = self.flows.entry(key).or_insert_with(|| {
            stats.flows += 1;
            LiveFlow {
                flow: FlowRecord {
                    client_ip: key.client_ip,
                    server_ip: key.server_ip,
                    src_port: key.src_port,
                    dst_port: key.dst_port,
                    // tamperlint: allow(hot-path-alloc) — one empty Vec per flow *birth*, not per packet; first push sizes it
                    packets: Vec::new(),
                    observation_end_sec: ts,
                    truncated: false,
                },
                first_index: index,
                last_ts: ts,
            }
        });
        live.last_ts = live.last_ts.max(ts);
        if live.flow.packets.len() >= self.cfg.max_packets {
            live.flow.truncated = true;
            stats.truncated_packets += 1;
        } else {
            live.flow.packets.push(PacketRecord::from_packet(ts, pkt));
            stats.packets += 1;
        }
        if self.max_live > 0 && self.flows.len() > self.max_live {
            self.shed_lru(closed);
        }
        // Taken after shedding: the retained occupancy is what the memory
        // bound promises (insertion holds one transient extra entry).
        self.high_water = self.high_water.max(self.flows.len());
    }

    /// Evict every flow whose timeout elapsed before `stamp`. Eviction
    /// order is a pure function of (last activity, first-seen index) —
    /// never of hash-map iteration order — so shuffled insertion or a
    /// different hasher cannot change which flows a later cap sheds.
    fn sweep(&mut self, stamp: u64, closed: &mut Vec<ClosedFlow>) {
        if stamp <= self.last_sweep {
            return;
        }
        self.last_sweep = stamp;
        let timeout = self.cfg.flow_timeout_secs;
        let mut expired = std::mem::take(&mut self.expired_scratch);
        expired.clear();
        expired.extend(
            self.flows
                .iter()
                .filter(|(_, lf)| lf.last_ts + timeout < stamp)
                .map(|(k, lf)| (lf.last_ts, lf.first_index, *k)),
        );
        expired.sort_unstable_by_key(|&(last_ts, first_index, _)| (last_ts, first_index));
        for &(_, _, key) in &expired {
            if let Some(lf) = self.flows.remove(&key) {
                closed.push(Self::close(
                    lf,
                    self.cfg.flow_timeout_secs,
                    EvictionCause::Timeout,
                ));
            }
        }
        expired.clear();
        self.expired_scratch = expired;
    }

    /// Shed the least-recently-active flow (ties broken by first-seen).
    fn shed_lru(&mut self, closed: &mut Vec<ClosedFlow>) {
        let victim = self
            .flows
            .iter()
            .min_by_key(|(_, lf)| (lf.last_ts, lf.first_index))
            .map(|(k, _)| *k);
        if let Some(key) = victim {
            if let Some(lf) = self.flows.remove(&key) {
                closed.push(Self::close(
                    lf,
                    self.cfg.flow_timeout_secs,
                    EvictionCause::CapPressure,
                ));
            }
        }
    }

    /// Close all remaining flows at end of capture. Flows whose timeout had
    /// already elapsed at `final_stamp` count as timeout evictions (their
    /// shard just saw no later packet to trigger the sweep); the rest close
    /// as end-of-capture. Output is ordered by first-seen index.
    pub fn drain(&mut self, final_stamp: u64, closed: &mut Vec<ClosedFlow>) {
        let timeout = self.cfg.flow_timeout_secs;
        let mut rest: Vec<LiveFlow> = self.flows.drain().map(|(_, lf)| lf).collect();
        rest.sort_unstable_by_key(|lf| lf.first_index);
        for lf in rest {
            let cause = if lf.last_ts + timeout < final_stamp {
                EvictionCause::Timeout
            } else {
                EvictionCause::EndOfCapture
            };
            closed.push(Self::close(lf, timeout, cause));
        }
    }

    fn close(mut lf: LiveFlow, timeout: u64, cause: EvictionCause) -> ClosedFlow {
        let last = lf.flow.packets.iter().map(|p| p.ts_sec).max().unwrap_or(0);
        // Mirror an online collector that watched the flow for the timeout
        // window after its last retained packet.
        lf.flow.observation_end_sec = last + timeout;
        ClosedFlow {
            flow: lf.flow,
            first_index: lf.first_index,
            cause,
        }
    }
}

/// A fast, non-keyed hasher for [`FlowKey`] lookups in the columnar
/// table: one multiply-rotate fold per 8-byte chunk, finished with a
/// splitmix64 avalanche. Flow tables are per-shard and bounded by the
/// live-flow cap, and eviction order never depends on iteration order
/// (see [`FlowTable::sweep`]), so the DoS-resistance of SipHash buys
/// nothing here — but its ~2× lookup cost was visible on the ingest
/// profile.
#[derive(Default)]
pub struct FlowKeyHasher {
    state: u64,
}

impl FlowKeyHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FlowKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            // tamperlint: allow(index) — chunks(8) yields at most 8 bytes, so the range fits the stack buffer
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    // Word-sized writes feed the mixer directly; the default trait
    // methods would round-trip each one through `write`'s chunking
    // buffer. [`FlowKey::hash`] emits exactly these three widths.
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    fn finish(&self) -> u64 {
        // splitmix64 finalizer.
        let mut z = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One live flow's buffered packets in the columnar table. Slots are
/// pooled: a closed flow's slot (and its two buffers' capacity) is
/// recycled for the next flow birth, so a warm table absorbs without
/// allocating.
#[derive(Default)]
struct Slot {
    tuple: FlowTuple,
    first_index: u64,
    last_ts: u64,
    truncated: bool,
    rows: Vec<PacketRow>,
    payload: Vec<u8>,
}

impl Default for FlowTuple {
    fn default() -> FlowTuple {
        FlowTuple {
            client_ip: IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED),
            server_ip: IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED),
            src_port: 0,
            dst_port: 0,
        }
    }
}

impl Slot {
    fn reset(&mut self, tuple: FlowTuple, first_index: u64, ts: u64) {
        self.tuple = tuple;
        self.first_index = first_index;
        self.last_ts = ts;
        self.truncated = false;
        self.rows.clear();
        self.payload.clear();
    }

    fn packets(&self) -> usize {
        self.rows.len()
    }
}

/// The columnar twin of [`FlowTable`]: identical assembly, eviction, and
/// accounting semantics (the `offline` differential tests replay the same
/// captures through both), but live flows buffer into pooled column
/// slots and close into a [`FlowBatch`] instead of one heap-allocated
/// [`FlowRecord`] per flow.
pub struct ColumnarFlowTable {
    cfg: OfflineConfig,
    flows: HashMap<FlowKey, u32, BuildHasherDefault<FlowKeyHasher>>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    max_live: usize,
    high_water: usize,
    last_sweep: u64,
    expired_scratch: Vec<(u64, u64, FlowKey)>,
    /// Lazy timer wheel over expiry seconds: bucket `(last_ts + timeout)
    /// % wheel.len()` holds `(key, last_ts)` entries pushed whenever a
    /// flow's activity clock advances. Entries are validated against the
    /// live slot on drain, so stale ones (flow closed, or active again
    /// with a newer entry elsewhere) simply drop — the evicted set and
    /// order remain the same pure function of (last activity, first-seen
    /// index) as a full scan.
    wheel: Vec<Vec<(FlowKey, u64)>>,
    /// Next expiry second the wheel has not yet drained.
    wheel_pos: u64,
    /// The key and slot the previous packet landed in. Packets of one
    /// flow arrive in runs, so this skips the map probe for the common
    /// case. Cleared whenever any flow closes, which keeps the invariant
    /// simple: a populated cache always mirrors a live map entry.
    last_hit: Option<(FlowKey, u32)>,
}

impl ColumnarFlowTable {
    /// Create a table; `max_live` of 0 means unbounded.
    pub fn new(cfg: OfflineConfig, max_live: usize) -> ColumnarFlowTable {
        // A span of timeout+2 seconds separates every live expiry; wider
        // timeouts alias modulo the clamp and only cost a lazy re-queue.
        let buckets = (cfg.flow_timeout_secs.saturating_add(2)).clamp(4, 4096) as usize;
        ColumnarFlowTable {
            cfg,
            flows: HashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            max_live,
            high_water: 0,
            last_sweep: 0,
            expired_scratch: Vec::new(),
            wheel: vec![Vec::new(); buckets],
            wheel_pos: 0,
            last_hit: None,
        }
    }

    /// Most live flows ever held at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Live flows currently held.
    pub fn live(&self) -> usize {
        self.flows.len()
    }

    /// Absorb one parsed inbound packet — [`FlowTable::absorb`] over a
    /// borrowed [`PacketView`], closing flows into `out` columns.
    pub fn absorb(
        &mut self,
        index: u64,
        ts: u64,
        stamp: u64,
        pv: &PacketView<'_>,
        stats: &mut IngestStats,
        out: &mut FlowBatch,
    ) {
        self.sweep(stamp, out);
        let key = FlowKey {
            client_ip: pv.src,
            server_ip: pv.dst,
            src_port: pv.src_port,
            dst_port: pv.dst_port,
        };
        let (slot_idx, born) = match self.last_hit {
            Some((k, idx)) if k == key => (idx, false),
            _ => match self.flows.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => (*e.get(), false),
                std::collections::hash_map::Entry::Vacant(e) => {
                    stats.flows += 1;
                    let tuple = FlowTuple {
                        client_ip: key.client_ip,
                        server_ip: key.server_ip,
                        src_port: key.src_port,
                        dst_port: key.dst_port,
                    };
                    let idx = match self.free.pop() {
                        Some(idx) => idx,
                        None => {
                            // tamperlint: allow(unbounded-growth) — pool slots recycle through the free list; live size is bounded by the eviction wheel
                            self.slots.push(Slot::default());
                            (self.slots.len() - 1) as u32
                        }
                    };
                    // tamperlint: allow(index) — idx came off the free list or was just pushed; both are in-bounds pool slots
                    self.slots[idx as usize].reset(tuple, index, ts);
                    e.insert(idx);
                    (idx, true)
                }
            },
        };
        self.last_hit = Some((key, slot_idx));
        // Queue a wheel entry whenever the flow's activity clock advances;
        // the entry carries the last_ts it was queued for, so older
        // entries for the same flow invalidate lazily on drain.
        // tamperlint: allow(index) — the flow map only holds indices of live pool slots
        let prev_last = self.slots[slot_idx as usize].last_ts;
        let new_last = prev_last.max(ts);
        if born || ts > prev_last {
            let b = (new_last.saturating_add(self.cfg.flow_timeout_secs) % self.wheel.len() as u64)
                as usize;
            // tamperlint: allow(index) — bucket index is reduced modulo the wheel length
            self.wheel[b].push((key, new_last));
        }
        // tamperlint: allow(index) — the flow map only holds indices of live pool slots
        let slot = &mut self.slots[slot_idx as usize];
        slot.last_ts = new_last;
        if slot.packets() >= self.cfg.max_packets {
            slot.truncated = true;
            stats.truncated_packets += 1;
        } else {
            slot.rows.push(PacketRow {
                ts_sec: ts,
                seq: pv.seq,
                ack: pv.ack,
                ip_id: pv.ip_id.map_or(NO_IP_ID, u32::from),
                payload_off: slot.payload.len() as u32,
                payload_len: pv.payload.len() as u32,
                window: pv.window,
                flags: pv.flags,
                ttl: pv.ttl,
                has_tcp_options: pv.has_tcp_options,
            });
            slot.payload.extend_from_slice(pv.payload);
            stats.packets += 1;
        }
        if self.max_live > 0 && self.flows.len() > self.max_live {
            self.shed_lru(out);
        }
        // Taken after shedding: the retained occupancy is what the memory
        // bound promises (insertion holds one transient extra entry).
        self.high_water = self.high_water.max(self.flows.len());
    }

    /// Evict every flow whose timeout elapsed before `stamp`, in
    /// (last activity, first-seen index) order — the same pure eviction
    /// order as [`FlowTable::sweep`], but found by draining the passed
    /// expiry seconds off the timer wheel instead of scanning every live
    /// flow once per capture second.
    fn sweep(&mut self, stamp: u64, out: &mut FlowBatch) {
        if stamp <= self.last_sweep {
            return;
        }
        self.last_sweep = stamp;
        let timeout = self.cfg.flow_timeout_secs;
        let wheel_len = self.wheel.len() as u64;
        let mut expired = std::mem::take(&mut self.expired_scratch);
        expired.clear();
        // One bucket per expiry second the clock passed, capped at a
        // single lap — a second lap would revisit the same buckets.
        let start = self.wheel_pos;
        let gap = stamp.saturating_sub(start).min(wheel_len);
        for s in start..start + gap {
            let b = (s % wheel_len) as usize;
            // tamperlint: allow(index) — bucket index is reduced modulo the wheel length
            let mut entries = std::mem::take(&mut self.wheel[b]);
            entries.retain(|&(key, entry_last)| match self.flows.get(&key) {
                Some(&slot_idx) => {
                    // tamperlint: allow(index) — the flow map only holds indices of live pool slots
                    let slot = &self.slots[slot_idx as usize];
                    if slot.last_ts != entry_last {
                        false // superseded by a newer entry
                    } else if slot.last_ts + timeout < stamp {
                        expired.push((slot.last_ts, slot.first_index, key));
                        false
                    } else {
                        true // aliased future expiry: stays queued
                    }
                }
                None => false, // flow already closed
            });
            // tamperlint: allow(index) — same in-bounds bucket the entries came from
            self.wheel[b] = entries;
        }
        self.wheel_pos = stamp;
        expired.sort_unstable_by_key(|&(last_ts, first_index, _)| (last_ts, first_index));
        if !expired.is_empty() {
            self.last_hit = None;
        }
        for &(_, _, key) in &expired {
            if let Some(slot_idx) = self.flows.remove(&key) {
                self.close_into(slot_idx, EvictionCause::Timeout, out);
            }
        }
        expired.clear();
        self.expired_scratch = expired;
    }

    /// Shed the least-recently-active flow (ties broken by first-seen).
    fn shed_lru(&mut self, out: &mut FlowBatch) {
        let victim = self
            .flows
            .iter()
            .min_by_key(|(_, &slot_idx)| {
                // tamperlint: allow(index) — the flow map only holds indices of live pool slots
                let slot = &self.slots[slot_idx as usize];
                (slot.last_ts, slot.first_index)
            })
            .map(|(k, _)| *k);
        if let Some(key) = victim {
            self.last_hit = None;
            if let Some(slot_idx) = self.flows.remove(&key) {
                self.close_into(slot_idx, EvictionCause::CapPressure, out);
            }
        }
    }

    /// Close all remaining flows at end of capture, ordered by first-seen
    /// index, with the same timeout-vs-end-of-capture split as
    /// [`FlowTable::drain`].
    pub fn drain(&mut self, final_stamp: u64, out: &mut FlowBatch) {
        self.last_hit = None;
        let timeout = self.cfg.flow_timeout_secs;
        let mut rest: Vec<u32> = self.flows.drain().map(|(_, slot_idx)| slot_idx).collect();
        // tamperlint: allow(index) — the flow map only holds indices of live pool slots
        rest.sort_unstable_by_key(|&slot_idx| self.slots[slot_idx as usize].first_index);
        for slot_idx in rest {
            // tamperlint: allow(index) — same live pool indices, drained from the map above
            let cause = if self.slots[slot_idx as usize].last_ts + timeout < final_stamp {
                EvictionCause::Timeout
            } else {
                EvictionCause::EndOfCapture
            };
            self.close_into(slot_idx, cause, out);
        }
    }

    /// Copy one slot's columns into the output batch and recycle the slot.
    fn close_into(&mut self, slot_idx: u32, cause: EvictionCause, out: &mut FlowBatch) {
        // tamperlint: allow(index) — callers pass indices removed from the flow map, all live pool slots
        let slot = &self.slots[slot_idx as usize];
        let last = slot.rows.iter().map(|r| r.ts_sec).max().unwrap_or(0);
        // Mirror an online collector that watched the flow for the timeout
        // window after its last retained packet.
        let observation_end_sec = last + self.cfg.flow_timeout_secs;
        let pkt_start = out.packet_count() as u32;
        out.extend_rows(&slot.rows, &slot.payload);
        out.push_flow(
            slot.tuple,
            pkt_start,
            slot.first_index,
            observation_end_sec,
            slot.truncated,
            cause,
        );
        self.free.push(slot_idx);
    }
}

/// Assemble flow records from raw pcap records. Packets that fail to
/// parse, or that are not TCP toward a configured server port, are
/// skipped and counted in the returned statistics.
///
/// This is the single-threaded reference path; it shares the streaming
/// [`FlowTable`] semantics with the sharded engine, so a 4-tuple that goes
/// quiet for longer than the flow timeout and then resumes yields two
/// flows, exactly as an online collector would record it.
pub fn flows_from_records(
    records: &[PcapRecord],
    cfg: &OfflineConfig,
) -> (Vec<FlowRecord>, IngestStats) {
    flows_from_records_observed(records, cfg, None)
}

/// [`flows_from_records`] with an optional metrics registry attached.
///
/// When `obs` is `Some`, the pass publishes an `offline` scope: record and
/// skip counters, parse/absorb stage timers, and a live-flow occupancy
/// gauge. With `None` every instrument is disabled and no clock is read —
/// [`flows_from_records`] is exactly this with `None`. Metrics never feed
/// the returned flows or statistics, so attaching a registry cannot
/// perturb byte-compared output.
pub fn flows_from_records_observed(
    records: &[PcapRecord],
    cfg: &OfflineConfig,
    obs: Option<&Registry>,
) -> (Vec<FlowRecord>, IngestStats) {
    let mut sm = match obs {
        Some(r) => r.scope("offline"),
        None => ScopeMetrics::disabled(),
    };
    let mut stats = IngestStats::default();
    let mut table = FlowTable::new(*cfg, 0);
    let mut closed = Vec::new();
    let mut stamp = 0u64;

    let ingest_sw = sm.start();
    for (index, rec) in records.iter().enumerate() {
        sm.count("records", 1);
        let ts = u64::from(rec.ts_sec);
        stamp = stamp.max(ts);
        let parse_sw = sm.start();
        let parsed = Packet::parse(&rec.frame);
        sm.stop("parse", parse_sw);
        let pkt = match parsed {
            Ok(p) => p,
            Err(_) => {
                stats.unparsable += 1;
                continue;
            }
        };
        if !cfg.server_ports.contains(&pkt.tcp.dst_port) {
            stats.not_inbound += 1;
            continue;
        }
        let absorb_sw = sm.start();
        table.absorb(index as u64, ts, stamp, &pkt, &mut stats, &mut closed);
        sm.stop("absorb_evict", absorb_sw);
        sm.gauge_max("live_flows", table.live() as u64);
    }
    table.drain(stamp, &mut closed);
    sm.stop("ingest", ingest_sw);
    sm.count("flows_closed", closed.len() as u64);
    sm.gauge_max("high_water", table.high_water() as u64);
    if let Some(r) = obs {
        r.publish(sm);
    }
    closed.sort_unstable_by_key(|cf| cf.first_index);
    (closed.into_iter().map(|cf| cf.flow).collect(), stats)
}

/// Read a pcap stream and assemble flows in one call.
pub fn flows_from_pcap<R: Read>(
    reader: R,
    cfg: &OfflineConfig,
) -> Result<(Vec<FlowRecord>, IngestStats), PcapError> {
    flows_from_pcap_observed(reader, cfg, None)
}

/// [`flows_from_pcap`] with an optional metrics registry attached (see
/// [`flows_from_records_observed`]).
pub fn flows_from_pcap_observed<R: Read>(
    reader: R,
    cfg: &OfflineConfig,
    obs: Option<&Registry>,
) -> Result<(Vec<FlowRecord>, IngestStats), PcapError> {
    let mut pcap = PcapReader::new(reader)?;
    let records = pcap.read_all()?;
    Ok(flows_from_records_observed(&records, cfg, obs))
}

/// Counters from an offline ingestion pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Flows assembled.
    pub flows: u64,
    /// Packets retained.
    pub packets: u64,
    /// Packets past the per-flow cap.
    pub truncated_packets: u64,
    /// Frames that did not parse as IP/TCP.
    pub unparsable: u64,
    /// TCP packets not destined to a configured server port (outbound or
    /// other services).
    pub not_inbound: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::PcapWriter;
    use bytes::Bytes;
    use std::net::Ipv4Addr;
    use tamper_wire::{PacketBuilder, TcpFlags};

    fn client(i: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(203, 0, 113, i))
    }
    fn server() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1))
    }

    fn frame(
        src: IpAddr,
        sport: u16,
        flags: TcpFlags,
        seq: u32,
        payload: &'static [u8],
    ) -> Vec<u8> {
        PacketBuilder::new(src, server(), sport, 443)
            .flags(flags)
            .seq(seq)
            .payload(Bytes::from_static(payload))
            .build()
            .emit()
            .to_vec()
    }

    #[test]
    fn assembles_flows_by_four_tuple() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(100, 0, &frame(client(1), 4000, TcpFlags::SYN, 1, b""))
            .unwrap();
        w.write_frame(100, 10, &frame(client(2), 4001, TcpFlags::SYN, 9, b""))
            .unwrap();
        w.write_frame(101, 0, &frame(client(1), 4000, TcpFlags::PSH_ACK, 2, b"x"))
            .unwrap();
        let bytes = w.into_inner();
        let (flows, stats) = flows_from_pcap(&bytes[..], &OfflineConfig::default()).unwrap();
        assert_eq!(flows.len(), 2);
        assert_eq!(stats.flows, 2);
        assert_eq!(stats.packets, 3);
        let f1 = flows.iter().find(|f| f.client_ip == client(1)).unwrap();
        assert_eq!(f1.packets.len(), 2);
        assert_eq!(f1.observation_end_sec, 101 + 30);
    }

    #[test]
    fn outbound_and_garbage_skipped() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        // Outbound packet (server port as source, client port as dest).
        let outbound = PacketBuilder::new(server(), client(1), 443, 4000)
            .flags(TcpFlags::SYN_ACK)
            .build()
            .emit()
            .to_vec();
        w.write_frame(100, 0, &outbound).unwrap();
        w.write_frame(100, 1, &[0xde, 0xad]).unwrap();
        w.write_frame(100, 2, &frame(client(1), 4000, TcpFlags::SYN, 1, b""))
            .unwrap();
        let bytes = w.into_inner();
        let (flows, stats) = flows_from_pcap(&bytes[..], &OfflineConfig::default()).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(stats.not_inbound, 1);
        assert_eq!(stats.unparsable, 1);
    }

    /// Replay one absorb schedule through both tables and assert the
    /// closed flows (records, indices, causes) are identical.
    fn assert_tables_agree(
        schedule: &[(IpAddr, u16, u64)],
        cfg: &OfflineConfig,
        max_live: usize,
    ) -> Vec<ClosedFlow> {
        let mut legacy = FlowTable::new(*cfg, max_live);
        let mut columnar = ColumnarFlowTable::new(*cfg, max_live);
        let mut legacy_stats = IngestStats::default();
        let mut columnar_stats = IngestStats::default();
        let mut closed = Vec::new();
        let mut batch = FlowBatch::new();
        let mut stamp = 0u64;
        for (index, &(src, sport, ts)) in schedule.iter().enumerate() {
            stamp = stamp.max(ts);
            let bytes = frame(src, sport, TcpFlags::ACK, index as u32, b"");
            let pkt = tamper_wire::Packet::parse(&bytes).unwrap();
            let pv = PacketView::parse(&bytes).unwrap();
            legacy.absorb(
                index as u64,
                ts,
                stamp,
                &pkt,
                &mut legacy_stats,
                &mut closed,
            );
            columnar.absorb(
                index as u64,
                ts,
                stamp,
                &pv,
                &mut columnar_stats,
                &mut batch,
            );
        }
        legacy.drain(stamp, &mut closed);
        columnar.drain(stamp, &mut batch);
        assert_eq!(legacy_stats, columnar_stats);
        assert_eq!(legacy.high_water(), columnar.high_water());
        assert_eq!(closed.len(), batch.flow_count());
        for (i, cf) in closed.iter().enumerate() {
            assert_eq!(cf.flow, batch.materialize(i), "flow {i} differs");
            assert_eq!(cf.first_index, batch.spans()[i].first_index);
            assert_eq!(cf.cause, batch.spans()[i].cause);
        }
        closed
    }

    #[test]
    fn columnar_table_matches_legacy_with_eviction_and_cap() {
        // Timeouts, cap pressure, reopened 4-tuples, and an end-of-capture
        // drain all in one schedule.
        let mut schedule = Vec::new();
        for i in 0..40u8 {
            schedule.push((client(i % 7), 4000 + u16::from(i % 3), 100 + u64::from(i)));
        }
        // A long quiet gap expires everything, then the same tuples reopen.
        schedule.push((client(1), 4000, 500));
        for i in 0..12u8 {
            schedule.push((client(i % 5), 4100, 500 + u64::from(i)));
        }
        let cfg = OfflineConfig {
            flow_timeout_secs: 10,
            ..OfflineConfig::default()
        };
        assert_tables_agree(&schedule, &cfg, 0);
        assert_tables_agree(&schedule, &cfg, 4);
        assert_tables_agree(&schedule, &cfg, 1);
    }

    #[test]
    fn cap_survivors_are_independent_of_insertion_identity() {
        // The same (position, timestamp) schedule dressed with different
        // 4-tuple identities must evict the same schedule positions: the
        // eviction order is a pure function of (last activity, first-seen
        // index), never of where keys land in the hash map.
        let base: Vec<u64> = vec![100, 100, 101, 101, 102, 102, 103, 104, 105, 106];
        let identities: [&[u8]; 3] = [
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            &[10, 9, 8, 7, 6, 5, 4, 3, 2, 1],
            &[31, 7, 90, 14, 55, 2, 61, 23, 44, 17],
        ];
        let cfg = OfflineConfig::default();
        let mut evicted_sets = Vec::new();
        for ids in identities {
            let schedule: Vec<(IpAddr, u16, u64)> = base
                .iter()
                .zip(ids)
                .map(|(&ts, &id)| (client(id), 4000, ts))
                .collect();
            let closed = assert_tables_agree(&schedule, &cfg, 3);
            let mut evicted: Vec<u64> = closed
                .iter()
                .filter(|cf| cf.cause == EvictionCause::CapPressure)
                .map(|cf| cf.first_index)
                .collect();
            evicted.sort_unstable();
            evicted_sets.push(evicted);
        }
        assert!(!evicted_sets[0].is_empty(), "cap never fired");
        assert_eq!(evicted_sets[0], evicted_sets[1]);
        assert_eq!(evicted_sets[0], evicted_sets[2]);
    }

    #[test]
    fn per_flow_cap_marks_truncation() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..14u32 {
            w.write_frame(
                100 + i,
                0,
                &frame(client(1), 4000, TcpFlags::ACK, 100 + i, b""),
            )
            .unwrap();
        }
        let bytes = w.into_inner();
        let (flows, stats) = flows_from_pcap(&bytes[..], &OfflineConfig::default()).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].packets.len(), 10);
        assert!(flows[0].truncated);
        assert_eq!(stats.truncated_packets, 4);
    }
}
