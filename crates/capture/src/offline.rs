//! Offline ingestion: build [`FlowRecord`]s from a pcap capture.
//!
//! This is the path a real deployment would use: point the reader at a
//! server-side capture (raw-IP link type), and get classifier-ready flow
//! records with the paper's collection constraints applied (inbound-only
//! by destination filter, 10 packets, 1-second timestamps).

use crate::pcap::{PcapError, PcapReader, PcapRecord};
use crate::record::{FlowRecord, PacketRecord};
use std::collections::HashMap;
use std::io::Read;
use std::net::IpAddr;
use tamper_obs::{Registry, ScopeMetrics};
use tamper_wire::Packet;

/// A connection key: client/server addresses and ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Client address.
    pub client_ip: IpAddr,
    /// Server address.
    pub server_ip: IpAddr,
    /// Client port.
    pub src_port: u16,
    /// Server port.
    pub dst_port: u16,
}

/// Options for offline assembly.
#[derive(Debug, Clone, Copy)]
pub struct OfflineConfig {
    /// Keep only packets destined to these server ports (80/443 by
    /// default — the study's scope).
    pub server_ports: [u16; 2],
    /// Per-flow packet cap (paper: 10).
    pub max_packets: usize,
    /// Seconds of silence after the last packet before a flow is closed.
    pub flow_timeout_secs: u64,
}

impl Default for OfflineConfig {
    fn default() -> OfflineConfig {
        OfflineConfig {
            server_ports: [80, 443],
            max_packets: 10,
            flow_timeout_secs: 30,
        }
    }
}

/// Why the streaming flow table closed a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionCause {
    /// More than [`OfflineConfig::flow_timeout_secs`] of capture time
    /// passed since the flow's last packet.
    Timeout,
    /// The table hit its live-flow cap and shed its least-recently-active
    /// flow to stay within the memory bound.
    CapPressure,
    /// The capture ended while the flow was still inside its timeout
    /// window.
    EndOfCapture,
}

/// A flow closed by the streaming assembler, ready for classification.
#[derive(Debug, Clone)]
pub struct ClosedFlow {
    /// The assembled record (collection constraints applied).
    pub flow: FlowRecord,
    /// Index of the capture record that opened the flow — a stable global
    /// sequence number assigned by the (single) reader, used to restore
    /// first-seen order after sharded processing.
    pub first_index: u64,
    /// Why the flow was closed.
    pub cause: EvictionCause,
}

struct LiveFlow {
    flow: FlowRecord,
    first_index: u64,
    /// Timestamp of the last packet seen for this flow (including packets
    /// past the retention cap — they still count as activity).
    last_ts: u64,
}

/// A streaming flow assembler with inactivity-timeout eviction and an
/// optional live-flow cap — the unit of state one engine shard owns.
///
/// Eviction decisions depend only on packet contents and the monotone
/// capture clock (`stamp`), never on wall time or shard placement, so any
/// partition of a capture over tables keyed by flow produces byte-identical
/// closed flows.
pub struct FlowTable {
    cfg: OfflineConfig,
    flows: HashMap<FlowKey, LiveFlow>,
    /// Maximum live flows held at once (0 = unbounded).
    max_live: usize,
    high_water: usize,
    last_sweep: u64,
    /// Retained scratch for [`Self::sweep`]'s expired-key pass: sized once
    /// to the sweep high-water mark instead of a fresh Vec per sweep.
    expired_scratch: Vec<(u64, FlowKey)>,
}

impl FlowTable {
    /// Create a table; `max_live` of 0 means unbounded.
    pub fn new(cfg: OfflineConfig, max_live: usize) -> FlowTable {
        FlowTable {
            cfg,
            flows: HashMap::new(),
            max_live,
            high_water: 0,
            last_sweep: 0,
            expired_scratch: Vec::new(),
        }
    }

    /// Most live flows ever held at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Live flows currently held.
    pub fn live(&self) -> usize {
        self.flows.len()
    }

    /// Absorb one parsed inbound packet. `index` is the reader-assigned
    /// record index, `ts` the packet's own (quantized) timestamp, and
    /// `stamp` the running maximum capture timestamp — the capture clock.
    /// Flows whose timeout elapsed before `stamp` are evicted into `closed`
    /// *before* the packet is applied, so a packet arriving after its flow
    /// expired opens a fresh flow.
    pub fn absorb(
        &mut self,
        index: u64,
        ts: u64,
        stamp: u64,
        pkt: &Packet,
        stats: &mut IngestStats,
        closed: &mut Vec<ClosedFlow>,
    ) {
        self.sweep(stamp, closed);
        let key = FlowKey {
            client_ip: pkt.ip.src(),
            server_ip: pkt.ip.dst(),
            src_port: pkt.tcp.src_port,
            dst_port: pkt.tcp.dst_port,
        };
        let live = self.flows.entry(key).or_insert_with(|| {
            stats.flows += 1;
            LiveFlow {
                flow: FlowRecord {
                    client_ip: key.client_ip,
                    server_ip: key.server_ip,
                    src_port: key.src_port,
                    dst_port: key.dst_port,
                    // tamperlint: allow(hot-path-alloc) — one empty Vec per flow *birth*, not per packet; first push sizes it
                    packets: Vec::new(),
                    observation_end_sec: ts,
                    truncated: false,
                },
                first_index: index,
                last_ts: ts,
            }
        });
        live.last_ts = live.last_ts.max(ts);
        if live.flow.packets.len() >= self.cfg.max_packets {
            live.flow.truncated = true;
            stats.truncated_packets += 1;
        } else {
            live.flow.packets.push(PacketRecord::from_packet(ts, pkt));
            stats.packets += 1;
        }
        if self.max_live > 0 && self.flows.len() > self.max_live {
            self.shed_lru(closed);
        }
        // Taken after shedding: the retained occupancy is what the memory
        // bound promises (insertion holds one transient extra entry).
        self.high_water = self.high_water.max(self.flows.len());
    }

    /// Evict every flow whose timeout elapsed before `stamp`, oldest
    /// first-seen first.
    fn sweep(&mut self, stamp: u64, closed: &mut Vec<ClosedFlow>) {
        if stamp <= self.last_sweep {
            return;
        }
        self.last_sweep = stamp;
        let timeout = self.cfg.flow_timeout_secs;
        let mut expired = std::mem::take(&mut self.expired_scratch);
        expired.clear();
        expired.extend(
            self.flows
                .iter()
                .filter(|(_, lf)| lf.last_ts + timeout < stamp)
                .map(|(k, lf)| (lf.first_index, *k)),
        );
        expired.sort_unstable_by_key(|&(first_index, _)| first_index);
        for &(_, key) in &expired {
            if let Some(lf) = self.flows.remove(&key) {
                closed.push(Self::close(
                    lf,
                    self.cfg.flow_timeout_secs,
                    EvictionCause::Timeout,
                ));
            }
        }
        expired.clear();
        self.expired_scratch = expired;
    }

    /// Shed the least-recently-active flow (ties broken by first-seen).
    fn shed_lru(&mut self, closed: &mut Vec<ClosedFlow>) {
        let victim = self
            .flows
            .iter()
            .min_by_key(|(_, lf)| (lf.last_ts, lf.first_index))
            .map(|(k, _)| *k);
        if let Some(key) = victim {
            if let Some(lf) = self.flows.remove(&key) {
                closed.push(Self::close(
                    lf,
                    self.cfg.flow_timeout_secs,
                    EvictionCause::CapPressure,
                ));
            }
        }
    }

    /// Close all remaining flows at end of capture. Flows whose timeout had
    /// already elapsed at `final_stamp` count as timeout evictions (their
    /// shard just saw no later packet to trigger the sweep); the rest close
    /// as end-of-capture. Output is ordered by first-seen index.
    pub fn drain(&mut self, final_stamp: u64, closed: &mut Vec<ClosedFlow>) {
        let timeout = self.cfg.flow_timeout_secs;
        let mut rest: Vec<LiveFlow> = self.flows.drain().map(|(_, lf)| lf).collect();
        rest.sort_unstable_by_key(|lf| lf.first_index);
        for lf in rest {
            let cause = if lf.last_ts + timeout < final_stamp {
                EvictionCause::Timeout
            } else {
                EvictionCause::EndOfCapture
            };
            closed.push(Self::close(lf, timeout, cause));
        }
    }

    fn close(mut lf: LiveFlow, timeout: u64, cause: EvictionCause) -> ClosedFlow {
        let last = lf.flow.packets.iter().map(|p| p.ts_sec).max().unwrap_or(0);
        // Mirror an online collector that watched the flow for the timeout
        // window after its last retained packet.
        lf.flow.observation_end_sec = last + timeout;
        ClosedFlow {
            flow: lf.flow,
            first_index: lf.first_index,
            cause,
        }
    }
}

/// Assemble flow records from raw pcap records. Packets that fail to
/// parse, or that are not TCP toward a configured server port, are
/// skipped and counted in the returned statistics.
///
/// This is the single-threaded reference path; it shares the streaming
/// [`FlowTable`] semantics with the sharded engine, so a 4-tuple that goes
/// quiet for longer than the flow timeout and then resumes yields two
/// flows, exactly as an online collector would record it.
pub fn flows_from_records(
    records: &[PcapRecord],
    cfg: &OfflineConfig,
) -> (Vec<FlowRecord>, IngestStats) {
    flows_from_records_observed(records, cfg, None)
}

/// [`flows_from_records`] with an optional metrics registry attached.
///
/// When `obs` is `Some`, the pass publishes an `offline` scope: record and
/// skip counters, parse/absorb stage timers, and a live-flow occupancy
/// gauge. With `None` every instrument is disabled and no clock is read —
/// [`flows_from_records`] is exactly this with `None`. Metrics never feed
/// the returned flows or statistics, so attaching a registry cannot
/// perturb byte-compared output.
pub fn flows_from_records_observed(
    records: &[PcapRecord],
    cfg: &OfflineConfig,
    obs: Option<&Registry>,
) -> (Vec<FlowRecord>, IngestStats) {
    let mut sm = match obs {
        Some(r) => r.scope("offline"),
        None => ScopeMetrics::disabled(),
    };
    let mut stats = IngestStats::default();
    let mut table = FlowTable::new(*cfg, 0);
    let mut closed = Vec::new();
    let mut stamp = 0u64;

    let ingest_sw = sm.start();
    for (index, rec) in records.iter().enumerate() {
        sm.count("records", 1);
        let ts = u64::from(rec.ts_sec);
        stamp = stamp.max(ts);
        let parse_sw = sm.start();
        let parsed = Packet::parse(&rec.frame);
        sm.stop("parse", parse_sw);
        let pkt = match parsed {
            Ok(p) => p,
            Err(_) => {
                stats.unparsable += 1;
                continue;
            }
        };
        if !cfg.server_ports.contains(&pkt.tcp.dst_port) {
            stats.not_inbound += 1;
            continue;
        }
        let absorb_sw = sm.start();
        table.absorb(index as u64, ts, stamp, &pkt, &mut stats, &mut closed);
        sm.stop("absorb_evict", absorb_sw);
        sm.gauge_max("live_flows", table.live() as u64);
    }
    table.drain(stamp, &mut closed);
    sm.stop("ingest", ingest_sw);
    sm.count("flows_closed", closed.len() as u64);
    sm.gauge_max("high_water", table.high_water() as u64);
    if let Some(r) = obs {
        r.publish(sm);
    }
    closed.sort_unstable_by_key(|cf| cf.first_index);
    (closed.into_iter().map(|cf| cf.flow).collect(), stats)
}

/// Read a pcap stream and assemble flows in one call.
pub fn flows_from_pcap<R: Read>(
    reader: R,
    cfg: &OfflineConfig,
) -> Result<(Vec<FlowRecord>, IngestStats), PcapError> {
    flows_from_pcap_observed(reader, cfg, None)
}

/// [`flows_from_pcap`] with an optional metrics registry attached (see
/// [`flows_from_records_observed`]).
pub fn flows_from_pcap_observed<R: Read>(
    reader: R,
    cfg: &OfflineConfig,
    obs: Option<&Registry>,
) -> Result<(Vec<FlowRecord>, IngestStats), PcapError> {
    let mut pcap = PcapReader::new(reader)?;
    let records = pcap.read_all()?;
    Ok(flows_from_records_observed(&records, cfg, obs))
}

/// Counters from an offline ingestion pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Flows assembled.
    pub flows: u64,
    /// Packets retained.
    pub packets: u64,
    /// Packets past the per-flow cap.
    pub truncated_packets: u64,
    /// Frames that did not parse as IP/TCP.
    pub unparsable: u64,
    /// TCP packets not destined to a configured server port (outbound or
    /// other services).
    pub not_inbound: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::PcapWriter;
    use bytes::Bytes;
    use std::net::Ipv4Addr;
    use tamper_wire::{PacketBuilder, TcpFlags};

    fn client(i: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(203, 0, 113, i))
    }
    fn server() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1))
    }

    fn frame(
        src: IpAddr,
        sport: u16,
        flags: TcpFlags,
        seq: u32,
        payload: &'static [u8],
    ) -> Vec<u8> {
        PacketBuilder::new(src, server(), sport, 443)
            .flags(flags)
            .seq(seq)
            .payload(Bytes::from_static(payload))
            .build()
            .emit()
            .to_vec()
    }

    #[test]
    fn assembles_flows_by_four_tuple() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(100, 0, &frame(client(1), 4000, TcpFlags::SYN, 1, b""))
            .unwrap();
        w.write_frame(100, 10, &frame(client(2), 4001, TcpFlags::SYN, 9, b""))
            .unwrap();
        w.write_frame(101, 0, &frame(client(1), 4000, TcpFlags::PSH_ACK, 2, b"x"))
            .unwrap();
        let bytes = w.into_inner();
        let (flows, stats) = flows_from_pcap(&bytes[..], &OfflineConfig::default()).unwrap();
        assert_eq!(flows.len(), 2);
        assert_eq!(stats.flows, 2);
        assert_eq!(stats.packets, 3);
        let f1 = flows.iter().find(|f| f.client_ip == client(1)).unwrap();
        assert_eq!(f1.packets.len(), 2);
        assert_eq!(f1.observation_end_sec, 101 + 30);
    }

    #[test]
    fn outbound_and_garbage_skipped() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        // Outbound packet (server port as source, client port as dest).
        let outbound = PacketBuilder::new(server(), client(1), 443, 4000)
            .flags(TcpFlags::SYN_ACK)
            .build()
            .emit()
            .to_vec();
        w.write_frame(100, 0, &outbound).unwrap();
        w.write_frame(100, 1, &[0xde, 0xad]).unwrap();
        w.write_frame(100, 2, &frame(client(1), 4000, TcpFlags::SYN, 1, b""))
            .unwrap();
        let bytes = w.into_inner();
        let (flows, stats) = flows_from_pcap(&bytes[..], &OfflineConfig::default()).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(stats.not_inbound, 1);
        assert_eq!(stats.unparsable, 1);
    }

    #[test]
    fn per_flow_cap_marks_truncation() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..14u32 {
            w.write_frame(
                100 + i,
                0,
                &frame(client(1), 4000, TcpFlags::ACK, 100 + i, b""),
            )
            .unwrap();
        }
        let bytes = w.into_inner();
        let (flows, stats) = flows_from_pcap(&bytes[..], &OfflineConfig::default()).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].packets.len(), 10);
        assert!(flows[0].truncated);
        assert_eq!(stats.truncated_packets, 4);
    }
}
