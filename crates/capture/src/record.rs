//! Flow records: the collector's output and the classifier's only input.
//!
//! A [`FlowRecord`] mirrors what the paper's pipeline stores per sampled
//! connection: up to ten **inbound** packets with full headers and
//! payloads, timestamped at one-second granularity, possibly logged out of
//! order. Nothing else about the connection is available downstream.

use bytes::Bytes;
use std::net::IpAddr;
use tamper_wire::{Packet, TcpFlags};

/// One logged inbound packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketRecord {
    /// Arrival timestamp quantized to whole seconds (the paper's logging
    /// granularity).
    pub ts_sec: u64,
    /// TCP flag byte.
    pub flags: TcpFlags,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// IPv4 identification, `None` on IPv6.
    pub ip_id: Option<u16>,
    /// TTL / hop limit as received.
    pub ttl: u8,
    /// Receive window.
    pub window: u16,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Payload bytes (the paper logs full payloads; triggers are extracted
    /// from them).
    pub payload: Bytes,
    /// True if the TCP header carried any options (scanner heuristic).
    pub has_tcp_options: bool,
}

impl PacketRecord {
    /// Build a record from a received packet and its quantized timestamp.
    pub fn from_packet(ts_sec: u64, pkt: &Packet) -> PacketRecord {
        PacketRecord {
            ts_sec,
            flags: pkt.tcp.flags,
            seq: pkt.tcp.seq,
            ack: pkt.tcp.ack,
            ip_id: pkt.ip.ip_id(),
            ttl: pkt.ip.ttl(),
            window: pkt.tcp.window,
            payload_len: pkt.payload.len() as u32,
            payload: pkt.payload.clone(),
            has_tcp_options: !pkt.tcp.options.is_empty(),
        }
    }

    /// True for data-bearing packets.
    pub fn has_payload(&self) -> bool {
        self.payload_len > 0
    }
}

/// One sampled connection as the collector recorded it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    /// Client (source) address.
    pub client_ip: IpAddr,
    /// Server (destination) address.
    pub server_ip: IpAddr,
    /// Client source port.
    pub src_port: u16,
    /// Server port: 80 (HTTP) or 443 (HTTPS) in this study.
    pub dst_port: u16,
    /// Up to ten inbound packets, in log order (not necessarily arrival
    /// order).
    pub packets: Vec<PacketRecord>,
    /// When the collector closed the flow (seconds); tail inactivity is
    /// judged against this.
    pub observation_end_sec: u64,
    /// True if more than the retained packets arrived (truncation marker).
    pub truncated: bool,
}

impl FlowRecord {
    /// True for IPv4 flows.
    pub fn is_ipv4(&self) -> bool {
        self.client_ip.is_ipv4()
    }

    /// Seconds from the first logged packet to the observation end.
    pub fn tail_gap_after_last_packet(&self) -> u64 {
        self.packets
            .iter()
            .map(|p| p.ts_sec)
            .max()
            .map(|last| self.observation_end_sec.saturating_sub(last))
            .unwrap_or(0)
    }
}

/// Why the streaming flow table closed a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionCause {
    /// More than the configured flow timeout of capture time passed since
    /// the flow's last packet.
    Timeout,
    /// The table hit its live-flow cap and shed its least-recently-active
    /// flow to stay within the memory bound.
    CapPressure,
    /// The capture ended while the flow was still inside its timeout
    /// window.
    EndOfCapture,
}

/// An interned flow 4-tuple: stored once per flow in a batch instead of
/// once per packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowTuple {
    /// Client (source) address.
    pub client_ip: IpAddr,
    /// Server (destination) address.
    pub server_ip: IpAddr,
    /// Client source port.
    pub src_port: u16,
    /// Server port.
    pub dst_port: u16,
}

/// One finished flow inside a [`FlowBatch`]: an index range into the
/// packed packet columns plus the per-flow metadata a [`FlowRecord`]
/// would carry.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpan {
    /// Index into the batch's interned tuples.
    pub tuple: u32,
    /// First packet row of this flow (inclusive).
    pub pkt_start: u32,
    /// One past the last packet row of this flow.
    pub pkt_end: u32,
    /// Reader-assigned index of the record that opened the flow.
    pub first_index: u64,
    /// When the collector closed the flow (seconds).
    pub observation_end_sec: u64,
    /// True if more than the retained packets arrived.
    pub truncated: bool,
    /// Why the flow was closed.
    pub cause: EvictionCause,
}

/// Sentinel in the batch `ip_id` column for packets without an IPv4
/// identification field (IPv6).
pub const NO_IP_ID: u32 = u32::MAX;

/// One packet staged in a live-flow slot, row form. The flow table
/// buffers rows per live flow (one push per packet) and transposes them
/// into [`FlowBatch`] columns in bulk when the flow closes — see
/// [`FlowBatch::extend_rows`]. `payload_off`/`payload_len` index the
/// staging slot's own payload buffer; `ip_id` uses the [`NO_IP_ID`]
/// sentinel.
#[derive(Clone, Copy, Debug, Default)]
#[allow(missing_docs)] // field meanings match the FlowBatch columns documented above
pub struct PacketRow {
    pub ts_sec: u64,
    pub seq: u32,
    pub ack: u32,
    pub ip_id: u32,
    pub payload_off: u32,
    pub payload_len: u32,
    pub window: u16,
    pub flags: TcpFlags,
    pub ttl: u8,
    pub has_tcp_options: bool,
}

/// Arena/SoA storage for a batch of finished flows.
///
/// Packet fields live in packed parallel columns, payload bytes in one
/// shared arena, and each flow is a [`FlowSpan`] index range — no
/// per-flow `Vec<PacketRecord>`, no per-packet `Bytes`. A shard fills a
/// batch as its flow table evicts, hands it downstream whole, and the
/// classifier walks it through [`FlowCols`] column slices. `clear()`
/// retains every buffer's capacity, so a recycled batch ingests and
/// classifies without touching the heap.
#[derive(Debug, Default)]
pub struct FlowBatch {
    ts_sec: Vec<u64>,
    flags: Vec<TcpFlags>,
    seq: Vec<u32>,
    ack: Vec<u32>,
    ip_id: Vec<u32>,
    ttl: Vec<u8>,
    window: Vec<u16>,
    payload_off: Vec<u32>,
    payload_len: Vec<u32>,
    has_tcp_options: Vec<bool>,
    arena: Vec<u8>,
    tuples: Vec<FlowTuple>,
    spans: Vec<FlowSpan>,
}

impl FlowBatch {
    /// An empty batch.
    pub fn new() -> FlowBatch {
        FlowBatch::default()
    }

    /// Number of finished flows in the batch.
    pub fn flow_count(&self) -> usize {
        self.spans.len()
    }

    /// Number of packet rows across all flows.
    pub fn packet_count(&self) -> usize {
        self.ts_sec.len()
    }

    /// Payload arena occupancy in bytes.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// True if the batch holds no flows.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Drop all rows but keep every buffer's capacity.
    pub fn clear(&mut self) {
        self.ts_sec.clear();
        self.flags.clear();
        self.seq.clear();
        self.ack.clear();
        self.ip_id.clear();
        self.ttl.clear();
        self.window.clear();
        self.payload_off.clear();
        self.payload_len.clear();
        self.has_tcp_options.clear();
        self.arena.clear();
        self.tuples.clear();
        self.spans.clear();
    }

    /// Append one packet row. Rows between the previous flow's end and the
    /// next [`push_flow`](Self::push_flow) belong to the flow being built.
    #[allow(clippy::too_many_arguments)]
    pub fn push_packet(
        &mut self,
        ts_sec: u64,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        ip_id: Option<u16>,
        ttl: u8,
        window: u16,
        payload: &[u8],
        has_tcp_options: bool,
    ) {
        self.ts_sec.push(ts_sec);
        self.flags.push(flags);
        self.seq.push(seq);
        self.ack.push(ack);
        self.ip_id.push(ip_id.map_or(NO_IP_ID, u32::from));
        self.ttl.push(ttl);
        self.window.push(window);
        self.payload_off.push(self.arena.len() as u32);
        self.payload_len.push(payload.len() as u32);
        self.has_tcp_options.push(has_tcp_options);
        self.arena.extend_from_slice(payload);
    }

    /// Append a staged flow's packet rows in one pass: one bulk extend
    /// per column instead of ten capacity checks per packet. `payload`
    /// is the staging arena the rows' `payload_off` values index into;
    /// offsets are rebased onto this batch's arena.
    pub fn extend_rows(&mut self, rows: &[PacketRow], payload: &[u8]) {
        let base = self.arena.len() as u32;
        self.ts_sec.extend(rows.iter().map(|r| r.ts_sec));
        self.flags.extend(rows.iter().map(|r| r.flags));
        self.seq.extend(rows.iter().map(|r| r.seq));
        self.ack.extend(rows.iter().map(|r| r.ack));
        self.ip_id.extend(rows.iter().map(|r| r.ip_id));
        self.ttl.extend(rows.iter().map(|r| r.ttl));
        self.window.extend(rows.iter().map(|r| r.window));
        self.payload_off
            .extend(rows.iter().map(|r| base + r.payload_off));
        self.payload_len.extend(rows.iter().map(|r| r.payload_len));
        self.has_tcp_options
            .extend(rows.iter().map(|r| r.has_tcp_options));
        self.arena.extend_from_slice(payload);
    }

    /// Seal the packet rows from `pkt_start` to the current end as one
    /// finished flow.
    pub fn push_flow(
        &mut self,
        tuple: FlowTuple,
        pkt_start: u32,
        first_index: u64,
        observation_end_sec: u64,
        truncated: bool,
        cause: EvictionCause,
    ) {
        let tuple_idx = self.tuples.len() as u32;
        self.tuples.push(tuple);
        self.spans.push(FlowSpan {
            tuple: tuple_idx,
            pkt_start,
            pkt_end: self.ts_sec.len() as u32,
            first_index,
            observation_end_sec,
            truncated,
            cause,
        });
    }

    /// The finished flows, in eviction order.
    pub fn spans(&self) -> &[FlowSpan] {
        &self.spans
    }

    /// The 4-tuple of a span.
    pub fn tuple(&self, span: &FlowSpan) -> &FlowTuple {
        &self.tuples[span.tuple as usize]
    }

    /// Column slices for flow `i` — the classifier's view of one flow.
    pub fn flow_cols(&self, i: usize) -> FlowCols<'_> {
        let span = &self.spans[i];
        let r = span.pkt_start as usize..span.pkt_end as usize;
        FlowCols {
            ts_sec: &self.ts_sec[r.clone()],
            flags: &self.flags[r.clone()],
            seq: &self.seq[r.clone()],
            ack: &self.ack[r.clone()],
            ip_id: &self.ip_id[r.clone()],
            ttl: &self.ttl[r.clone()],
            window: &self.window[r.clone()],
            payload_off: &self.payload_off[r.clone()],
            payload_len: &self.payload_len[r.clone()],
            has_tcp_options: &self.has_tcp_options[r],
            arena: &self.arena,
        }
    }

    /// Materialize flow `i` as an owning [`FlowRecord`] — for rendering
    /// and evidence labeling, off the classification hot path.
    pub fn materialize(&self, i: usize) -> FlowRecord {
        let span = &self.spans[i];
        let tuple = self.tuple(span);
        let cols = self.flow_cols(i);
        let packets = (0..cols.len())
            .map(|p| PacketRecord {
                ts_sec: cols.ts_sec[p],
                flags: cols.flags[p],
                seq: cols.seq[p],
                ack: cols.ack[p],
                ip_id: cols.ip_id_of(p),
                ttl: cols.ttl[p],
                window: cols.window[p],
                payload_len: cols.payload_len[p],
                payload: Bytes::copy_from_slice(cols.payload_of(p)),
                has_tcp_options: cols.has_tcp_options[p],
            })
            .collect();
        FlowRecord {
            client_ip: tuple.client_ip,
            server_ip: tuple.server_ip,
            src_port: tuple.src_port,
            dst_port: tuple.dst_port,
            packets,
            observation_end_sec: span.observation_end_sec,
            truncated: span.truncated,
        }
    }
}

/// Borrowed column slices of one flow inside a [`FlowBatch`] — all
/// slices share the flow's packet range; `arena` is the whole batch
/// payload arena (offsets in `payload_off` are absolute).
#[derive(Debug, Clone, Copy)]
pub struct FlowCols<'a> {
    /// Arrival timestamps (seconds).
    pub ts_sec: &'a [u64],
    /// TCP flag bytes.
    pub flags: &'a [TcpFlags],
    /// Sequence numbers.
    pub seq: &'a [u32],
    /// Acknowledgement numbers.
    pub ack: &'a [u32],
    /// IPv4 identification, [`NO_IP_ID`] on IPv6.
    pub ip_id: &'a [u32],
    /// TTLs / hop limits.
    pub ttl: &'a [u8],
    /// Receive windows.
    pub window: &'a [u16],
    /// Absolute payload offsets into `arena`.
    pub payload_off: &'a [u32],
    /// Payload lengths.
    pub payload_len: &'a [u32],
    /// TCP-options-present bits.
    pub has_tcp_options: &'a [bool],
    /// The batch payload arena.
    pub arena: &'a [u8],
}

impl FlowCols<'_> {
    /// Number of packets in the flow.
    pub fn len(&self) -> usize {
        self.ts_sec.len()
    }

    /// True if the flow logged no packets.
    pub fn is_empty(&self) -> bool {
        self.ts_sec.is_empty()
    }

    /// Payload bytes of packet `i`.
    pub fn payload_of(&self, i: usize) -> &[u8] {
        let off = self.payload_off[i] as usize;
        &self.arena[off..off + self.payload_len[i] as usize]
    }

    /// IPv4 identification of packet `i`, decoded from the sentinel column.
    pub fn ip_id_of(&self, i: usize) -> Option<u16> {
        let raw = self.ip_id[i];
        if raw == NO_IP_ID {
            None
        } else {
            Some(raw as u16)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tamper_wire::PacketBuilder;

    fn packet() -> Packet {
        PacketBuilder::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            1234,
            443,
        )
        .flags(TcpFlags::PSH_ACK)
        .seq(7)
        .ack(9)
        .ip_id(77)
        .ttl(52)
        .payload(Bytes::from_static(b"data"))
        .build()
    }

    #[test]
    fn record_captures_header_fields() {
        let r = PacketRecord::from_packet(1673481600, &packet());
        assert_eq!(r.ts_sec, 1673481600);
        assert_eq!(r.flags, TcpFlags::PSH_ACK);
        assert_eq!(r.seq, 7);
        assert_eq!(r.ack, 9);
        assert_eq!(r.ip_id, Some(77));
        assert_eq!(r.ttl, 52);
        assert_eq!(r.payload_len, 4);
        assert!(r.has_payload());
        assert!(!r.has_tcp_options);
    }

    #[test]
    fn tail_gap_measured_from_last_packet() {
        let flow = FlowRecord {
            client_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            server_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            src_port: 1,
            dst_port: 443,
            packets: vec![
                PacketRecord::from_packet(100, &packet()),
                PacketRecord::from_packet(103, &packet()),
            ],
            observation_end_sec: 130,
            truncated: false,
        };
        assert_eq!(flow.tail_gap_after_last_packet(), 27);
        assert!(flow.is_ipv4());
    }

    #[test]
    fn batch_round_trips_through_materialize() {
        let mut batch = FlowBatch::new();
        let t0 = FlowTuple {
            client_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            server_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            src_port: 4000,
            dst_port: 443,
        };
        batch.push_packet(100, TcpFlags::SYN, 1, 0, Some(7), 52, 65535, b"", true);
        batch.push_packet(
            101,
            TcpFlags::PSH_ACK,
            2,
            9,
            Some(8),
            52,
            1000,
            b"abc",
            false,
        );
        batch.push_flow(t0, 0, 5, 131, false, EvictionCause::Timeout);
        let t1 = FlowTuple {
            client_ip: "2001:db8::1".parse().unwrap(),
            server_ip: "2001:db8::2".parse().unwrap(),
            src_port: 4001,
            dst_port: 80,
        };
        batch.push_packet(200, TcpFlags::RST, 3, 0, None, 200, 0, b"", false);
        batch.push_flow(t1, 2, 9, 230, true, EvictionCause::EndOfCapture);

        assert_eq!(batch.flow_count(), 2);
        assert_eq!(batch.packet_count(), 3);
        assert_eq!(batch.arena_bytes(), 3);

        let f0 = batch.materialize(0);
        assert_eq!(f0.client_ip, t0.client_ip);
        assert_eq!(f0.packets.len(), 2);
        assert_eq!(f0.packets[0].flags, TcpFlags::SYN);
        assert_eq!(f0.packets[1].payload, Bytes::from_static(b"abc"));
        assert_eq!(f0.packets[1].ip_id, Some(8));
        assert_eq!(f0.observation_end_sec, 131);
        assert!(!f0.truncated);

        let f1 = batch.materialize(1);
        assert!(!f1.is_ipv4());
        assert_eq!(f1.packets[0].ip_id, None);
        assert!(f1.truncated);
        assert_eq!(batch.spans()[1].cause, EvictionCause::EndOfCapture);

        let cols = batch.flow_cols(0);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols.payload_of(1), b"abc");
        assert_eq!(cols.ip_id_of(0), Some(7));
        assert_eq!(batch.flow_cols(1).ip_id_of(0), None);

        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.packet_count(), 0);
        assert_eq!(batch.arena_bytes(), 0);
    }

    #[test]
    fn empty_flow_has_zero_tail_gap() {
        let flow = FlowRecord {
            client_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            server_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            src_port: 1,
            dst_port: 443,
            packets: vec![],
            observation_end_sec: 130,
            truncated: false,
        };
        assert_eq!(flow.tail_gap_after_last_packet(), 0);
    }
}
