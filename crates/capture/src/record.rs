//! Flow records: the collector's output and the classifier's only input.
//!
//! A [`FlowRecord`] mirrors what the paper's pipeline stores per sampled
//! connection: up to ten **inbound** packets with full headers and
//! payloads, timestamped at one-second granularity, possibly logged out of
//! order. Nothing else about the connection is available downstream.

use bytes::Bytes;
use std::net::IpAddr;
use tamper_wire::{Packet, TcpFlags};

/// One logged inbound packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketRecord {
    /// Arrival timestamp quantized to whole seconds (the paper's logging
    /// granularity).
    pub ts_sec: u64,
    /// TCP flag byte.
    pub flags: TcpFlags,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// IPv4 identification, `None` on IPv6.
    pub ip_id: Option<u16>,
    /// TTL / hop limit as received.
    pub ttl: u8,
    /// Receive window.
    pub window: u16,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Payload bytes (the paper logs full payloads; triggers are extracted
    /// from them).
    pub payload: Bytes,
    /// True if the TCP header carried any options (scanner heuristic).
    pub has_tcp_options: bool,
}

impl PacketRecord {
    /// Build a record from a received packet and its quantized timestamp.
    pub fn from_packet(ts_sec: u64, pkt: &Packet) -> PacketRecord {
        PacketRecord {
            ts_sec,
            flags: pkt.tcp.flags,
            seq: pkt.tcp.seq,
            ack: pkt.tcp.ack,
            ip_id: pkt.ip.ip_id(),
            ttl: pkt.ip.ttl(),
            window: pkt.tcp.window,
            payload_len: pkt.payload.len() as u32,
            payload: pkt.payload.clone(),
            has_tcp_options: !pkt.tcp.options.is_empty(),
        }
    }

    /// True for data-bearing packets.
    pub fn has_payload(&self) -> bool {
        self.payload_len > 0
    }
}

/// One sampled connection as the collector recorded it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    /// Client (source) address.
    pub client_ip: IpAddr,
    /// Server (destination) address.
    pub server_ip: IpAddr,
    /// Client source port.
    pub src_port: u16,
    /// Server port: 80 (HTTP) or 443 (HTTPS) in this study.
    pub dst_port: u16,
    /// Up to ten inbound packets, in log order (not necessarily arrival
    /// order).
    pub packets: Vec<PacketRecord>,
    /// When the collector closed the flow (seconds); tail inactivity is
    /// judged against this.
    pub observation_end_sec: u64,
    /// True if more than the retained packets arrived (truncation marker).
    pub truncated: bool,
}

impl FlowRecord {
    /// True for IPv4 flows.
    pub fn is_ipv4(&self) -> bool {
        self.client_ip.is_ipv4()
    }

    /// Seconds from the first logged packet to the observation end.
    pub fn tail_gap_after_last_packet(&self) -> u64 {
        self.packets
            .iter()
            .map(|p| p.ts_sec)
            .max()
            .map(|last| self.observation_end_sec.saturating_sub(last))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tamper_wire::PacketBuilder;

    fn packet() -> Packet {
        PacketBuilder::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            1234,
            443,
        )
        .flags(TcpFlags::PSH_ACK)
        .seq(7)
        .ack(9)
        .ip_id(77)
        .ttl(52)
        .payload(Bytes::from_static(b"data"))
        .build()
    }

    #[test]
    fn record_captures_header_fields() {
        let r = PacketRecord::from_packet(1673481600, &packet());
        assert_eq!(r.ts_sec, 1673481600);
        assert_eq!(r.flags, TcpFlags::PSH_ACK);
        assert_eq!(r.seq, 7);
        assert_eq!(r.ack, 9);
        assert_eq!(r.ip_id, Some(77));
        assert_eq!(r.ttl, 52);
        assert_eq!(r.payload_len, 4);
        assert!(r.has_payload());
        assert!(!r.has_tcp_options);
    }

    #[test]
    fn tail_gap_measured_from_last_packet() {
        let flow = FlowRecord {
            client_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            server_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            src_port: 1,
            dst_port: 443,
            packets: vec![
                PacketRecord::from_packet(100, &packet()),
                PacketRecord::from_packet(103, &packet()),
            ],
            observation_end_sec: 130,
            truncated: false,
        };
        assert_eq!(flow.tail_gap_after_last_packet(), 27);
        assert!(flow.is_ipv4());
    }

    #[test]
    fn empty_flow_has_zero_tail_gap() {
        let flow = FlowRecord {
            client_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            server_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            src_port: 1,
            dst_port: 443,
            packets: vec![],
            observation_end_sec: 130,
            truncated: false,
        };
        assert_eq!(flow.tail_gap_after_last_packet(), 0);
    }
}
