//! Classic libpcap file format (the one every tcpdump/wireshark reads),
//! with LINKTYPE_RAW (101): each record is a bare IPv4/IPv6 packet.
//!
//! This keeps the library useful beyond simulation: captured simulated
//! flows can be inspected with standard tooling, and *real* pcap files of
//! server-side captures can be fed to the classifier.

use std::io::{self, Read, Write};
use tamper_wire::Packet;

const MAGIC: u32 = 0xa1b2_c3d4;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
/// LINKTYPE_RAW: raw IP, version nibble decides v4/v6.
const LINKTYPE_RAW: u32 = 101;
/// Snapshot length written to our own headers, and the hard upper bound we
/// accept for any record's `incl_len` when reading. A corrupt length field
/// must never translate into a multi-gigabyte allocation.
pub const SNAPLEN: u32 = 65_535;

/// Read a little-endian u32 out of a fixed-offset window of a header
/// buffer. The offsets are compile-time constants into stack arrays, so
/// the slice is always exactly four bytes.
fn le_u32(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    // tamperlint: allow(index) — offsets are compile-time constants into fixed-size stack arrays filled by read_exact
    b.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(b)
}

/// One captured record: a timestamp and the raw frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Seconds since the epoch.
    pub ts_sec: u32,
    /// Microseconds within the second.
    pub ts_usec: u32,
    /// Raw IP frame bytes.
    pub frame: Vec<u8>,
}

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    out: W,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header.
    pub fn new(mut out: W) -> io::Result<PcapWriter<W>> {
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&VERSION_MAJOR.to_le_bytes())?;
        out.write_all(&VERSION_MINOR.to_le_bytes())?;
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&SNAPLEN.to_le_bytes())?;
        out.write_all(&LINKTYPE_RAW.to_le_bytes())?;
        Ok(PcapWriter { out })
    }

    /// Write one raw frame.
    pub fn write_frame(&mut self, ts_sec: u32, ts_usec: u32, frame: &[u8]) -> io::Result<()> {
        self.out.write_all(&ts_sec.to_le_bytes())?;
        self.out.write_all(&ts_usec.to_le_bytes())?;
        let len = frame.len() as u32;
        self.out.write_all(&len.to_le_bytes())?; // incl_len
        self.out.write_all(&len.to_le_bytes())?; // orig_len
        self.out.write_all(frame)?;
        Ok(())
    }

    /// Emit a [`Packet`] (serialized via the wire emitter).
    pub fn write_packet(&mut self, ts_sec: u32, ts_usec: u32, pkt: &Packet) -> io::Result<()> {
        self.write_frame(ts_sec, ts_usec, &pkt.emit())
    }

    /// Finish writing, returning the underlying sink.
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// Error from pcap reading.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The global header was not a classic little-endian pcap header.
    BadMagic(u32),
    /// Unsupported link type (only LINKTYPE_RAW is handled).
    BadLinkType(u32),
    /// A record header claimed a captured length beyond any plausible
    /// snapshot — the file is corrupt past this point.
    OversizeRecord(u32),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap I/O error: {e}"),
            PcapError::BadMagic(m) => write!(f, "bad pcap magic {m:#x}"),
            PcapError::BadLinkType(l) => write!(f, "unsupported pcap link type {l}"),
            PcapError::OversizeRecord(n) => {
                write!(
                    f,
                    "pcap record claims {n} captured bytes (snaplen is {SNAPLEN})"
                )
            }
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> PcapError {
        PcapError::Io(e)
    }
}

/// Streaming pcap reader.
pub struct PcapReader<R: Read> {
    input: R,
}

impl<R: Read> PcapReader<R> {
    /// Open a reader, validating the global header.
    pub fn new(mut input: R) -> Result<PcapReader<R>, PcapError> {
        let mut header = [0u8; 24];
        input.read_exact(&mut header)?;
        let magic = le_u32(&header, 0);
        if magic != MAGIC {
            return Err(PcapError::BadMagic(magic));
        }
        let linktype = le_u32(&header, 20);
        if linktype != LINKTYPE_RAW {
            return Err(PcapError::BadLinkType(linktype));
        }
        Ok(PcapReader { input })
    }

    /// Read the next record; `Ok(None)` at clean end-of-file.
    ///
    /// Only an EOF landing exactly on a record boundary is a clean end.
    /// A cut mid-way through the 16-byte record header (or the frame
    /// body) is a ragged tail and surfaces as an error, so callers can
    /// count it rather than silently dropping up to 15 bytes.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>, PcapError> {
        let mut rec_header = [0u8; 16];
        let mut filled = 0usize;
        while filled < rec_header.len() {
            // tamperlint: allow(index) — filled < rec_header.len() by the loop condition
            match self.input.read(&mut rec_header[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(PcapError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        // tamperlint: allow(hot-path-alloc) — error-path message for a truncated capture; the read loop never reaches it on well-formed input
                        format!("pcap ends {filled} bytes into a record header"),
                    )));
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        let ts_sec = le_u32(&rec_header, 0);
        let ts_usec = le_u32(&rec_header, 4);
        let incl_len = le_u32(&rec_header, 8);
        if incl_len > SNAPLEN {
            return Err(PcapError::OversizeRecord(incl_len));
        }
        // tamperlint: allow(hot-path-alloc) — the record's frame buffer transfers ownership to the shard and outlives this reader
        let mut frame = vec![0u8; incl_len as usize];
        self.input.read_exact(&mut frame)?;
        Ok(Some(PcapRecord {
            ts_sec,
            ts_usec,
            frame,
        }))
    }

    /// Read all remaining records.
    pub fn read_all(&mut self) -> Result<Vec<PcapRecord>, PcapError> {
        let mut records = Vec::new();
        while let Some(r) = self.next_record()? {
            records.push(r);
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
    use tamper_wire::{PacketBuilder, TcpFlags};

    fn v4_packet() -> Packet {
        PacketBuilder::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            1234,
            80,
        )
        .flags(TcpFlags::PSH_ACK)
        .payload(Bytes::from_static(b"GET / HTTP/1.1\r\n\r\n"))
        .build()
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(100, 250_000, &v4_packet()).unwrap();
        w.write_packet(101, 0, &v4_packet()).unwrap();
        let bytes = w.into_inner();

        let mut r = PcapReader::new(&bytes[..]).unwrap();
        let records = r.read_all().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].ts_sec, 100);
        assert_eq!(records[0].ts_usec, 250_000);
        // Frames re-parse into identical packets.
        let parsed = Packet::parse(&records[0].frame).unwrap();
        assert_eq!(parsed.tcp.flags, TcpFlags::PSH_ACK);
        assert_eq!(&parsed.payload[..], b"GET / HTTP/1.1\r\n\r\n");
    }

    #[test]
    fn header_fields_are_standard() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.into_inner();
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(&bytes[20..24], &101u32.to_le_bytes());
    }

    #[test]
    fn rejects_bad_magic() {
        let bogus = [0u8; 24];
        match PcapReader::new(&bogus[..]) {
            Err(PcapError::BadMagic(0)) => {}
            Err(other) => panic!("unexpected error {other:?}"),
            Ok(_) => panic!("bogus header accepted"),
        }
    }

    #[test]
    fn rejects_wrong_linktype() {
        let mut bytes = PcapWriter::new(Vec::new()).unwrap().into_inner();
        bytes[20..24].copy_from_slice(&1u32.to_le_bytes()); // Ethernet
        match PcapReader::new(&bytes[..]) {
            Err(PcapError::BadLinkType(1)) => {}
            Err(other) => panic!("unexpected error {other:?}"),
            Ok(_) => panic!("wrong linktype accepted"),
        }
    }

    #[test]
    fn ipv6_frames_round_trip() {
        let pkt = PacketBuilder::new(
            IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1)),
            IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2)),
            5,
            443,
        )
        .flags(TcpFlags::SYN)
        .build();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(7, 8, &pkt).unwrap();
        let bytes = w.into_inner();
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        let parsed = Packet::parse(&rec.frame).unwrap();
        assert!(!parsed.ip.is_v4());
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn oversize_record_is_rejected_not_allocated() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(1, 2, &v4_packet()).unwrap();
        let mut bytes = w.into_inner();
        // Corrupt the first record's incl_len (global header is 24 bytes,
        // incl_len sits 8 bytes into the record header) to claim 1 GiB.
        bytes[32..36].copy_from_slice(&(1u32 << 30).to_le_bytes());
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        match r.next_record() {
            Err(PcapError::OversizeRecord(n)) => assert_eq!(n, 1 << 30),
            other => panic!("expected oversize error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_record_is_io_error() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(1, 2, &v4_packet()).unwrap();
        let mut bytes = w.into_inner();
        bytes.truncate(bytes.len() - 3);
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert!(r.next_record().is_err());
    }
}

/// Write every packet of a session trace (both directions, as received at
/// the endpoints) to a pcap stream — the debugging view for Wireshark.
pub fn write_session_trace<W: Write>(
    writer: &mut PcapWriter<W>,
    trace: &tamper_netsim::SessionTrace,
) -> io::Result<u64> {
    let mut written = 0;
    for tp in &trace.packets {
        let secs = tp.time.as_secs() as u32;
        let usec = ((tp.time.as_nanos() % 1_000_000_000) / 1_000) as u32;
        writer.write_packet(secs, usec, &tp.packet)?;
        written += 1;
    }
    Ok(written)
}

#[cfg(test)]
mod trace_export_tests {
    use super::*;
    use tamper_netsim::{
        derive_rng, run_session, ClientConfig, Path, ServerConfig, SessionParams, SimDuration,
        SimTime,
    };

    #[test]
    fn session_trace_round_trips_through_pcap() {
        let client = "203.0.113.30".parse().unwrap();
        let server = "198.51.100.1".parse().unwrap();
        let cfg = ClientConfig::default_tls(client, server, "exported.example");
        let mut path = Path::direct(SimDuration::from_millis(25), 9);
        let mut rng = derive_rng(21, 1);
        let trace = run_session(
            SessionParams::new(cfg, ServerConfig::default_edge(server, 443), SimTime::ZERO),
            &mut path,
            &mut rng,
        );
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let n = write_session_trace(&mut w, &trace).unwrap();
        assert_eq!(n as usize, trace.packets.len());
        assert!(n > 10, "both directions should be present");
        let bytes = w.into_inner();
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        let records = r.read_all().unwrap();
        assert_eq!(records.len(), trace.packets.len());
        // Every frame re-parses, and both directions appear.
        let mut to_server = 0;
        let mut to_client = 0;
        for rec in &records {
            let pkt = Packet::parse(&rec.frame).unwrap();
            if pkt.tcp.dst_port == 443 {
                to_server += 1;
            } else {
                to_client += 1;
            }
        }
        assert!(to_server > 0 && to_client > 0);
    }
}
