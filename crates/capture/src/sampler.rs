//! The uniform connection sampler.
//!
//! The paper samples one of every 10,000 new connections at every server,
//! after DDoS scrubbing. We reproduce that as a deterministic hash of the
//! connection 4-tuple and a deployment seed, so sampling is stable across
//! process runs and shards while remaining uniform.

use std::net::IpAddr;
use tamper_netsim::splitmix64;

/// Deterministic 1-in-N connection sampler.
///
/// ```
/// use tamper_capture::Sampler;
/// let s = Sampler::new(7, 10_000);
/// let client = "203.0.113.9".parse().unwrap();
/// let server = "198.51.100.1".parse().unwrap();
/// // Decisions are stable for a given connection identity.
/// assert_eq!(s.keep(client, server, 443, 1), s.keep(client, server, 443, 1));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    seed: u64,
    denominator: u64,
}

impl Sampler {
    /// Sample 1 in `denominator` connections. `denominator = 1` keeps
    /// everything (used when the simulation itself already models the
    /// sampled sub-population).
    pub fn new(seed: u64, denominator: u64) -> Sampler {
        Sampler {
            seed,
            denominator: denominator.max(1),
        }
    }

    fn hash_ip(h: u64, ip: IpAddr) -> u64 {
        match ip {
            IpAddr::V4(v4) => splitmix64(h ^ u64::from(u32::from(v4))),
            IpAddr::V6(v6) => {
                let bits = u128::from_be_bytes(v6.octets());
                let hi = (bits >> 64) as u64;
                let lo = bits as u64;
                splitmix64(splitmix64(h ^ hi) ^ lo)
            }
        }
    }

    /// Decide whether this connection is sampled.
    pub fn keep(&self, client: IpAddr, server: IpAddr, src_port: u16, conn_seq: u64) -> bool {
        let mut h = self.seed;
        h = Self::hash_ip(h, client);
        h = Self::hash_ip(h, server);
        h = splitmix64(h ^ (u64::from(src_port) << 32) ^ conn_seq);
        h.is_multiple_of(self.denominator)
    }

    /// The configured denominator.
    pub fn denominator(&self) -> u64 {
        self.denominator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn client(i: u32) -> IpAddr {
        IpAddr::V4(Ipv4Addr::from(0x0A00_0000 + i))
    }

    #[test]
    fn denominator_one_keeps_everything() {
        let s = Sampler::new(7, 1);
        for i in 0..100 {
            assert!(s.keep(client(i), client(9999), 1000, i as u64));
        }
    }

    #[test]
    fn rate_is_approximately_one_in_n() {
        let s = Sampler::new(42, 100);
        let total = 200_000u64;
        let kept = (0..total)
            .filter(|&i| {
                s.keep(
                    client((i % 50_000) as u32),
                    client(9_999_999),
                    (i % 60_000) as u16,
                    i,
                )
            })
            .count() as f64;
        let rate = kept / total as f64;
        assert!(
            (rate - 0.01).abs() < 0.002,
            "rate {rate} too far from 1/100"
        );
    }

    #[test]
    fn decision_is_deterministic() {
        let s = Sampler::new(1, 10_000);
        let a = s.keep(client(5), client(6), 777, 123);
        let b = s.keep(client(5), client(6), 777, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_sample_different_sets() {
        let s1 = Sampler::new(1, 10);
        let s2 = Sampler::new(2, 10);
        let picks1: Vec<bool> = (0..1000)
            .map(|i| s1.keep(client(i), client(0), 1, i as u64))
            .collect();
        let picks2: Vec<bool> = (0..1000)
            .map(|i| s2.keep(client(i), client(0), 1, i as u64))
            .collect();
        assert_ne!(picks1, picks2);
    }

    #[test]
    fn ipv6_addresses_hash() {
        let s = Sampler::new(3, 2);
        let v6a: IpAddr = "2001:db8::1".parse().unwrap();
        let v6b: IpAddr = "2001:db8::2".parse().unwrap();
        // Just exercise the path and determinism.
        assert_eq!(s.keep(v6a, v6b, 1, 1), s.keep(v6a, v6b, 1, 1));
    }
}
