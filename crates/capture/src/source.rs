//! Pluggable front-ends for the streaming engine: the [`FlowSource`]
//! trait and its three implementations.
//!
//! The engine in [`crate::engine`] is one reader thread fanning batches
//! out to N shard workers over bounded channels. Everything specific to
//! *where the stream comes from* lives behind [`FlowSource`]:
//!
//! * [`PcapSource`] — classic pcap bytes; items are raw frames stamped
//!   with the capture clock, shards parse and assemble flows in a
//!   [`FlowTable`].
//! * [`RecordSource`] — already-assembled [`FlowRecord`]s from memory (or
//!   any decoder — e.g. a JSONL reader — driving an iterator); shards
//!   just account and emit.
//! * [`SimSource`] — indexes into a deterministic generator such as
//!   `worldgen::WorldSim::gen_session`; generation itself runs on the
//!   shards so simulated worlds parallelize without an intermediate pcap.
//!
//! # Contract
//!
//! The reader pulls items with [`FlowSource::fill`], assigns each a
//! global index in pull order, and asks [`FlowSource::route`] which shard
//! owns it. Routing must be a pure function of the item (never of
//! scheduling), so the partition of work — and therefore every
//! deterministic output — is identical for a given shard count.
//! [`SourceShard::absorb`] and [`SourceShard::finish`] run on worker
//! threads; they fold per-shard counters into a [`ShardStats`] and push
//! finished units of work into `emit`, which the engine hands to the
//! caller's observe closure in emission order.

use crate::engine::EngineConfig;
use crate::offline::{ClosedFlow, ColumnarFlowTable, EvictionCause, FlowTable, IngestStats};
use crate::pcap::{PcapError, PcapReader, SNAPLEN};
use crate::record::{FlowBatch, FlowRecord};
use bytes::Bytes;
use std::io::Read;
use std::marker::PhantomData;
use std::net::IpAddr;
use tamper_netsim::splitmix64;
use tamper_obs::ScopeMetrics;
use tamper_wire::{Packet, PacketView};

/// Deterministic per-shard counters, merged into
/// [`crate::engine::EngineStats`] in shard order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Flow-assembly counters (flows, packets kept, truncated,
    /// unparsable, not-inbound).
    pub ingest: IngestStats,
    /// Flows evicted because their inactivity timeout elapsed mid-stream.
    pub evicted_timeout: u64,
    /// Flows shed by the live-flow cap (memory pressure).
    pub evicted_cap: u64,
    /// Flows drained at end of stream, inside their timeout window.
    pub drained_eof: u64,
}

/// A pull-based, shardable stream of work for the engine.
///
/// Implementations are driven from the reader thread; the shards they
/// build via [`FlowSource::shard`] are moved onto worker threads.
pub trait FlowSource {
    /// One unit of work in flight from the reader to a shard.
    type Item: Send;
    /// The finished unit a shard emits (what the caller's observe
    /// closure receives).
    type Out;
    /// Per-shard worker state.
    type Shard: SourceShard<Item = Self::Item, Out = Self::Out> + Send;

    /// Called once, before any [`FlowSource::fill`], with the resolved
    /// shard count. Sources whose pull order or routing depends on the
    /// shard count set it up here.
    fn prepare(&mut self, _shards: usize) {}

    /// Pull up to `max` items, appending to `out`. Returns `false` once
    /// the stream is exhausted (items may still have been appended on
    /// that final call).
    fn fill(&mut self, out: &mut Vec<Self::Item>, max: usize) -> bool;

    /// The shard owning `item`, in `0..shards` — a pure function of the
    /// item so the partition is reproducible. `None` marks the item
    /// unroutable: the reader drops it and counts it as unparsable.
    fn route(&self, index: u64, item: &Self::Item, shards: usize) -> Option<usize>;

    /// Build one shard worker.
    fn shard(&self, cfg: &EngineConfig) -> Self::Shard;

    /// The capture clock at end of stream (the running-max timestamp).
    /// Shards receive it in [`SourceShard::finish`] to split
    /// timeout-expired flows from end-of-stream drains deterministically.
    fn final_stamp(&self) -> u64 {
        0
    }

    /// True if the stream ended in a corrupt or truncated record; the
    /// items pulled before the damage were still processed.
    fn corrupt_tail(&self) -> bool {
        false
    }
}

/// Worker-side half of a [`FlowSource`]: turns routed items into emitted
/// outputs, deterministically for a fixed item sequence.
pub trait SourceShard {
    /// Mirrors [`FlowSource::Item`].
    type Item: Send;
    /// Mirrors [`FlowSource::Out`].
    type Out;

    /// Absorb one item (with its global `index`), updating `stats` and
    /// appending any outputs that became final to `emit`.
    fn absorb(
        &mut self,
        index: u64,
        item: Self::Item,
        stats: &mut ShardStats,
        emit: &mut Vec<Self::Out>,
        sm: &mut ScopeMetrics,
    );

    /// The channel closed: flush everything still buffered against the
    /// stream's final capture stamp.
    fn finish(
        &mut self,
        final_stamp: u64,
        stats: &mut ShardStats,
        emit: &mut Vec<Self::Out>,
        sm: &mut ScopeMetrics,
    );

    /// Peak buffered-state occupancy (live-flow high-water mark for
    /// table-backed shards; 0 for stateless ones).
    fn high_water(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------
// PcapSource — raw pcap bytes, parsed and assembled on the shards.
// ---------------------------------------------------------------------

/// One pcap record in flight: its own timestamp plus the capture clock
/// (running max) at the moment it was read.
pub struct PcapItem {
    /// Record timestamp (seconds).
    pub ts: u64,
    /// Capture clock: running maximum timestamp up to this record.
    pub stamp: u64,
    /// Raw IP frame bytes.
    pub frame: Vec<u8>,
}

/// [`FlowSource`] over a pcap byte stream — the engine's original diet.
///
/// The reader-side half frames records and maintains the capture clock;
/// the shard-side half ([`PcapShard`]) does the checksum-validating parse,
/// applies the inbound port filter, and assembles flows in a
/// [`FlowTable`] with streaming timeout/cap eviction.
pub struct PcapSource<R: Read> {
    reader: PcapReader<R>,
    stamp: u64,
    corrupt: bool,
    done: bool,
}

impl<R: Read> PcapSource<R> {
    /// Open a pcap stream. Fails only on a malformed global header;
    /// mid-stream corruption is reported via [`FlowSource::corrupt_tail`].
    pub fn new(input: R) -> Result<PcapSource<R>, PcapError> {
        Ok(PcapSource {
            reader: PcapReader::new(input)?,
            stamp: 0,
            corrupt: false,
            done: false,
        })
    }
}

impl<R: Read> FlowSource for PcapSource<R> {
    type Item = PcapItem;
    type Out = ClosedFlow;
    type Shard = PcapShard;

    fn fill(&mut self, out: &mut Vec<PcapItem>, max: usize) -> bool {
        while out.len() < max && !self.done {
            match self.reader.next_record() {
                Ok(Some(rec)) => {
                    let ts = u64::from(rec.ts_sec);
                    self.stamp = self.stamp.max(ts);
                    out.push(PcapItem {
                        ts,
                        stamp: self.stamp,
                        frame: rec.frame,
                    });
                }
                Ok(None) => self.done = true,
                Err(_) => {
                    // Corrupt or truncated tail: keep everything read so
                    // far, record the damage, stop reading.
                    self.corrupt = true;
                    self.done = true;
                }
            }
        }
        !self.done
    }

    fn route(&self, _index: u64, item: &PcapItem, shards: usize) -> Option<usize> {
        route_hash(&item.frame).map(|h| (h % shards as u64) as usize)
    }

    fn shard(&self, cfg: &EngineConfig) -> PcapShard {
        PcapShard {
            cfg: cfg.offline,
            table: FlowTable::new(cfg.offline, cfg.per_shard_cap()),
            closed: Vec::new(),
        }
    }

    fn final_stamp(&self) -> u64 {
        self.stamp
    }

    fn corrupt_tail(&self) -> bool {
        self.corrupt
    }
}

/// Shard worker for [`PcapSource`]: parse, filter, assemble, evict.
pub struct PcapShard {
    cfg: crate::offline::OfflineConfig,
    table: FlowTable,
    closed: Vec<ClosedFlow>,
}

impl PcapShard {
    /// Move freshly closed flows to `emit`, splitting the eviction-cause
    /// counters on the way.
    fn hand_off(&mut self, stats: &mut ShardStats, emit: &mut Vec<ClosedFlow>) {
        for cf in self.closed.drain(..) {
            match cf.cause {
                EvictionCause::Timeout => stats.evicted_timeout += 1,
                EvictionCause::CapPressure => stats.evicted_cap += 1,
                EvictionCause::EndOfCapture => stats.drained_eof += 1,
            }
            emit.push(cf);
        }
    }
}

impl SourceShard for PcapShard {
    type Item = PcapItem;
    type Out = ClosedFlow;

    fn absorb(
        &mut self,
        index: u64,
        item: PcapItem,
        stats: &mut ShardStats,
        emit: &mut Vec<ClosedFlow>,
        sm: &mut ScopeMetrics,
    ) {
        let sw = sm.start();
        let parsed = Packet::parse(&item.frame);
        sm.stop("parse", sw);
        match parsed {
            Err(_) => stats.ingest.unparsable += 1,
            Ok(pkt) => {
                if !self.cfg.server_ports.contains(&pkt.tcp.dst_port) {
                    stats.ingest.not_inbound += 1;
                } else {
                    let sw = sm.start();
                    self.table.absorb(
                        index,
                        item.ts,
                        item.stamp,
                        &pkt,
                        &mut stats.ingest,
                        &mut self.closed,
                    );
                    sm.stop("absorb_evict", sw);
                    self.hand_off(stats, emit);
                    sm.gauge_max("live_flows", self.table.live() as u64);
                }
            }
        }
    }

    fn finish(
        &mut self,
        final_stamp: u64,
        stats: &mut ShardStats,
        emit: &mut Vec<ClosedFlow>,
        sm: &mut ScopeMetrics,
    ) {
        let sw = sm.start();
        self.table.drain(final_stamp, &mut self.closed);
        sm.stop("drain", sw);
        self.hand_off(stats, emit);
        sm.gauge_max("high_water", self.table.high_water() as u64);
    }

    fn high_water(&self) -> usize {
        self.table.high_water()
    }
}

// ---------------------------------------------------------------------
// PcapMemSource — an in-memory pcap, framed zero-copy, assembled into
// columnar FlowBatches on the shards.
// ---------------------------------------------------------------------

/// One pcap record framed inside a shared in-memory capture: byte range
/// plus timestamps. The frame bytes stay in the source's buffer — the
/// reader ships 24 bytes per record instead of a heap `Vec<u8>`.
#[derive(Debug, Clone, Copy)]
pub struct PcapMemItem {
    /// Record timestamp (seconds).
    pub ts: u64,
    /// Capture clock: running maximum timestamp up to this record.
    pub stamp: u64,
    /// Byte offset of the raw IP frame inside the capture buffer.
    pub off: usize,
    /// Frame length in bytes.
    pub len: u32,
}

/// Default flow count at which a [`PcapBatchShard`] seals and emits its
/// pending [`FlowBatch`].
pub const DEFAULT_BATCH_FLOWS: usize = 512;

/// [`FlowSource`] over an in-memory pcap buffer — the columnar hot path.
///
/// Framing is zero-copy: items are byte ranges into one shared [`Bytes`]
/// buffer, shards parse borrowed [`PacketView`]s straight out of it and
/// assemble flows in a [`ColumnarFlowTable`], emitting whole
/// [`FlowBatch`]es. Record framing accepts and rejects exactly what
/// [`PcapReader`] does: a malformed global header fails construction, an
/// oversize length claim or a cut mid-header/mid-frame is a corrupt tail
/// (everything framed before it is still processed).
pub struct PcapMemSource {
    bytes: Bytes,
    pos: usize,
    stamp: u64,
    corrupt: bool,
    done: bool,
    batch_flows: usize,
}

impl PcapMemSource {
    /// Wrap a complete pcap capture held in memory, validating the global
    /// header exactly as [`PcapReader::new`] does.
    pub fn new(bytes: Bytes) -> Result<PcapMemSource, PcapError> {
        PcapReader::new(bytes.as_ref())?;
        Ok(PcapMemSource {
            bytes,
            pos: 24,
            stamp: 0,
            corrupt: false,
            done: false,
            batch_flows: DEFAULT_BATCH_FLOWS,
        })
    }

    /// Override the per-shard batch flush threshold (flows per emitted
    /// [`FlowBatch`]); clamped to at least 1.
    pub fn with_batch_flows(mut self, flows: usize) -> PcapMemSource {
        self.batch_flows = flows.max(1);
        self
    }

    /// The framed byte range of an item, as a borrowed slice.
    fn frame_of<'a>(bytes: &'a Bytes, item: &PcapMemItem) -> &'a [u8] {
        // tamperlint: allow(index) — fill() only emits items whose frame range it bounds-checked against the buffer
        &bytes[item.off..item.off + item.len as usize]
    }
}

impl FlowSource for PcapMemSource {
    type Item = PcapMemItem;
    type Out = FlowBatch;
    type Shard = PcapBatchShard;

    fn fill(&mut self, out: &mut Vec<PcapMemItem>, max: usize) -> bool {
        while out.len() < max && !self.done {
            let rem = self.bytes.len() - self.pos;
            if rem == 0 {
                self.done = true;
                break;
            }
            if rem < 16 {
                // Ragged tail: EOF inside a record header.
                self.corrupt = true;
                self.done = true;
                break;
            }
            // tamperlint: allow(index) — rem >= 16 was checked just above
            let header = &self.bytes[self.pos..self.pos + 16];
            let mut w = [0u8; 4];
            // tamperlint: allow(index) — compile-time offsets into the 16-byte header slice
            w.copy_from_slice(&header[0..4]);
            let ts = u64::from(u32::from_le_bytes(w));
            // tamperlint: allow(index) — compile-time offsets into the 16-byte header slice
            w.copy_from_slice(&header[8..12]);
            let incl_len = u32::from_le_bytes(w);
            if incl_len > SNAPLEN || (rem - 16) < incl_len as usize {
                // Oversize length claim, or EOF inside the frame body.
                self.corrupt = true;
                self.done = true;
                break;
            }
            let off = self.pos + 16;
            self.pos = off + incl_len as usize;
            self.stamp = self.stamp.max(ts);
            out.push(PcapMemItem {
                ts,
                stamp: self.stamp,
                off,
                len: incl_len,
            });
        }
        !self.done
    }

    fn route(&self, _index: u64, item: &PcapMemItem, shards: usize) -> Option<usize> {
        if shards == 1 {
            // Everything lands on the only shard; frames route_hash would
            // reject fail full parse there and count as unparsable — the
            // same field the reader charges unroutable frames to.
            return Some(0);
        }
        route_hash(PcapMemSource::frame_of(&self.bytes, item)).map(|h| (h % shards as u64) as usize)
    }

    fn shard(&self, cfg: &EngineConfig) -> PcapBatchShard {
        PcapBatchShard {
            cfg: cfg.offline,
            bytes: self.bytes.clone(),
            table: ColumnarFlowTable::new(cfg.offline, cfg.per_shard_cap()),
            pending: FlowBatch::new(),
            batch_flows: self.batch_flows,
        }
    }

    fn final_stamp(&self) -> u64 {
        self.stamp
    }

    fn corrupt_tail(&self) -> bool {
        self.corrupt
    }
}

/// Shard worker for [`PcapMemSource`]: parse borrowed views, assemble in
/// a [`ColumnarFlowTable`], emit sealed [`FlowBatch`]es.
pub struct PcapBatchShard {
    cfg: crate::offline::OfflineConfig,
    bytes: Bytes,
    table: ColumnarFlowTable,
    pending: FlowBatch,
    batch_flows: usize,
}

impl PcapBatchShard {
    /// Seal the pending batch and emit it, folding its eviction-cause
    /// counters into `stats` on the way.
    fn hand_off(
        &mut self,
        stats: &mut ShardStats,
        emit: &mut Vec<FlowBatch>,
        sm: &mut ScopeMetrics,
    ) {
        if self.pending.is_empty() {
            return;
        }
        let sw = sm.start();
        sm.gauge_max("arena_bytes", self.pending.arena_bytes() as u64);
        sm.gauge_max("batch_flows", self.pending.flow_count() as u64);
        for span in self.pending.spans() {
            match span.cause {
                EvictionCause::Timeout => stats.evicted_timeout += 1,
                EvictionCause::CapPressure => stats.evicted_cap += 1,
                EvictionCause::EndOfCapture => stats.drained_eof += 1,
            }
        }
        emit.push(std::mem::take(&mut self.pending));
        sm.stop("batch", sw);
    }
}

impl SourceShard for PcapBatchShard {
    type Item = PcapMemItem;
    type Out = FlowBatch;

    fn absorb(
        &mut self,
        index: u64,
        item: PcapMemItem,
        stats: &mut ShardStats,
        emit: &mut Vec<FlowBatch>,
        sm: &mut ScopeMetrics,
    ) {
        let frame = PcapMemSource::frame_of(&self.bytes, &item);
        let sw = sm.start();
        let parsed = PacketView::parse(frame);
        sm.stop("parse", sw);
        match parsed {
            Err(_) => stats.ingest.unparsable += 1,
            Ok(pv) => {
                if !self.cfg.server_ports.contains(&pv.dst_port) {
                    stats.ingest.not_inbound += 1;
                } else {
                    let sw = sm.start();
                    self.table.absorb(
                        index,
                        item.ts,
                        item.stamp,
                        &pv,
                        &mut stats.ingest,
                        &mut self.pending,
                    );
                    sm.stop("absorb_evict", sw);
                    sm.gauge_max("live_flows", self.table.live() as u64);
                    if self.pending.flow_count() >= self.batch_flows {
                        self.hand_off(stats, emit, sm);
                    }
                }
            }
        }
    }

    fn finish(
        &mut self,
        final_stamp: u64,
        stats: &mut ShardStats,
        emit: &mut Vec<FlowBatch>,
        sm: &mut ScopeMetrics,
    ) {
        let sw = sm.start();
        self.table.drain(final_stamp, &mut self.pending);
        sm.stop("drain", sw);
        self.hand_off(stats, emit, sm);
        sm.gauge_max("high_water", self.table.high_water() as u64);
    }

    fn high_water(&self) -> usize {
        self.table.high_water()
    }
}

/// Route a raw IP frame to a shard by hashing its 4-tuple, without a full
/// (checksum-validating) parse. Returns `None` for frames that cannot be
/// TCP/IP — every such frame would also fail [`Packet::parse`], so the
/// reader counts it as unparsable without shipping it anywhere.
pub(crate) fn route_hash(frame: &[u8]) -> Option<u64> {
    fn word(b: &[u8], at: usize) -> u64 {
        // Callers guard the frame length, but stay bounds-checked anyway:
        // a short read hashes as zero instead of panicking.
        let mut w = [0u8; 4];
        if let Some(s) = b.get(at..at + 4) {
            w.copy_from_slice(s);
        }
        u64::from(u32::from_be_bytes(w))
    }
    let first = *frame.first()?;
    match first >> 4 {
        4 => {
            // The wire parser only accepts a 20-byte header (IHL 5) and
            // protocol 6; anything else fails full parse too.
            if frame.len() < 24 || (first & 0x0f) != 5 || frame.get(9) != Some(&6) {
                return None;
            }
            let mut h = mix(0x7461_6d70_6572_0004, word(frame, 12)); // src
            h = mix(h, word(frame, 16)); // dst
            Some(mix(h, word(frame, 20))) // ports
        }
        6 => {
            if frame.len() < 44 || frame.get(6) != Some(&6) {
                return None;
            }
            let mut h = 0x7461_6d70_6572_0006;
            for off in (8..40).step_by(4) {
                h = mix(h, word(frame, off)); // src + dst
            }
            Some(mix(h, word(frame, 40))) // ports
        }
        _ => None,
    }
}

fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v)
}

// ---------------------------------------------------------------------
// RecordSource — already-assembled FlowRecords.
// ---------------------------------------------------------------------

/// [`FlowSource`] over a stream of already-assembled [`FlowRecord`]s —
/// in-memory vectors, or any decoder (e.g. a JSONL reader) driving an
/// iterator. Each record is one finished flow, so shards only account
/// and emit; routing hashes the flow 4-tuple so a fixed shard count
/// always produces the same partition.
pub struct RecordSource<I> {
    iter: I,
}

impl<I: Iterator<Item = FlowRecord>> RecordSource<I> {
    /// Wrap an iterator of flow records.
    pub fn new(iter: I) -> RecordSource<I> {
        RecordSource { iter }
    }
}

impl RecordSource<std::vec::IntoIter<FlowRecord>> {
    /// Convenience for an in-memory batch.
    pub fn from_vec(records: Vec<FlowRecord>) -> RecordSource<std::vec::IntoIter<FlowRecord>> {
        RecordSource::new(records.into_iter())
    }
}

impl<I: Iterator<Item = FlowRecord>> FlowSource for RecordSource<I> {
    type Item = FlowRecord;
    type Out = ClosedFlow;
    type Shard = RecordShard;

    fn fill(&mut self, out: &mut Vec<FlowRecord>, max: usize) -> bool {
        while out.len() < max {
            match self.iter.next() {
                Some(r) => out.push(r),
                None => return false,
            }
        }
        true
    }

    fn route(&self, _index: u64, item: &FlowRecord, shards: usize) -> Option<usize> {
        Some((flow_tuple_hash(item) % shards as u64) as usize)
    }

    fn shard(&self, _cfg: &EngineConfig) -> RecordShard {
        RecordShard
    }
}

/// Shard worker for [`RecordSource`]: counts the record and emits it as a
/// flow closed at end of stream.
pub struct RecordShard;

impl SourceShard for RecordShard {
    type Item = FlowRecord;
    type Out = ClosedFlow;

    fn absorb(
        &mut self,
        index: u64,
        item: FlowRecord,
        stats: &mut ShardStats,
        emit: &mut Vec<ClosedFlow>,
        _sm: &mut ScopeMetrics,
    ) {
        stats.ingest.flows += 1;
        stats.ingest.packets += item.packets.len() as u64;
        stats.drained_eof += 1;
        emit.push(ClosedFlow {
            flow: item,
            first_index: index,
            cause: EvictionCause::EndOfCapture,
        });
    }

    fn finish(
        &mut self,
        _final_stamp: u64,
        _stats: &mut ShardStats,
        _emit: &mut Vec<ClosedFlow>,
        _sm: &mut ScopeMetrics,
    ) {
    }
}

/// Stable 4-tuple hash for assembled records — the same role
/// [`route_hash`] plays for raw frames, over parsed addresses.
fn flow_tuple_hash(r: &FlowRecord) -> u64 {
    fn ip(h: u64, addr: &IpAddr) -> u64 {
        match addr {
            IpAddr::V4(v4) => mix(h, u64::from(u32::from_be_bytes(v4.octets()))),
            IpAddr::V6(v6) => {
                let v = u128::from_be_bytes(v6.octets());
                mix(mix(h, (v >> 64) as u64), v as u64)
            }
        }
    }
    let mut h = ip(0x7461_6d70_6572_0007, &r.client_ip);
    h = ip(h, &r.server_ip);
    mix(h, (u64::from(r.src_port) << 16) | u64::from(r.dst_port))
}

// ---------------------------------------------------------------------
// SimSource — deterministic generators (worldgen sessions).
// ---------------------------------------------------------------------

/// [`FlowSource`] over a deterministic indexed generator: item `i` is
/// just the index, and the expensive generation call runs on the shards,
/// so simulated worlds parallelize through the same engine as captures.
///
/// # Partition and order
///
/// Shard `t` owns the contiguous index chunk
/// `[t * ceil(total / shards), ...)` — exactly the partition the legacy
/// `worldgen` shard loop used — so the shard-order merge reproduces the
/// serial fold order even for order-sensitive accumulators, at any shard
/// count. To keep every shard busy despite chunked ownership, the reader
/// pulls indices interleaved across chunks (first index of each chunk,
/// then the second of each, ...); within a shard, indices still arrive
/// in ascending order.
pub struct SimSource<'g, F, O> {
    gen: &'g F,
    total: u64,
    shards: u64,
    chunk: u64,
    cursor: u64,
    _out: PhantomData<fn() -> O>,
}

impl<'g, F, O> SimSource<'g, F, O>
where
    F: Fn(u64) -> Option<O> + Sync,
    O: Send,
{
    /// A source over indices `0..total`, generating via `gen` on the
    /// shards. `gen` must be a pure function of the index (derive any
    /// randomness from it) — that is what makes the run reproducible.
    pub fn new(total: u64, gen: &'g F) -> SimSource<'g, F, O> {
        SimSource {
            gen,
            total,
            shards: 1,
            chunk: total.max(1),
            cursor: 0,
            _out: PhantomData,
        }
    }

    /// Total cursor positions: `chunk * shards`, which covers `0..total`
    /// plus the padding slots of the last (possibly short) chunk.
    fn span(&self) -> u64 {
        self.chunk.saturating_mul(self.shards)
    }
}

impl<'g, F, O> FlowSource for SimSource<'g, F, O>
where
    F: Fn(u64) -> Option<O> + Sync,
    O: Send,
{
    type Item = u64;
    type Out = O;
    type Shard = SimShard<'g, F, O>;

    fn prepare(&mut self, shards: usize) {
        self.shards = shards.max(1) as u64;
        self.chunk = self.total.div_ceil(self.shards).max(1);
        self.cursor = 0;
    }

    fn fill(&mut self, out: &mut Vec<u64>, max: usize) -> bool {
        let span = self.span();
        while out.len() < max && self.cursor < span {
            // Interleave across chunks: cursor c visits index
            // (c % shards) * chunk + c / shards.
            let i = (self.cursor % self.shards)
                .saturating_mul(self.chunk)
                .saturating_add(self.cursor / self.shards);
            self.cursor += 1;
            if i < self.total {
                out.push(i);
            }
        }
        self.cursor < span
    }

    fn route(&self, _index: u64, item: &u64, shards: usize) -> Option<usize> {
        Some(((item / self.chunk) as usize).min(shards.saturating_sub(1)))
    }

    fn shard(&self, _cfg: &EngineConfig) -> SimShard<'g, F, O> {
        SimShard {
            gen: self.gen,
            _out: PhantomData,
        }
    }
}

/// Shard worker for [`SimSource`]: runs the generator for each owned
/// index and emits whatever it produces.
pub struct SimShard<'g, F, O> {
    gen: &'g F,
    _out: PhantomData<fn() -> O>,
}

impl<'g, F, O> SourceShard for SimShard<'g, F, O>
where
    F: Fn(u64) -> Option<O> + Sync,
    O: Send,
{
    type Item = u64;
    type Out = O;

    fn absorb(
        &mut self,
        _index: u64,
        item: u64,
        stats: &mut ShardStats,
        emit: &mut Vec<O>,
        sm: &mut ScopeMetrics,
    ) {
        let sw = sm.start();
        let produced = (self.gen)(item);
        sm.stop("gen", sw);
        if let Some(out) = produced {
            stats.ingest.flows += 1;
            emit.push(out);
        }
    }

    fn finish(
        &mut self,
        _final_stamp: u64,
        _stats: &mut ShardStats,
        _emit: &mut Vec<O>,
        _sm: &mut ScopeMetrics,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};
    use tamper_wire::{PacketBuilder, TcpFlags};

    fn frame(last_octet: u8, sport: u16, flags: TcpFlags) -> Vec<u8> {
        PacketBuilder::new(
            IpAddr::V4(Ipv4Addr::new(203, 0, 113, last_octet)),
            IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
            sport,
            443,
        )
        .flags(flags)
        .seq(1)
        .payload(Bytes::from_static(b""))
        .build()
        .emit()
        .to_vec()
    }

    #[test]
    fn route_hash_is_stable_per_flow() {
        let a = frame(1, 4000, TcpFlags::SYN);
        let b = frame(1, 4000, TcpFlags::PSH_ACK);
        assert_eq!(route_hash(&a), route_hash(&b));
        assert!(route_hash(&a).is_some());
        let c = frame(2, 4000, TcpFlags::SYN);
        assert_ne!(route_hash(&a), route_hash(&c));
        assert_eq!(route_hash(&[]), None);
        assert_eq!(route_hash(&[0x12, 0x34]), None);
    }

    #[test]
    fn sim_source_walks_every_index_once_interleaved() {
        for (total, shards) in [(0u64, 3usize), (1, 4), (7, 3), (12, 4), (100, 8), (5, 1)] {
            let gen = |_i: u64| -> Option<u64> { None };
            let mut src: SimSource<'_, _, u64> = SimSource::new(total, &gen);
            src.prepare(shards);
            let mut seen = Vec::new();
            let mut buf = Vec::new();
            loop {
                buf.clear();
                let more = src.fill(&mut buf, 5);
                seen.extend(buf.iter().copied());
                if !more {
                    break;
                }
            }
            // Every index exactly once...
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..total).collect::<Vec<u64>>(), "{total}/{shards}");
            // ...routed to its contiguous chunk, ascending within a shard.
            let chunk = total.div_ceil(shards as u64).max(1);
            let mut last: Vec<Option<u64>> = vec![None; shards];
            for i in &seen {
                let t = src.route(0, i, shards).unwrap();
                assert_eq!(t, ((i / chunk) as usize).min(shards - 1));
                assert!(last[t].is_none_or(|p| p < *i), "{total}/{shards}");
                last[t] = Some(*i);
            }
        }
    }

    #[test]
    fn record_source_batches_and_exhausts() {
        let rec = |sport: u16| FlowRecord {
            client_ip: IpAddr::V4(Ipv4Addr::new(203, 0, 113, 9)),
            server_ip: IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
            src_port: sport,
            dst_port: 443,
            packets: Vec::new(),
            observation_end_sec: 0,
            truncated: false,
        };
        let mut src = RecordSource::from_vec((0..10u16).map(rec).collect());
        let mut buf = Vec::new();
        assert!(src.fill(&mut buf, 4));
        assert_eq!(buf.len(), 4);
        // Routing is per-flow stable and in range.
        for r in &buf {
            let t = src.route(0, r, 4).unwrap();
            assert!(t < 4);
            assert_eq!(src.route(9, r, 4), Some(t));
        }
        // Drain the rest the way the engine does: a cleared batch buffer
        // per round, until fill reports end-of-stream.
        let mut total = buf.len();
        loop {
            buf.clear();
            let more = src.fill(&mut buf, 4);
            total += buf.len();
            if !more {
                break;
            }
        }
        assert_eq!(total, 10);
    }
}
