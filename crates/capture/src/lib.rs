#![warn(missing_docs)]

//! # tamper-capture
//!
//! The server-side collection pipeline, reproducing the constraints of the
//! paper's deployment (§3.2): a deterministic 1-in-N connection sampler,
//! inbound-only logging, 10-packet truncation, one-second timestamp
//! quantization, and out-of-order logging — plus a classic libpcap
//! writer/reader so captures interoperate with standard tooling.

pub mod engine;
pub mod offline;
pub mod pcap;
pub mod pipeline;
pub mod record;
pub mod sampler;
pub mod source;

pub use engine::{
    run_engine, run_engine_observed, run_source, run_source_observed, EngineConfig, EngineStats,
};
pub use offline::{
    flows_from_pcap, flows_from_pcap_observed, flows_from_records, flows_from_records_observed,
    ClosedFlow, ColumnarFlowTable, EvictionCause, FlowKey, FlowKeyHasher, FlowTable, IngestStats,
    OfflineConfig,
};
pub use pcap::{write_session_trace, PcapError, PcapReader, PcapRecord, PcapWriter};
pub use pipeline::{collect, CollectorConfig};
pub use record::{
    FlowBatch, FlowCols, FlowRecord, FlowSpan, FlowTuple, PacketRecord, PacketRow, NO_IP_ID,
};
pub use sampler::Sampler;
pub use source::{
    FlowSource, PcapBatchShard, PcapItem, PcapMemItem, PcapMemSource, PcapShard, PcapSource,
    RecordShard, RecordSource, ShardStats, SimShard, SimSource, SourceShard, DEFAULT_BATCH_FLOWS,
};
