//! Human-readable explanations of classifications: a per-packet narrative
//! of the reconstructed flow and why it matched (or didn't match) a
//! signature — the operator-facing counterpart of the paper's Table 1.

use crate::classify::FlowAnalysis;
use crate::evidence::{max_rst_ipid_delta, max_rst_ttl_delta};
use crate::reorder::reordered;
use crate::signature::Classification;
use tamper_capture::FlowRecord;
use tamper_wire::tls;

/// Produce a multi-line explanation of one flow's classification.
pub fn explain(flow: &FlowRecord, analysis: &FlowAnalysis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "flow {}:{} → {}:{}\n",
        flow.client_ip, flow.src_port, flow.server_ip, flow.dst_port
    ));

    let ordered = reordered(&flow.packets);
    let t0 = ordered.first().map(|p| p.ts_sec).unwrap_or(0);
    for (i, p) in ordered.iter().enumerate() {
        let mut notes: Vec<String> = Vec::new();
        if p.flags.has_syn() && p.payload_len > 0 {
            notes.push(format!("{}-byte payload on the SYN", p.payload_len));
        } else if p.payload_len > 0 {
            if tls::is_client_hello(&p.payload) {
                match tls::parse_sni(&p.payload) {
                    Ok(Some(sni)) => notes.push(format!("TLS ClientHello, SNI \"{sni}\"")),
                    _ => notes.push("TLS ClientHello".to_owned()),
                }
            } else if tamper_wire::http::is_http_request(&p.payload) {
                if let Ok(req) = tamper_wire::http::parse_request(&p.payload) {
                    notes.push(format!(
                        "HTTP {} {} Host: {}",
                        req.method,
                        req.path,
                        req.host.as_deref().unwrap_or("-")
                    ));
                }
            } else {
                notes.push(format!("{} bytes of data", p.payload_len));
            }
        }
        if p.flags.has_rst() {
            notes.push(format!("ack={}", p.ack));
        }
        if !p.has_tcp_options {
            notes.push("no TCP options".to_owned());
        }
        let note = if notes.is_empty() {
            String::new()
        } else {
            format!("  ({})", notes.join("; "))
        };
        out.push_str(&format!(
            "  #{:<2} +{:<3}s  {:<14}{}\n",
            i + 1,
            p.ts_sec.saturating_sub(t0),
            p.flags.to_string(),
            note
        ));
    }

    // Silence tail.
    if let Some(last) = ordered.last() {
        let tail = flow.observation_end_sec.saturating_sub(last.ts_sec);
        if !flow.truncated && tail >= 3 {
            out.push_str(&format!(
                "  …   {tail}s of silence until the collector closed the flow\n"
            ));
        } else if flow.truncated {
            out.push_str("  …   record truncated at the packet limit (flow still active)\n");
        }
    }

    // Verdict.
    match analysis.classification {
        Classification::Tampered(sig) => {
            out.push_str(&format!(
                "verdict: TAMPERED — {} ({}; {})\n",
                sig.label(),
                sig.stage().label(),
                sig.description()
            ));
        }
        Classification::PossiblyTamperedOther => {
            out.push_str(
                "verdict: possibly tampered, but the packet sequence matches no Table 1 signature\n",
            );
        }
        Classification::NotTampered => {
            out.push_str("verdict: not tampered (graceful or still active)\n");
        }
    }

    // Evidence.
    if analysis.classification.signature().is_some() {
        match max_rst_ipid_delta(flow) {
            Some(d) if d > 1 => out.push_str(&format!(
                "evidence: IP-ID jumps by {d} at the reset — a different stack forged it\n"
            )),
            Some(_) => out.push_str(
                "evidence: IP-ID continuous at the reset (injection not corroborated by IP-ID)\n",
            ),
            None => {}
        }
        match max_rst_ttl_delta(flow) {
            Some(d) if d.abs() > 1 => out.push_str(&format!(
                "evidence: TTL shifts by {d} at the reset — different path or initial TTL\n"
            )),
            Some(_) => {
                out.push_str("evidence: TTL continuous at the reset\n");
            }
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, ClassifierConfig};
    use bytes::Bytes;
    use std::net::{IpAddr, Ipv4Addr};
    use tamper_capture::PacketRecord;
    use tamper_wire::TcpFlags;

    fn rec(ts: u64, flags: TcpFlags, seq: u32, ack: u32, payload: Bytes) -> PacketRecord {
        PacketRecord {
            ts_sec: ts,
            flags,
            seq,
            ack,
            ip_id: Some(100),
            ttl: 52,
            window: 65535,
            payload_len: payload.len() as u32,
            payload,
            has_tcp_options: true,
        }
    }

    fn flow(packets: Vec<PacketRecord>) -> FlowRecord {
        FlowRecord {
            client_ip: IpAddr::V4(Ipv4Addr::new(203, 0, 113, 3)),
            server_ip: IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
            src_port: 40000,
            dst_port: 443,
            packets,
            observation_end_sec: 130,
            truncated: false,
        }
    }

    #[test]
    fn gfw_style_flow_explained() {
        let hello = tamper_wire::tls::build_client_hello("blocked.example", [0u8; 32]);
        let hello_len = hello.len() as u32;
        let mut f = flow(vec![
            rec(100, TcpFlags::SYN, 1000, 0, Bytes::new()),
            rec(100, TcpFlags::ACK, 1001, 501, Bytes::new()),
            rec(100, TcpFlags::PSH_ACK, 1001, 501, hello),
            rec(100, TcpFlags::RST_ACK, 1001 + hello_len, 501, Bytes::new()),
            rec(100, TcpFlags::RST_ACK, 1001 + hello_len, 501, Bytes::new()),
        ]);
        // Forged resets: jumped IP-ID and TTL.
        f.packets[3].ip_id = Some(42_000);
        f.packets[3].ttl = 101;
        f.packets[4].ip_id = Some(43_000);
        f.packets[4].ttl = 101;
        let a = classify(&f, &ClassifierConfig::default());
        let text = explain(&f, &a);
        assert!(text.contains("SNI \"blocked.example\""));
        assert!(text.contains("TAMPERED — ⟨PSH+ACK → RST+ACK; RST+ACK⟩"));
        assert!(text.contains("IP-ID jumps by"));
        assert!(text.contains("TTL shifts by"));
    }

    #[test]
    fn silent_flow_mentions_silence() {
        let f = flow(vec![rec(100, TcpFlags::SYN, 1, 0, Bytes::new())]);
        let a = classify(&f, &ClassifierConfig::default());
        let text = explain(&f, &a);
        assert!(text.contains("30s of silence"));
        assert!(text.contains("⟨SYN → ∅⟩"));
    }

    #[test]
    fn clean_flow_verdict() {
        let f = flow(vec![
            rec(100, TcpFlags::SYN, 1, 0, Bytes::new()),
            rec(100, TcpFlags::ACK, 2, 10, Bytes::new()),
            rec(101, TcpFlags::FIN_ACK, 2, 10, Bytes::new()),
        ]);
        let a = classify(&f, &ClassifierConfig::default());
        let text = explain(&f, &a);
        assert!(text.contains("not tampered"));
    }

    #[test]
    fn truncated_flow_notes_limit() {
        let mut f = flow(
            (0..10)
                .map(|i| rec(100, TcpFlags::ACK, i, 0, Bytes::new()))
                .collect(),
        );
        f.truncated = true;
        let a = classify(&f, &ClassifierConfig::default());
        let text = explain(&f, &a);
        assert!(text.contains("truncated at the packet limit"));
    }

    #[test]
    fn http_request_line_shown() {
        let get = tamper_wire::http::build_get("host.example", "/page", "ua/1");
        let f = flow(vec![
            rec(100, TcpFlags::SYN, 1000, 0, Bytes::new()),
            rec(100, TcpFlags::ACK, 1001, 1, Bytes::new()),
            rec(100, TcpFlags::PSH_ACK, 1001, 1, get),
            rec(100, TcpFlags::RST, 2000, 0, Bytes::new()),
        ]);
        let a = classify(&f, &ClassifierConfig::default());
        let text = explain(&f, &a);
        assert!(text.contains("HTTP GET /page Host: host.example"));
    }
}
