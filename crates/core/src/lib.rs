#![warn(missing_docs)]

//! # tamper-core
//!
//! The paper's primary contribution as a library: passive detection of
//! connection tampering from server-side flow records.
//!
//! Pipeline: a [`FlowRecord`](tamper_capture::FlowRecord) (≤10 inbound
//! packets, 1-second timestamps, possibly out of order) is
//! [reordered](reorder), tested for **possibly-tampered** status (RST
//! present, or a ≥3 s inactivity gap without a FIN), matched against the
//! 19 [tampering signatures](signature::Signature) of Table 1, and
//! annotated with the [`trigger`] (SNI / Host) and
//! [injection evidence](evidence) (IP-ID / TTL discontinuities, scanner
//! fingerprints).
//!
//! The classifier sees exactly what the paper's pipeline saw — it never
//! touches simulation ground truth, which lives only in `tamper-netsim`
//! traces and is used by tests to measure precision/recall.

pub mod batch;
pub mod classify;
pub mod evidence;
pub mod explain;
pub mod machine;
pub mod reorder;
pub mod signature;
pub mod trigger;
pub mod view;

pub use batch::BatchClassifier;
pub use classify::{classify, Classifier, ClassifierConfig, FlowAnalysis};
pub use evidence::{
    is_zmap_fingerprint, max_consecutive_ipid_delta, max_consecutive_ttl_delta, max_rst_ipid_delta,
    max_rst_ttl_delta, min_consecutive_ipid_delta, scanner_marks, ScannerMarks, HIGH_TTL,
    ZMAP_IP_ID,
};
pub use explain::explain;
pub use machine::{
    classify_view, event_of, reachable_graph, stage_of, transition, Count, Event, FlowMachine,
    Input, Output, StageState,
};
pub use reorder::{
    reconstruct_order, reconstruct_order_into, reconstruct_order_view_into, reordered,
};
pub use signature::{Classification, Signature, Stage};
pub use trigger::{
    extract as extract_trigger, extract_from_parts as extract_trigger_from_parts, user_agent,
    AppProtocol, TriggerInfo,
};
pub use view::PacketsView;
