//! The classifier: from a constrained [`FlowRecord`] to a
//! [`Classification`] — possibly-tampered detection plus matching against
//! the 19 tampering signatures (paper §4.1).
//!
//! Definitions implemented here, straight from the paper:
//!
//! - a flow is **possibly tampered** if it contains a RST, or exhibits a
//!   ≥3-second inactivity gap without a FIN handshake (flows truncated at
//!   the 10-packet limit while still active are *not* flagged by their
//!   artificial tail gap);
//! - the **stage** is where the evidence lands: after a single SYN, after
//!   the handshake ACK, after the first data packet, or after multiple
//!   data packets;
//! - the **signature** within a stage is decided by the multiset of
//!   tear-down packets (bare RST vs RST+ACK, their count, and — for
//!   multi-RST bursts — the relationship between their ack numbers).

use crate::reorder::reconstruct_order_into;
use crate::signature::{Classification, Signature, Stage};
use crate::trigger::{self, TriggerInfo};
use tamper_capture::{FlowRecord, PacketRecord};

/// Classifier tuning knobs (paper defaults; ablations override).
#[derive(Debug, Clone, Copy)]
pub struct ClassifierConfig {
    /// Inactivity threshold in seconds (paper: 3).
    pub inactivity_secs: u64,
    /// When false, the single-vs-multiple RST splits are merged (ablation
    /// A4, motivated by the paper's Appendix B finding that the split has
    /// limited utility).
    pub split_rst_counts: bool,
}

impl Default for ClassifierConfig {
    fn default() -> ClassifierConfig {
        ClassifierConfig {
            inactivity_secs: 3,
            split_rst_counts: true,
        }
    }
}

/// Full analysis of one flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowAnalysis {
    /// The verdict.
    pub classification: Classification,
    /// Stage of the termination evidence, when determinable.
    pub stage: Option<Stage>,
    /// Bare RSTs observed.
    pub rst_count: usize,
    /// RST+ACKs observed.
    pub rst_ack_count: usize,
    /// Trigger domain / protocol extracted from payloads.
    pub trigger: TriggerInfo,
}

impl FlowAnalysis {
    /// Shorthand for the matched signature.
    pub fn signature(&self) -> Option<Signature> {
        self.classification.signature()
    }

    /// Shorthand for possibly-tampered status.
    pub fn is_possibly_tampered(&self) -> bool {
        self.classification.is_possibly_tampered()
    }
}

/// A reusable classifier: the configuration plus the scratch buffers the
/// feature pass needs.
///
/// [`classify`] allocates these buffers afresh on every call; hot paths —
/// the streaming engine classifies every evicted flow, one shard thread at
/// a time — construct one `Classifier` per shard and call
/// [`Classifier::classify`] so the allocations amortize across the whole
/// capture. Results are identical to the free function for any flow.
pub struct Classifier {
    cfg: ClassifierConfig,
    /// Reconstructed packet order (indices into `flow.packets`).
    order: Vec<usize>,
    /// (is_pure_rst, ack) of every RST-flagged packet, in order.
    rsts: Vec<(bool, u32)>,
    /// Positions (in reconstructed order) of unique data-bearing packets
    /// (payload > 0, not SYN), deduplicated by sequence number so
    /// retransmissions don't shift the stage.
    data_indices: Vec<usize>,
    seen_data_seqs: Vec<u32>,
    /// Positions of pure ACKs (no payload, no SYN/FIN/RST).
    pure_ack_indices: Vec<usize>,
}

/// Per-flow scalar features (everything the scratch vectors don't hold).
struct Scalars {
    syn_count: usize,
    has_fin: bool,
    fin_index: Option<usize>,
    first_rst_index: Option<usize>,
    max_gap: u64,
    tail_gap: u64,
}

impl Classifier {
    /// A classifier with empty scratch buffers.
    pub fn new(cfg: ClassifierConfig) -> Classifier {
        Classifier {
            cfg,
            order: Vec::new(),
            rsts: Vec::new(),
            data_indices: Vec::new(),
            seen_data_seqs: Vec::new(),
            pure_ack_indices: Vec::new(),
        }
    }

    /// The configuration this classifier applies.
    pub fn config(&self) -> &ClassifierConfig {
        &self.cfg
    }

    fn features(&mut self, flow: &FlowRecord) -> Scalars {
        let packets = &flow.packets;
        reconstruct_order_into(packets, &mut self.order);
        self.rsts.clear();
        self.data_indices.clear();
        self.seen_data_seqs.clear();
        self.pure_ack_indices.clear();

        let mut syn_count = 0;
        let mut has_fin = false;
        let mut fin_index = None;
        let mut first_rst_index = None;

        for (i, &pi) in self.order.iter().enumerate() {
            let p: &PacketRecord = &packets[pi];
            let f = p.flags;
            if f.has_syn() {
                syn_count += 1;
            } else if f.has_rst() {
                if first_rst_index.is_none() {
                    first_rst_index = Some(i);
                }
                self.rsts.push((f.is_pure_rst(), p.ack));
            } else if f.has_fin() {
                has_fin = true;
                if fin_index.is_none() {
                    fin_index = Some(i);
                }
            } else if p.has_payload() {
                if !self.seen_data_seqs.contains(&p.seq) {
                    self.seen_data_seqs.push(p.seq);
                    self.data_indices.push(i);
                }
            } else if f.has_ack() {
                self.pure_ack_indices.push(i);
            }
        }

        let mut max_gap = 0;
        for w in self.order.windows(2) {
            max_gap = max_gap.max(packets[w[1]].ts_sec.saturating_sub(packets[w[0]].ts_sec));
        }
        let tail_gap = if flow.truncated {
            // The record stopped because the 10-packet limit hit, not
            // because the flow went quiet; the tail says nothing.
            0
        } else {
            flow.tail_gap_after_last_packet()
        };

        Scalars {
            syn_count,
            has_fin,
            fin_index,
            first_rst_index,
            max_gap,
            tail_gap,
        }
    }
}

/// Pick the signature for a RST-terminated flow at a given stage.
/// Shared with the sans-IO [`FlowMachine`](crate::machine::FlowMachine)
/// so the two classification paths cannot drift.
pub(crate) fn rst_signature(stage: Stage, rsts: &[(bool, u32)]) -> Option<Signature> {
    // Counting passes instead of collecting the pure-RST subsequence:
    // this runs per classified flow, inside the zero-alloc analyze path.
    let n_pure = rsts.iter().filter(|(p, _)| *p).count();
    let n_ra = rsts.len() - n_pure;
    match stage {
        Stage::PostSyn => match (n_pure, n_ra) {
            (0, 0) => None,
            (_, 0) => Some(Signature::SynRst),
            (0, _) => Some(Signature::SynRstAck),
            _ => Some(Signature::SynRstBoth),
        },
        Stage::PostAck => match (n_pure, n_ra) {
            (1, 0) => Some(Signature::AckRst),
            (n, 0) if n > 1 => Some(Signature::AckRstRst),
            (0, 1) => Some(Signature::AckRstAck),
            (0, n) if n > 1 => Some(Signature::AckRstAckRstAck),
            // Mixed RST + RST+ACK post-handshake is not in Table 1.
            _ => None,
        },
        Stage::PostPsh => {
            if n_pure >= 1 && n_ra >= 1 {
                Some(Signature::PshRstRstAck)
            } else if n_ra >= 2 {
                Some(Signature::PshRstAckRstAck)
            } else if n_ra == 1 {
                Some(Signature::PshRstAck)
            } else if n_pure == 1 {
                Some(Signature::PshRst)
            } else if n_pure >= 2 {
                let mut pure = rsts.iter().filter(|(p, _)| *p).map(|&(_, a)| a);
                let first = pure.next().unwrap_or(0);
                if pure.clone().all(|a| a == first) {
                    Some(Signature::PshRstEq)
                } else if pure.any(|a| a == 0) || first == 0 {
                    Some(Signature::PshRstZero)
                } else {
                    Some(Signature::PshRstNeq)
                }
            } else {
                None
            }
        }
        Stage::PostData => {
            if rsts.is_empty() {
                None
            } else if rsts[0].0 {
                Some(Signature::DataRst)
            } else {
                Some(Signature::DataRstAck)
            }
        }
    }
}

/// The A4 ablation: collapse single/multi RST splits into the singular
/// form. Shared with the sans-IO machine.
pub(crate) fn merge_rst_counts(sig: Signature) -> Signature {
    use Signature::*;
    match sig {
        AckRstRst => AckRst,
        AckRstAckRstAck => AckRstAck,
        PshRstEq | PshRstNeq | PshRstZero => PshRst,
        PshRstAckRstAck => PshRstAck,
        s @ (SynNone | SynRst | SynRstAck | SynRstBoth | AckNone | AckRst | AckRstAck | PshNone
        | PshRst | PshRstAck | PshRstRstAck | DataRst | DataRstAck) => s,
    }
}

/// Classify one flow record.
///
/// ```
/// use tamper_capture::{FlowRecord, PacketRecord};
/// use tamper_core::{classify, ClassifierConfig, Signature};
/// use tamper_wire::TcpFlags;
///
/// let rec = |flags: TcpFlags, seq: u32| PacketRecord {
///     ts_sec: 100, flags, seq, ack: 0, ip_id: Some(1), ttl: 52,
///     window: 65535, payload_len: 0, payload: bytes::Bytes::new(),
///     has_tcp_options: true,
/// };
/// let flow = FlowRecord {
///     client_ip: "203.0.113.1".parse().unwrap(),
///     server_ip: "198.51.100.1".parse().unwrap(),
///     src_port: 40000, dst_port: 443,
///     packets: vec![rec(TcpFlags::SYN, 100), rec(TcpFlags::RST, 101)],
///     observation_end_sec: 130, truncated: false,
/// };
/// let analysis = classify(&flow, &ClassifierConfig::default());
/// assert_eq!(analysis.signature(), Some(Signature::SynRst));
/// ```
pub fn classify(flow: &FlowRecord, cfg: &ClassifierConfig) -> FlowAnalysis {
    Classifier::new(*cfg).classify(flow)
}

impl Classifier {
    /// Classify one flow record, reusing this classifier's scratch space.
    pub fn classify(&mut self, flow: &FlowRecord) -> FlowAnalysis {
        let trigger = trigger::extract(flow);
        let f = self.features(flow);
        let cfg = &self.cfg;
        let rst_count = self.rsts.iter().filter(|(p, _)| *p).count();
        let rst_ack_count = self.rsts.len() - rst_count;

        let has_rst = !self.rsts.is_empty();
        let silent =
            !f.has_fin && (f.max_gap >= cfg.inactivity_secs || f.tail_gap >= cfg.inactivity_secs);
        let possibly_tampered = has_rst || silent;

        if !possibly_tampered || self.order.is_empty() {
            return FlowAnalysis {
                classification: Classification::NotTampered,
                stage: None,
                rst_count,
                rst_ack_count,
                trigger,
            };
        }

        // Determine the stage boundary: the first RST for injection
        // evidence, or the end of the recorded packets for silence
        // evidence.
        let boundary = f.first_rst_index.unwrap_or(self.order.len());
        let data_before = self.data_indices.iter().filter(|&&i| i < boundary).count();
        let acks_before = self
            .pure_ack_indices
            .iter()
            .filter(|&&i| i < boundary)
            .count();
        let fin_before_rst = match (f.fin_index, f.first_rst_index) {
            (Some(fi), Some(ri)) => fi < ri,
            (Some(_), None) => true,
            _ => false,
        };

        // The *sequence type* (stage) is assigned even when no signature
        // will match — the paper reports per-stage shares of
        // possibly-tampered traffic and, within each stage, the fraction
        // its signatures cover (99.5% / 98.7% / 97.9% / 69.2%).
        let stage = if data_before >= 2 {
            Some(Stage::PostData)
        } else if data_before == 1 {
            Some(Stage::PostPsh)
        } else if fin_before_rst {
            // FIN with no data at all: an odd teardown; unclassifiable.
            None
        } else if acks_before == 0 {
            Some(Stage::PostSyn)
        } else if acks_before == 1 && f.syn_count == 1 {
            Some(Stage::PostAck)
        } else {
            // e.g. "a connection terminated after a SYN and two ACKs":
            // the paper's 2.3% residue.
            None
        };

        let signature = stage.and_then(|st| {
            if fin_before_rst {
                // Teardown was already under way when the RST arrived
                // (e.g. a client closing with unread data): counted in
                // its stage but matching no signature.
                return None;
            }
            if has_rst {
                if st == Stage::PostSyn && f.syn_count != 1 {
                    // Post-SYN signatures require "a single SYN".
                    return None;
                }
                rst_signature(st, &self.rsts)
            } else {
                // Silence evidence.
                match st {
                    Stage::PostSyn if f.syn_count == 1 => Some(Signature::SynNone),
                    Stage::PostSyn => None, // multiple SYNs then silence
                    Stage::PostAck => Some(Signature::AckNone),
                    // "No packets received after PSH+ACK packets" covers
                    // both single and multiple data packets.
                    Stage::PostPsh | Stage::PostData => Some(Signature::PshNone),
                }
            }
        });

        let signature = if cfg.split_rst_counts {
            signature
        } else {
            signature.map(merge_rst_counts)
        };

        FlowAnalysis {
            classification: match signature {
                Some(sig) => Classification::Tampered(sig),
                None => Classification::PossiblyTamperedOther,
            },
            stage,
            rst_count,
            rst_ack_count,
            trigger,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::net::{IpAddr, Ipv4Addr};
    use tamper_wire::TcpFlags;

    fn rec(ts: u64, flags: TcpFlags, seq: u32, ack: u32, payload_len: u32) -> PacketRecord {
        PacketRecord {
            ts_sec: ts,
            flags,
            seq,
            ack,
            ip_id: Some(1),
            ttl: 52,
            window: 65535,
            payload_len,
            payload: Bytes::from(vec![b'q'; payload_len as usize]),
            has_tcp_options: true,
        }
    }

    fn flow(packets: Vec<PacketRecord>, end: u64) -> FlowRecord {
        FlowRecord {
            client_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            server_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            src_port: 40000,
            dst_port: 443,
            packets,
            observation_end_sec: end,
            truncated: false,
        }
    }

    fn classify_default(f: &FlowRecord) -> FlowAnalysis {
        classify(f, &ClassifierConfig::default())
    }

    const SYN: TcpFlags = TcpFlags::SYN;
    const ACK: TcpFlags = TcpFlags::ACK;
    const PSH: TcpFlags = TcpFlags::PSH_ACK;
    const RST: TcpFlags = TcpFlags::RST;
    const RA: TcpFlags = TcpFlags::RST_ACK;
    const FIN: TcpFlags = TcpFlags::FIN_ACK;

    #[test]
    fn graceful_flow_not_tampered() {
        let f = flow(
            vec![
                rec(0, SYN, 100, 0, 0),
                rec(0, ACK, 101, 501, 0),
                rec(0, PSH, 101, 501, 300),
                rec(1, ACK, 401, 2000, 0),
                rec(1, FIN, 401, 2000, 0),
            ],
            30,
        );
        let a = classify_default(&f);
        assert_eq!(a.classification, Classification::NotTampered);
        assert!(!a.is_possibly_tampered());
    }

    #[test]
    fn syn_silence() {
        let f = flow(vec![rec(0, SYN, 100, 0, 0)], 30);
        let a = classify_default(&f);
        assert_eq!(a.signature(), Some(Signature::SynNone));
        assert_eq!(a.stage, Some(Stage::PostSyn));
    }

    #[test]
    fn syn_rst_variants() {
        let base = |extra: Vec<PacketRecord>| {
            let mut v = vec![rec(0, SYN, 100, 0, 0)];
            v.extend(extra);
            flow(v, 30)
        };
        let a = classify_default(&base(vec![rec(0, RST, 101, 0, 0)]));
        assert_eq!(a.signature(), Some(Signature::SynRst));
        let a = classify_default(&base(vec![rec(0, RA, 0, 101, 0)]));
        assert_eq!(a.signature(), Some(Signature::SynRstAck));
        let a = classify_default(&base(vec![rec(0, RST, 101, 0, 0), rec(0, RA, 0, 101, 0)]));
        assert_eq!(a.signature(), Some(Signature::SynRstBoth));
    }

    #[test]
    fn post_ack_variants() {
        let base = |extra: Vec<PacketRecord>| {
            let mut v = vec![rec(0, SYN, 100, 0, 0), rec(0, ACK, 101, 501, 0)];
            v.extend(extra);
            flow(v, 30)
        };
        assert_eq!(
            classify_default(&base(vec![])).signature(),
            Some(Signature::AckNone)
        );
        assert_eq!(
            classify_default(&base(vec![rec(0, RST, 101, 0, 0)])).signature(),
            Some(Signature::AckRst)
        );
        assert_eq!(
            classify_default(&base(vec![rec(0, RST, 101, 0, 0), rec(0, RST, 101, 0, 0)]))
                .signature(),
            Some(Signature::AckRstRst)
        );
        assert_eq!(
            classify_default(&base(vec![rec(0, RA, 101, 501, 0)])).signature(),
            Some(Signature::AckRstAck)
        );
        assert_eq!(
            classify_default(&base(vec![
                rec(0, RA, 101, 501, 0),
                rec(0, RA, 101, 501, 0)
            ]))
            .signature(),
            Some(Signature::AckRstAckRstAck)
        );
        // Mixed forms post-ACK are not a Table 1 signature.
        let a = classify_default(&base(vec![rec(0, RST, 101, 0, 0), rec(0, RA, 101, 501, 0)]));
        assert_eq!(a.classification, Classification::PossiblyTamperedOther);
    }

    fn psh_prefix() -> Vec<PacketRecord> {
        vec![
            rec(0, SYN, 100, 0, 0),
            rec(0, ACK, 101, 501, 0),
            rec(0, PSH, 101, 501, 250),
        ]
    }

    #[test]
    fn post_psh_variants() {
        let base = |extra: Vec<PacketRecord>| {
            let mut v = psh_prefix();
            v.extend(extra);
            flow(v, 30)
        };
        assert_eq!(
            classify_default(&base(vec![])).signature(),
            Some(Signature::PshNone)
        );
        assert_eq!(
            classify_default(&base(vec![rec(0, RST, 351, 700, 0)])).signature(),
            Some(Signature::PshRst)
        );
        assert_eq!(
            classify_default(&base(vec![rec(0, RA, 351, 700, 0)])).signature(),
            Some(Signature::PshRstAck)
        );
        assert_eq!(
            classify_default(&base(vec![
                rec(0, RST, 351, 700, 0),
                rec(0, RA, 351, 700, 0)
            ]))
            .signature(),
            Some(Signature::PshRstRstAck)
        );
        assert_eq!(
            classify_default(&base(vec![
                rec(0, RA, 351, 700, 0),
                rec(0, RA, 351, 700, 0)
            ]))
            .signature(),
            Some(Signature::PshRstAckRstAck)
        );
        // Multi bare RST with equal acks.
        assert_eq!(
            classify_default(&base(vec![
                rec(0, RST, 351, 700, 0),
                rec(0, RST, 351, 700, 0)
            ]))
            .signature(),
            Some(Signature::PshRstEq)
        );
        // Differing acks, none zero.
        assert_eq!(
            classify_default(&base(vec![
                rec(0, RST, 351, 700, 0),
                rec(0, RST, 351, 2160, 0)
            ]))
            .signature(),
            Some(Signature::PshRstNeq)
        );
        // One zero ack.
        assert_eq!(
            classify_default(&base(vec![
                rec(0, RST, 351, 700, 0),
                rec(0, RST, 351, 0, 0)
            ]))
            .signature(),
            Some(Signature::PshRstZero)
        );
    }

    #[test]
    fn post_data_variants() {
        let base = |extra: Vec<PacketRecord>| {
            let mut v = psh_prefix();
            v.push(rec(1, PSH, 351, 900, 120)); // second data packet
            v.extend(extra);
            flow(v, 30)
        };
        assert_eq!(
            classify_default(&base(vec![rec(1, RST, 471, 0, 0)])).signature(),
            Some(Signature::DataRst)
        );
        assert_eq!(
            classify_default(&base(vec![rec(1, RA, 471, 900, 0)])).signature(),
            Some(Signature::DataRstAck)
        );
        // Silence after multiple data packets folds into ⟨PSH+ACK → ∅⟩.
        assert_eq!(
            classify_default(&base(vec![])).signature(),
            Some(Signature::PshNone)
        );
    }

    #[test]
    fn fin_before_rst_is_other() {
        let mut v = psh_prefix();
        v.push(rec(1, FIN, 351, 900, 0));
        v.push(rec(1, RST, 352, 0, 0));
        let a = classify_default(&flow(v, 30));
        assert_eq!(a.classification, Classification::PossiblyTamperedOther);
    }

    #[test]
    fn two_acks_without_data_is_other() {
        let f = flow(
            vec![
                rec(0, SYN, 100, 0, 0),
                rec(0, ACK, 101, 501, 0),
                rec(1, ACK, 101, 501, 0),
            ],
            30,
        );
        let a = classify_default(&f);
        assert_eq!(a.classification, Classification::PossiblyTamperedOther);
    }

    #[test]
    fn multiple_syns_then_silence_is_other() {
        let f = flow(vec![rec(0, SYN, 100, 0, 0), rec(1, SYN, 100, 0, 0)], 30);
        let a = classify_default(&f);
        assert_eq!(a.classification, Classification::PossiblyTamperedOther);
    }

    #[test]
    fn truncated_active_flow_is_not_tampered() {
        // Ten packets of a healthy long download; no FIN recorded because
        // the record was truncated, and a huge artificial tail gap.
        let mut v = psh_prefix();
        for i in 0..7 {
            v.push(rec(1, ACK, 351, 1000 + i * 1200, 0));
        }
        let mut f = flow(v, 30);
        f.truncated = true;
        let a = classify_default(&f);
        assert_eq!(a.classification, Classification::NotTampered);
    }

    #[test]
    fn mid_flow_gap_without_fin_is_possibly_tampered() {
        let mut v = psh_prefix();
        v.push(rec(8, ACK, 351, 1000, 0)); // 8-second gap after the PSH
        let a = classify_default(&flow(v, 9));
        assert!(a.is_possibly_tampered());
    }

    #[test]
    fn inactivity_threshold_is_configurable() {
        let mut v = psh_prefix();
        v.push(rec(2, ACK, 351, 1000, 0)); // 2-second gap, then nothing; end at 4
        let f = flow(v, 4);
        let strict = classify(
            &f,
            &ClassifierConfig {
                inactivity_secs: 1,
                split_rst_counts: true,
            },
        );
        assert!(strict.is_possibly_tampered());
        let lax = classify(
            &f,
            &ClassifierConfig {
                inactivity_secs: 3,
                split_rst_counts: true,
            },
        );
        assert!(!lax.is_possibly_tampered());
    }

    #[test]
    fn merged_rst_counts_ablation() {
        let mut v = psh_prefix();
        v.push(rec(0, RST, 351, 700, 0));
        v.push(rec(0, RST, 351, 2160, 0));
        let f = flow(v, 30);
        let merged = classify(
            &f,
            &ClassifierConfig {
                inactivity_secs: 3,
                split_rst_counts: false,
            },
        );
        assert_eq!(merged.signature(), Some(Signature::PshRst));
    }

    #[test]
    fn rst_counts_reported() {
        let mut v = psh_prefix();
        v.push(rec(0, RST, 351, 700, 0));
        v.push(rec(0, RA, 351, 700, 0));
        let a = classify_default(&flow(v, 30));
        assert_eq!(a.rst_count, 1);
        assert_eq!(a.rst_ack_count, 1);
    }

    #[test]
    fn retransmitted_data_does_not_shift_stage() {
        // Same data packet logged twice (same seq): still Post-PSH.
        let mut v = psh_prefix();
        v.push(rec(1, PSH, 101, 501, 250)); // retransmission, same seq
        v.push(rec(1, RST, 351, 700, 0));
        let a = classify_default(&flow(v, 30));
        assert_eq!(a.signature(), Some(Signature::PshRst));
    }

    #[test]
    fn reused_classifier_matches_free_function() {
        // One Classifier fed a mix of flow shapes back to back must give
        // the same verdicts as a fresh classification of each — stale
        // scratch state from one flow must never leak into the next.
        let flows = vec![
            flow(vec![rec(0, SYN, 100, 0, 0), rec(0, RST, 101, 0, 0)], 30),
            flow(vec![rec(0, SYN, 100, 0, 0)], 30),
            {
                let mut v = psh_prefix();
                v.push(rec(0, RST, 351, 700, 0));
                v.push(rec(0, RA, 351, 700, 0));
                flow(v, 30)
            },
            flow(
                vec![
                    rec(0, SYN, 100, 0, 0),
                    rec(0, ACK, 101, 501, 0),
                    rec(0, TcpFlags::FIN_ACK, 101, 501, 0),
                ],
                30,
            ),
            flow(vec![], 30),
        ];
        let mut clf = Classifier::new(ClassifierConfig::default());
        for f in &flows {
            let reused = clf.classify(f);
            let fresh = classify_default(f);
            assert_eq!(reused.classification, fresh.classification);
            assert_eq!(reused.stage, fresh.stage);
            assert_eq!(reused.rst_count, fresh.rst_count);
            assert_eq!(reused.rst_ack_count, fresh.rst_ack_count);
        }
    }
}
