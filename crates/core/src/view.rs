//! The classifier's read-only window onto a flow's packets.
//!
//! Classification never needed owned [`PacketRecord`]s — only a handful
//! of scalar fields per packet plus the first payload. [`PacketsView`]
//! names exactly that surface, so one generic classification body (see
//! [`classify_view`](crate::machine::classify_view)) serves both
//! storage layouts:
//!
//! - the [`FlowMachine`](crate::machine::FlowMachine)'s arrival-order
//!   `Vec<PacketRecord>` buffer (`impl PacketsView for [PacketRecord]`),
//! - the columnar [`FlowCols`](tamper_capture::FlowCols) slices a
//!   [`FlowBatch`](tamper_capture::FlowBatch) hands to
//!   [`BatchClassifier`](crate::batch::BatchClassifier).
//!
//! Both implementations monomorphize — the indirection costs nothing —
//! and because the *same* generic body runs over both, the batch path is
//! byte-identical to the per-flow path by construction (the
//! `properties` differential suite checks it anyway).

use tamper_capture::PacketRecord;
use tamper_wire::TcpFlags;

/// Indexed, allocation-free access to the packet fields classification
/// reads. Indices are arrival order, `0..len()`.
pub trait PacketsView {
    /// Number of packets in the flow.
    fn len(&self) -> usize;

    /// True if the flow logged no packets.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capture timestamp (seconds) of packet `i`.
    fn ts_sec(&self, i: usize) -> u64;

    /// TCP flag byte of packet `i`.
    fn flags(&self, i: usize) -> TcpFlags;

    /// Sequence number of packet `i`.
    fn seq(&self, i: usize) -> u32;

    /// Acknowledgement number of packet `i`.
    fn ack(&self, i: usize) -> u32;

    /// IPv4 identification field of packet `i`; `None` for IPv6.
    fn ip_id(&self, i: usize) -> Option<u16>;

    /// TTL / hop limit of packet `i`.
    fn ttl(&self, i: usize) -> u8;

    /// Payload length of packet `i` as logged.
    fn payload_len(&self, i: usize) -> u32;

    /// Payload bytes of packet `i`.
    fn payload(&self, i: usize) -> &[u8];

    /// True if packet `i`'s TCP header carried options.
    fn has_tcp_options(&self, i: usize) -> bool;

    /// True if packet `i` carried data.
    fn has_payload(&self, i: usize) -> bool {
        self.payload_len(i) > 0
    }
}

impl PacketsView for [PacketRecord] {
    fn len(&self) -> usize {
        <[PacketRecord]>::len(self)
    }

    fn ts_sec(&self, i: usize) -> u64 {
        self[i].ts_sec
    }

    fn flags(&self, i: usize) -> TcpFlags {
        self[i].flags
    }

    fn seq(&self, i: usize) -> u32 {
        self[i].seq
    }

    fn ack(&self, i: usize) -> u32 {
        self[i].ack
    }

    fn ip_id(&self, i: usize) -> Option<u16> {
        self[i].ip_id
    }

    fn ttl(&self, i: usize) -> u8 {
        self[i].ttl
    }

    fn payload_len(&self, i: usize) -> u32 {
        self[i].payload_len
    }

    fn payload(&self, i: usize) -> &[u8] {
        &self[i].payload
    }

    fn has_tcp_options(&self, i: usize) -> bool {
        self[i].has_tcp_options
    }
}
