//! Batch classification over columnar flow storage.
//!
//! A [`FlowBatch`] packs many finished flows into shared columns; the
//! [`BatchClassifier`] walks every flow in one call, driving the same
//! generic classification body ([`classify_view`]) the per-flow
//! [`FlowMachine`](crate::machine::FlowMachine) uses — so verdicts are
//! identical by construction — while reusing one set of scratch buffers
//! across the whole batch. Warm (after the first few batches have grown
//! the scratch to steady state), classifying a batch of domain-free
//! flows performs **zero** heap requests; the `alloc_discipline` suite
//! enforces that budget.

use crate::classify::{ClassifierConfig, FlowAnalysis};
use crate::machine::classify_view;
use crate::view::PacketsView;
use tamper_capture::{FlowBatch, FlowCols};
use tamper_wire::TcpFlags;

impl PacketsView for FlowCols<'_> {
    fn len(&self) -> usize {
        FlowCols::len(self)
    }

    fn ts_sec(&self, i: usize) -> u64 {
        self.ts_sec[i]
    }

    fn flags(&self, i: usize) -> TcpFlags {
        self.flags[i]
    }

    fn seq(&self, i: usize) -> u32 {
        self.seq[i]
    }

    fn ack(&self, i: usize) -> u32 {
        self.ack[i]
    }

    fn ip_id(&self, i: usize) -> Option<u16> {
        self.ip_id_of(i)
    }

    fn ttl(&self, i: usize) -> u8 {
        self.ttl[i]
    }

    fn payload_len(&self, i: usize) -> u32 {
        self.payload_len[i]
    }

    fn payload(&self, i: usize) -> &[u8] {
        self.payload_of(i)
    }

    fn has_tcp_options(&self, i: usize) -> bool {
        self.has_tcp_options[i]
    }
}

/// Classifies whole [`FlowBatch`]es of finished flows, one column walk
/// per flow, with scratch buffers reused across flows and batches.
pub struct BatchClassifier {
    cfg: ClassifierConfig,
    order: Vec<usize>,
    rsts: Vec<(bool, u32)>,
    seen_data_seqs: Vec<u32>,
    out: Vec<FlowAnalysis>,
}

impl BatchClassifier {
    /// A classifier with the given configuration and empty scratch.
    pub fn new(cfg: ClassifierConfig) -> BatchClassifier {
        BatchClassifier {
            cfg,
            order: Vec::new(),
            rsts: Vec::new(),
            seen_data_seqs: Vec::new(),
            out: Vec::new(),
        }
    }

    /// The configuration verdicts are produced under.
    pub fn config(&self) -> &ClassifierConfig {
        &self.cfg
    }

    /// Classify flow `i` of a batch — identical output to running
    /// [`FlowMachine::analyze`](crate::machine::FlowMachine::analyze)
    /// over the materialized [`FlowRecord`](tamper_capture::FlowRecord).
    pub fn classify_span(&mut self, batch: &FlowBatch, i: usize) -> FlowAnalysis {
        let span = &batch.spans()[i];
        let tuple = batch.tuple(span);
        let cols = batch.flow_cols(i);
        classify_view(
            &self.cfg,
            tuple.dst_port,
            &cols,
            span.truncated,
            span.observation_end_sec,
            &mut self.order,
            &mut self.rsts,
            &mut self.seen_data_seqs,
        )
    }

    /// Classify every flow in the batch, in span order. The returned
    /// slice lives until the next `classify_batch` call.
    pub fn classify_batch(&mut self, batch: &FlowBatch) -> &[FlowAnalysis] {
        self.out.clear();
        for i in 0..batch.flow_count() {
            let analysis = self.classify_span(batch, i);
            self.out.push(analysis);
        }
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::FlowMachine;
    use std::net::{IpAddr, Ipv4Addr};
    use tamper_capture::{EvictionCause, FlowTuple};
    use tamper_wire::TcpFlags;

    fn tuple(sport: u16) -> FlowTuple {
        FlowTuple {
            client_ip: IpAddr::V4(Ipv4Addr::new(203, 0, 113, 7)),
            server_ip: IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
            src_port: sport,
            dst_port: 443,
        }
    }

    #[test]
    fn batch_matches_per_flow_machine() {
        let mut batch = FlowBatch::new();
        // Flow 0: SYN, data, RST.
        batch.push_packet(100, TcpFlags::SYN, 1, 0, Some(7), 64, 1024, b"", false);
        batch.push_packet(
            100,
            TcpFlags::PSH_ACK,
            2,
            900,
            Some(8),
            64,
            1024,
            b"hello",
            false,
        );
        batch.push_packet(101, TcpFlags::RST, 7, 0, Some(9), 44, 0, b"", false);
        batch.push_flow(tuple(4000), 0, 0, 131, false, EvictionCause::EndOfCapture);
        // Flow 1: empty (zero packets).
        batch.push_flow(tuple(4001), 3, 1, 131, false, EvictionCause::EndOfCapture);
        // Flow 2: single truncated SYN.
        batch.push_packet(105, TcpFlags::SYN, 9, 0, None, 32, 512, b"", true);
        batch.push_flow(tuple(4002), 3, 2, 140, true, EvictionCause::Timeout);

        let mut clf = BatchClassifier::new(ClassifierConfig::default());
        let got: Vec<FlowAnalysis> = clf.classify_batch(&batch).to_vec();
        assert_eq!(got.len(), 3);
        let mut machine = FlowMachine::new(ClassifierConfig::default());
        for (i, analysis) in got.iter().enumerate() {
            let record = batch.materialize(i);
            assert_eq!(analysis, &machine.analyze(&record), "flow {i}");
        }
    }

    #[test]
    fn scratch_is_reused_across_batches() {
        let mut clf = BatchClassifier::new(ClassifierConfig::default());
        let mut batch = FlowBatch::new();
        batch.push_packet(10, TcpFlags::SYN, 1, 0, Some(1), 64, 64, b"", false);
        batch.push_flow(tuple(5000), 0, 0, 41, false, EvictionCause::EndOfCapture);
        let first = clf.classify_batch(&batch).to_vec();
        let second = clf.classify_batch(&batch).to_vec();
        assert_eq!(first, second);
    }
}
