//! The sans-IO classification core: [`FlowMachine`].
//!
//! [`classify`](crate::classify::classify) is already a pure function of
//! a finished [`FlowRecord`], but its stage logic lives in nested
//! conditionals over scratch vectors, and its notion of "now" is a field
//! smuggled inside the record (`observation_end_sec`). This module
//! re-founds the same semantics as an explicit state machine in the
//! happy-eyeballs sans-IO style:
//!
//! ```text
//!             ┌───────────────────────────────────────────────┐
//!   Input ───►│  FlowMachine::process(input, now) -> Output   │───► Output
//!   Start     │                                               │     Continue
//!   Packet    │  buffers packets; on End reconstructs order,  │     Analysis
//!   End       │  folds Event stream through transition(),     │
//!             │  reads verdict off the terminal StageState    │
//!             └───────────────────────────────────────────────┘
//! ```
//!
//! Invariants, enforced by `tests/state_machine.rs` and tamperlint:
//!
//! - **No ambient clock.** Time enters only through the `now` argument
//!   (a [`SimTime`]); the tamperlint `clock-containment` rule covers this
//!   module like every other pipeline crate.
//! - **No allocation in `process` once warm.** All scratch buffers
//!   (packet buffer, reconstructed order, RST multiset, data-seq dedup)
//!   live in the machine and are reused across flows; `process` only
//!   appends into them.
//! - **Table-driven transitions.** The stage evidence is a tiny finite
//!   state ([`StageState`], ≤ 216 points) advanced by a pure
//!   [`transition`] function over a seven-letter [`Event`] alphabet —
//!   flat match rows, no nested conditionals. The whole reachable graph
//!   is enumerable ([`reachable_graph`]) and snapshotted as a golden
//!   fixture so an unintended transition fails review.
//! - **Replay determinism.** Same input sequence in, same output out —
//!   there is no hidden state across `Start` boundaries.
//!
//! The machine produces bit-identical [`FlowAnalysis`] values to the
//! legacy [`Classifier`](crate::classify::Classifier); the differential
//! battery replays the entire golden corpus plus proptest-generated
//! adversarial interleavings through both.

use std::net::{IpAddr, Ipv4Addr};

use crate::classify::{merge_rst_counts, rst_signature, ClassifierConfig, FlowAnalysis};
use crate::reorder::reconstruct_order_view_into;
use crate::signature::{Classification, Signature, Stage};
use crate::trigger;
use crate::view::PacketsView;
use tamper_capture::{FlowRecord, PacketRecord};
use tamper_netsim::SimTime;
use tamper_wire::TcpFlags;

/// A saturating 0 / 1 / many counter — the only multiplicities the
/// paper's stage logic ever distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Count {
    /// No occurrences.
    Zero,
    /// Exactly one occurrence.
    One,
    /// Two or more occurrences.
    Many,
}

impl Count {
    /// All values, for exhaustive enumeration.
    pub const ALL: [Count; 3] = [Count::Zero, Count::One, Count::Many];

    /// Saturating increment.
    pub const fn bump(self) -> Count {
        match self {
            Count::Zero => Count::One,
            Count::One | Count::Many => Count::Many,
        }
    }

    /// Compact label for fixtures and diagnostics.
    pub const fn label(self) -> &'static str {
        match self {
            Count::Zero => "0",
            Count::One => "1",
            Count::Many => "2+",
        }
    }
}

/// The event alphabet: what one reordered packet means to the stage
/// automaton. Classification priority matches the legacy feature pass:
/// SYN wins over RST wins over FIN wins over payload wins over pure ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Event {
    /// Any packet with SYN set (even SYN+RST: SYN has priority).
    Syn,
    /// A non-SYN packet with RST set (bare RST or RST+ACK).
    Rst,
    /// A non-SYN, non-RST packet with FIN set.
    Fin,
    /// A data-bearing packet whose sequence number was not seen before.
    NewData,
    /// A data-bearing retransmission (sequence number already seen).
    DupData,
    /// A bare ACK: no payload, no SYN/FIN/RST.
    PureAck,
    /// Anything else (e.g. a flagless keep-alive).
    Ignored,
}

impl Event {
    /// All events, for exhaustive enumeration.
    pub const ALL: [Event; 7] = [
        Event::Syn,
        Event::Rst,
        Event::Fin,
        Event::NewData,
        Event::DupData,
        Event::PureAck,
        Event::Ignored,
    ];

    /// Compact label for fixtures and diagnostics.
    pub const fn label(self) -> &'static str {
        match self {
            Event::Syn => "SYN",
            Event::Rst => "RST",
            Event::Fin => "FIN",
            Event::NewData => "DATA",
            Event::DupData => "DUP",
            Event::PureAck => "ACK",
            Event::Ignored => "IGN",
        }
    }
}

/// Classify one reordered packet into an [`Event`], deduplicating data
/// segments by sequence number through `seen_data_seqs` (caller-owned
/// scratch so the machine can reuse its allocation).
pub fn event_of(p: &PacketRecord, seen_data_seqs: &mut Vec<u32>) -> Event {
    event_of_fields(p.flags, p.seq, p.has_payload(), seen_data_seqs)
}

/// [`event_of`] for packet `i` of any storage layout.
pub fn event_of_view<V: PacketsView + ?Sized>(
    v: &V,
    i: usize,
    seen_data_seqs: &mut Vec<u32>,
) -> Event {
    event_of_fields(v.flags(i), v.seq(i), v.has_payload(i), seen_data_seqs)
}

/// The shared event-classification body.
fn event_of_fields(
    f: TcpFlags,
    seq: u32,
    has_payload: bool,
    seen_data_seqs: &mut Vec<u32>,
) -> Event {
    if f.has_syn() {
        Event::Syn
    } else if f.has_rst() {
        Event::Rst
    } else if f.has_fin() {
        Event::Fin
    } else if has_payload {
        if seen_data_seqs.contains(&seq) {
            Event::DupData
        } else {
            seen_data_seqs.push(seq);
            Event::NewData
        }
    } else if f.has_ack() {
        Event::PureAck
    } else {
        Event::Ignored
    }
}

/// The finite stage-evidence state: everything the paper's sequence-type
/// assignment needs, folded packet by packet. `rst` doubles as the
/// freeze bit — the stage counts stop at the first RST (the paper's
/// stage boundary) while `syns` and `fin_any` keep counting, exactly as
/// the legacy pass computes them over the whole flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageState {
    /// SYN packets over the whole flow (never frozen).
    pub syns: Count,
    /// Unique data packets before the stage boundary.
    pub data: Count,
    /// Pure ACKs before the stage boundary.
    pub acks: Count,
    /// A FIN arrived before the first RST (or any FIN, if no RST).
    pub fin_before: bool,
    /// A FIN arrived anywhere in the flow (silence exemption).
    pub fin_any: bool,
    /// A RST arrived: the stage counts are frozen.
    pub rst: bool,
}

impl StageState {
    /// The initial state: nothing observed.
    pub const START: StageState = StageState {
        syns: Count::Zero,
        data: Count::Zero,
        acks: Count::Zero,
        fin_before: false,
        fin_any: false,
        rst: false,
    };

    /// Compact, stable label for the golden reachable-graph fixture.
    pub fn label(&self) -> String {
        format!(
            "syn={} data={} ack={} finpre={} fin={} rst={}",
            self.syns.label(),
            self.data.label(),
            self.acks.label(),
            if self.fin_before { "y" } else { "n" },
            if self.fin_any { "y" } else { "n" },
            if self.rst { "y" } else { "n" },
        )
    }
}

/// The transition table: one flat row per event, no nested conditionals.
/// Pure — exhaustively enumerable, property-testable, and total.
pub const fn transition(s: StageState, ev: Event) -> StageState {
    match (ev, s.rst) {
        (Event::Syn, _) => StageState {
            syns: s.syns.bump(),
            ..s
        },
        (Event::Rst, _) => StageState { rst: true, ..s },
        (Event::Fin, false) => StageState {
            fin_before: true,
            fin_any: true,
            ..s
        },
        (Event::Fin, true) => StageState { fin_any: true, ..s },
        (Event::NewData, false) => StageState {
            data: s.data.bump(),
            ..s
        },
        (Event::PureAck, false) => StageState {
            acks: s.acks.bump(),
            ..s
        },
        (Event::NewData | Event::PureAck, true) => s,
        (Event::DupData | Event::Ignored, _) => s,
    }
}

/// The sequence type (stage) read off a terminal state — the flat-match
/// twin of the legacy nested-conditional ladder.
pub const fn stage_of(s: StageState) -> Option<Stage> {
    match (s.data, s.fin_before, s.acks, s.syns) {
        (Count::Many, _, _, _) => Some(Stage::PostData),
        (Count::One, _, _, _) => Some(Stage::PostPsh),
        (Count::Zero, true, _, _) => None,
        (Count::Zero, false, Count::Zero, _) => Some(Stage::PostSyn),
        (Count::Zero, false, Count::One, Count::One) => Some(Stage::PostAck),
        _ => None,
    }
}

/// Breadth-first closure of [`transition`] from [`StageState::START`]:
/// every reachable `(state, event, successor)` edge, sorted. The golden
/// fixture `tests/fixtures/state_graph.golden.txt` snapshots this graph
/// so any change to the transition table is visible in review.
pub fn reachable_graph() -> Vec<(StageState, Event, StageState)> {
    let mut frontier = vec![StageState::START];
    let mut seen = vec![StageState::START];
    let mut edges = Vec::new();
    while let Some(s) = frontier.pop() {
        for ev in Event::ALL {
            let next = transition(s, ev);
            edges.push((s, ev, next));
            if !seen.contains(&next) {
                seen.push(next);
                frontier.push(next);
            }
        }
    }
    edges.sort();
    edges.dedup();
    edges
}

/// One input to the [`FlowMachine`]. Events are owned: the machine takes
/// custody of each packet record, so callers never hold references across
/// `process` calls.
#[derive(Debug, Clone)]
pub enum Input {
    /// A new flow begins. Resets all per-flow state.
    Start {
        /// Client (initiator) address.
        client_ip: IpAddr,
        /// Server (responder) address.
        server_ip: IpAddr,
        /// Client port.
        src_port: u16,
        /// Server port.
        dst_port: u16,
    },
    /// One captured packet of the current flow, in arrival order.
    Packet(PacketRecord),
    /// The flow is over (evicted, timed out, or capture ended): produce
    /// the verdict. `truncated` flags flows cut by the packet cap, whose
    /// artificial tail silence must not count as evidence.
    End {
        /// The record hit the per-flow packet cap while still active.
        truncated: bool,
    },
}

/// What one `process` step yields.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// The machine absorbed the input; feed it more.
    Continue,
    /// Terminal verdict for the flow that just ended.
    Analysis(FlowAnalysis),
}

/// The sans-IO per-flow classifier. See the module docs for the
/// invariants; see [`Classifier`](crate::classify::Classifier) for the
/// legacy equivalent it is differentially tested against.
pub struct FlowMachine {
    cfg: ClassifierConfig,
    client_ip: IpAddr,
    server_ip: IpAddr,
    src_port: u16,
    dst_port: u16,
    /// Packet buffer in arrival order (reused across flows).
    packets: Vec<PacketRecord>,
    /// Reconstructed packet order (indices into `packets`).
    order: Vec<usize>,
    /// (is_pure_rst, ack) of every RST event, in reconstructed order.
    rsts: Vec<(bool, u32)>,
    /// Data-segment dedup scratch.
    seen_data_seqs: Vec<u32>,
}

impl FlowMachine {
    /// A machine with empty scratch buffers.
    pub fn new(cfg: ClassifierConfig) -> FlowMachine {
        FlowMachine {
            cfg,
            client_ip: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
            server_ip: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
            src_port: 0,
            dst_port: 0,
            packets: Vec::new(),
            order: Vec::new(),
            rsts: Vec::new(),
            seen_data_seqs: Vec::new(),
        }
    }

    /// The configuration this machine applies.
    pub fn config(&self) -> &ClassifierConfig {
        &self.cfg
    }

    /// The 4-tuple of the flow currently in progress.
    pub fn flow_tuple(&self) -> (IpAddr, IpAddr, u16, u16) {
        (self.client_ip, self.server_ip, self.src_port, self.dst_port)
    }

    /// Advance the machine by one input. Allocation-free once the scratch
    /// buffers are warm (buffer pushes reuse capacity released by the
    /// previous flow); the only allocations on the `End` path are inside
    /// the returned analysis (the extracted trigger domain).
    pub fn process(&mut self, input: Input, now: SimTime) -> Output {
        match input {
            Input::Start {
                client_ip,
                server_ip,
                src_port,
                dst_port,
            } => {
                self.client_ip = client_ip;
                self.server_ip = server_ip;
                self.src_port = src_port;
                self.dst_port = dst_port;
                self.packets.clear();
                Output::Continue
            }
            Input::Packet(p) => {
                self.packets.push(p);
                Output::Continue
            }
            Input::End { truncated } => Output::Analysis(self.finish(truncated, now)),
        }
    }

    /// Convenience driver: replay a finished [`FlowRecord`] through the
    /// machine. Equivalent to `Start`, one `Packet` per record, then
    /// `End` at the record's observation horizon.
    pub fn analyze(&mut self, flow: &FlowRecord) -> FlowAnalysis {
        self.process(
            Input::Start {
                client_ip: flow.client_ip,
                server_ip: flow.server_ip,
                src_port: flow.src_port,
                dst_port: flow.dst_port,
            },
            SimTime::ZERO,
        );
        for p in &flow.packets {
            // Second-granularity capture timestamps saturate into the
            // nanosecond SimTime domain.
            let at = SimTime(p.ts_sec.saturating_mul(1_000_000_000));
            self.process(Input::Packet(p.clone()), at);
        }
        let end = SimTime(flow.observation_end_sec.saturating_mul(1_000_000_000));
        match self.process(
            Input::End {
                truncated: flow.truncated,
            },
            end,
        ) {
            Output::Analysis(a) => a,
            Output::Continue => unreachable!("End always yields an analysis"),
        }
    }

    /// Terminal step: reconstruct order, fold the event stream through
    /// the transition table, and read the verdict off the final state.
    fn finish(&mut self, truncated: bool, now: SimTime) -> FlowAnalysis {
        classify_view(
            &self.cfg,
            self.dst_port,
            self.packets.as_slice(),
            truncated,
            now.as_secs(),
            &mut self.order,
            &mut self.rsts,
            &mut self.seen_data_seqs,
        )
    }
}

/// The one classification body, generic over packet storage.
///
/// Both terminal paths end here: [`FlowMachine::process`] on `Input::End`
/// with its arrival-order `Vec<PacketRecord>` buffer, and
/// [`BatchClassifier`](crate::batch::BatchClassifier) with the column
/// slices of each finished flow in a batch — so the two produce
/// bit-identical [`FlowAnalysis`] values by construction. The caller
/// owns the three scratch buffers (reconstructed order, RST multiset,
/// data-seq dedup); once they are warm no packet count inside the
/// corpus' high-water marks allocates.
#[allow(clippy::too_many_arguments)]
pub fn classify_view<V: PacketsView + ?Sized>(
    cfg: &ClassifierConfig,
    dst_port: u16,
    v: &V,
    truncated: bool,
    observation_end_sec: u64,
    order: &mut Vec<usize>,
    rsts: &mut Vec<(bool, u32)>,
    seen_data_seqs: &mut Vec<u32>,
) -> FlowAnalysis {
    let trigger = trigger::extract_from_view(dst_port, v);
    reconstruct_order_view_into(v, order);
    rsts.clear();
    seen_data_seqs.clear();

    let mut state = StageState::START;
    let mut max_gap = 0u64;
    let mut prev_ts = None;
    for &pi in order.iter() {
        let ts = v.ts_sec(pi);
        if let Some(prev) = prev_ts {
            max_gap = max_gap.max(ts.saturating_sub(prev));
        }
        prev_ts = Some(ts);
        let ev = event_of_view(v, pi, seen_data_seqs);
        if ev == Event::Rst {
            rsts.push((v.flags(pi).is_pure_rst(), v.ack(pi)));
        }
        state = transition(state, ev);
    }

    let tail_gap = if truncated {
        // The record stopped because the packet cap hit, not because
        // the flow went quiet; the tail says nothing.
        0
    } else {
        (0..v.len())
            .map(|i| v.ts_sec(i))
            .max()
            .map(|last| observation_end_sec.saturating_sub(last))
            .unwrap_or(0)
    };

    let rst_count = rsts.iter().filter(|(pure, _)| *pure).count();
    let rst_ack_count = rsts.len() - rst_count;
    let silent =
        !state.fin_any && (max_gap >= cfg.inactivity_secs || tail_gap >= cfg.inactivity_secs);
    let possibly_tampered = state.rst || silent;

    if !possibly_tampered || order.is_empty() {
        return FlowAnalysis {
            classification: Classification::NotTampered,
            stage: None,
            rst_count,
            rst_ack_count,
            trigger,
        };
    }

    let stage = stage_of(state);
    let signature = stage.and_then(|st| {
        if state.fin_before {
            // Teardown was already under way when the evidence
            // arrived: counted in its stage, matching no signature.
            return None;
        }
        if state.rst {
            if st == Stage::PostSyn && state.syns != Count::One {
                // Post-SYN signatures require "a single SYN".
                return None;
            }
            rst_signature(st, rsts)
        } else {
            match st {
                Stage::PostSyn if state.syns == Count::One => Some(Signature::SynNone),
                Stage::PostSyn => None, // multiple SYNs then silence
                Stage::PostAck => Some(Signature::AckNone),
                Stage::PostPsh | Stage::PostData => Some(Signature::PshNone),
            }
        }
    });
    let signature = if cfg.split_rst_counts {
        signature
    } else {
        signature.map(merge_rst_counts)
    };

    FlowAnalysis {
        classification: match signature {
            Some(sig) => Classification::Tampered(sig),
            None => Classification::PossiblyTamperedOther,
        },
        stage,
        rst_count,
        rst_ack_count,
        trigger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use bytes::Bytes;
    use tamper_wire::TcpFlags;

    fn rec(ts: u64, flags: TcpFlags, seq: u32, ack: u32, payload_len: u32) -> PacketRecord {
        PacketRecord {
            ts_sec: ts,
            flags,
            seq,
            ack,
            ip_id: Some(1),
            ttl: 52,
            window: 65535,
            payload_len,
            payload: Bytes::from(vec![b'q'; payload_len as usize]),
            has_tcp_options: true,
        }
    }

    fn flow(packets: Vec<PacketRecord>, end: u64, truncated: bool) -> FlowRecord {
        FlowRecord {
            client_ip: "203.0.113.9".parse().unwrap(),
            server_ip: "198.51.100.1".parse().unwrap(),
            src_port: 40000,
            dst_port: 443,
            packets,
            observation_end_sec: end,
            truncated,
        }
    }

    #[test]
    fn transition_table_freezes_stage_counts_at_first_rst() {
        let mut s = StageState::START;
        s = transition(s, Event::Syn);
        s = transition(s, Event::PureAck);
        s = transition(s, Event::Rst);
        let frozen = s;
        assert_eq!(transition(s, Event::NewData), frozen);
        assert_eq!(transition(s, Event::PureAck), frozen);
        // SYNs and FIN-anywhere keep counting.
        assert_eq!(transition(s, Event::Syn).syns, Count::Many);
        assert!(transition(s, Event::Fin).fin_any);
        assert!(!transition(s, Event::Fin).fin_before);
    }

    #[test]
    fn stage_table_matches_the_paper_ladder() {
        let post_ack = StageState {
            syns: Count::One,
            acks: Count::One,
            ..StageState::START
        };
        assert_eq!(stage_of(post_ack), Some(Stage::PostAck));
        assert_eq!(stage_of(StageState::START), Some(Stage::PostSyn));
        let two_acks = StageState {
            acks: Count::Many,
            ..post_ack
        };
        assert_eq!(stage_of(two_acks), None);
        let fin_first = StageState {
            fin_before: true,
            fin_any: true,
            ..StageState::START
        };
        assert_eq!(stage_of(fin_first), None);
        let data = StageState {
            data: Count::One,
            ..fin_first
        };
        assert_eq!(stage_of(data), Some(Stage::PostPsh));
    }

    #[test]
    fn machine_matches_legacy_on_a_handful_of_shapes() {
        let cfg = ClassifierConfig::default();
        let flows = [
            flow(vec![rec(100, TcpFlags::SYN, 100, 0, 0)], 130, false),
            flow(
                vec![
                    rec(100, TcpFlags::SYN, 100, 0, 0),
                    rec(100, TcpFlags::RST_ACK, 101, 101, 0),
                ],
                130,
                false,
            ),
            flow(
                vec![
                    rec(100, TcpFlags::SYN, 100, 0, 0),
                    rec(100, TcpFlags::ACK, 101, 501, 0),
                    rec(101, TcpFlags::PSH_ACK, 101, 501, 5),
                    rec(101, TcpFlags::RST, 106, 0, 0),
                    rec(101, TcpFlags::RST, 106, 700, 0),
                ],
                130,
                false,
            ),
            flow(Vec::new(), 130, false),
        ];
        let mut m = FlowMachine::new(cfg);
        for f in &flows {
            assert_eq!(m.analyze(f), classify(f, &cfg));
        }
    }

    #[test]
    fn reachable_graph_is_closed_and_deterministic() {
        let a = reachable_graph();
        let b = reachable_graph();
        assert_eq!(a, b);
        // Closure: every successor also appears as a source.
        for &(_, _, next) in &a {
            assert!(a.iter().any(|&(s, _, _)| s == next));
        }
        // Every reachable state has exactly one row per event.
        let states: std::collections::BTreeSet<_> = a.iter().map(|&(s, _, _)| s).collect();
        assert_eq!(a.len(), states.len() * Event::ALL.len());
    }
}
