//! Injection evidence (paper §4.2–4.3): header-field discontinuities that
//! betray a forged packet, and scanner fingerprints that explain benign
//! matches.
//!
//! Clients produce IP-ID and TTL values that move slowly (deltas of 0 or 1
//! between consecutive packets of a flow); a middlebox forging a RST uses
//! its own stack, so the forged packet's IP-ID and TTL usually jump.

use crate::reorder::reconstruct_order_view_into;
use crate::view::PacketsView;
use tamper_capture::FlowRecord;

/// The ZMap scanner's famous fixed IP-ID.
pub const ZMAP_IP_ID: u16 = 54321;
/// TTLs at or above this are "high" per the scanner heuristics of
/// Hiesgen et al. (paper §4.2).
pub const HIGH_TTL: u8 = 200;

/// Absolute difference between two IP-IDs (no wrap folding: the paper
/// plots plain absolute change, with the x-axis running to 65535).
fn ipid_delta(a: u16, b: u16) -> u32 {
    (i32::from(a) - i32::from(b)).unsigned_abs()
}

/// Maximum absolute IP-ID change between each RST-flagged packet and the
/// nearest preceding non-RST packet. `None` if the flow has no RSTs, no
/// IPv4 IP-IDs, or no preceding packet.
pub fn max_rst_ipid_delta(flow: &FlowRecord) -> Option<u32> {
    max_rst_ipid_delta_view(flow.packets.as_slice())
}

/// [`max_rst_ipid_delta`] over any packet storage layout.
pub fn max_rst_ipid_delta_view<V: PacketsView + ?Sized>(v: &V) -> Option<u32> {
    let mut order = Vec::new();
    reconstruct_order_view_into(v, &mut order);
    let mut last_non_rst: Option<u16> = None;
    let mut max: Option<u32> = None;
    for &i in &order {
        if v.flags(i).has_rst() {
            if let (Some(prev), Some(cur)) = (last_non_rst, v.ip_id(i)) {
                let d = ipid_delta(cur, prev);
                max = Some(max.map_or(d, |m: u32| m.max(d)));
            }
        } else if let Some(id) = v.ip_id(i) {
            last_non_rst = Some(id);
        }
    }
    max
}

/// Maximum absolute IP-ID change between consecutive packets — the
/// baseline ("Not Tampering") statistic.
pub fn max_consecutive_ipid_delta(flow: &FlowRecord) -> Option<u32> {
    max_consecutive_ipid_delta_view(flow.packets.as_slice())
}

/// [`max_consecutive_ipid_delta`] over any packet storage layout.
pub fn max_consecutive_ipid_delta_view<V: PacketsView + ?Sized>(v: &V) -> Option<u32> {
    consecutive_ipid_deltas(v).1
}

/// Minimum absolute IP-ID change between consecutive packets — used for
/// the paper's sanity check that ≥93% of connections have a minimum delta
/// of 0 or 1.
pub fn min_consecutive_ipid_delta(flow: &FlowRecord) -> Option<u32> {
    min_consecutive_ipid_delta_view(flow.packets.as_slice())
}

/// [`min_consecutive_ipid_delta`] over any packet storage layout.
pub fn min_consecutive_ipid_delta_view<V: PacketsView + ?Sized>(v: &V) -> Option<u32> {
    consecutive_ipid_deltas(v).0
}

/// (min, max) absolute IP-ID delta over consecutive IPv4 packets in
/// reconstructed order (IPv6 packets in between are skipped, matching the
/// filtered-window semantics of the per-record path).
fn consecutive_ipid_deltas<V: PacketsView + ?Sized>(v: &V) -> (Option<u32>, Option<u32>) {
    let mut order = Vec::new();
    reconstruct_order_view_into(v, &mut order);
    let mut prev: Option<u16> = None;
    let mut min: Option<u32> = None;
    let mut max: Option<u32> = None;
    for &i in &order {
        if let Some(id) = v.ip_id(i) {
            if let Some(p) = prev {
                let d = ipid_delta(id, p);
                min = Some(min.map_or(d, |m: u32| m.min(d)));
                max = Some(max.map_or(d, |m: u32| m.max(d)));
            }
            prev = Some(id);
        }
    }
    (min, max)
}

/// Signed TTL change between each RST packet and the nearest preceding
/// non-RST packet; returns the change with the largest magnitude
/// (Figure 3 plots signed changes in −255..255).
pub fn max_rst_ttl_delta(flow: &FlowRecord) -> Option<i16> {
    max_rst_ttl_delta_view(flow.packets.as_slice())
}

/// [`max_rst_ttl_delta`] over any packet storage layout.
pub fn max_rst_ttl_delta_view<V: PacketsView + ?Sized>(v: &V) -> Option<i16> {
    let mut order = Vec::new();
    reconstruct_order_view_into(v, &mut order);
    let mut last_non_rst: Option<u8> = None;
    let mut max: Option<i16> = None;
    for &i in &order {
        if v.flags(i).has_rst() {
            if let Some(prev) = last_non_rst {
                let d = i16::from(v.ttl(i)) - i16::from(prev);
                max = Some(match max {
                    Some(m) if m.abs() >= d.abs() => m,
                    _ => d,
                });
            }
        } else {
            last_non_rst = Some(v.ttl(i));
        }
    }
    max
}

/// Signed TTL change of largest magnitude between consecutive packets —
/// baseline statistic.
pub fn max_consecutive_ttl_delta(flow: &FlowRecord) -> Option<i16> {
    max_consecutive_ttl_delta_view(flow.packets.as_slice())
}

/// [`max_consecutive_ttl_delta`] over any packet storage layout.
pub fn max_consecutive_ttl_delta_view<V: PacketsView + ?Sized>(v: &V) -> Option<i16> {
    let mut order = Vec::new();
    reconstruct_order_view_into(v, &mut order);
    let mut max: Option<i16> = None;
    for w in order.windows(2) {
        let d = i16::from(v.ttl(w[1])) - i16::from(v.ttl(w[0]));
        max = Some(match max {
            Some(m) if m.abs() >= d.abs() => m,
            _ => d,
        });
    }
    max
}

/// The three scanner properties of Hiesgen et al. evaluated in §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScannerMarks {
    /// Every packet lacked TCP options (vacuously false on an empty flow).
    pub no_tcp_options: bool,
    /// Some packet carried a TTL ≥ 200.
    pub high_ttl: bool,
    /// At least two IPv4 packets shared one fixed, nonzero IP-ID.
    pub fixed_nonzero_ipid: bool,
}

/// Evaluate the scanner heuristics on a flow.
///
/// Both universally quantified marks need enough packets to mean
/// anything: `all()` over zero packets is vacuously true, and a single
/// IP-ID is trivially "fixed" — neither says scanner, so both marks
/// require the evidence to actually exist (≥1 packet for the options
/// mark, ≥2 IP-IDs for the fixed-IP-ID mark).
pub fn scanner_marks(flow: &FlowRecord) -> ScannerMarks {
    scanner_marks_view(flow.packets.as_slice())
}

/// [`scanner_marks`] over any packet storage layout.
pub fn scanner_marks_view<V: PacketsView + ?Sized>(v: &V) -> ScannerMarks {
    let no_tcp_options = !v.is_empty() && (0..v.len()).all(|i| !v.has_tcp_options(i));
    let high_ttl = (0..v.len()).any(|i| v.ttl(i) >= HIGH_TTL);
    let mut first_id: Option<u16> = None;
    let mut id_count = 0usize;
    let mut all_equal = true;
    for i in 0..v.len() {
        if let Some(id) = v.ip_id(i) {
            id_count += 1;
            match first_id {
                None => first_id = Some(id),
                Some(f) => all_equal &= id == f,
            }
        }
    }
    let fixed_nonzero_ipid = id_count >= 2 && first_id.is_some_and(|f| f != 0) && all_equal;
    ScannerMarks {
        no_tcp_options,
        high_ttl,
        fixed_nonzero_ipid,
    }
}

/// True if the flow's initial SYN carries the ZMap fingerprint: IP-ID
/// 54321 with an option-less TCP header (§4.2).
pub fn is_zmap_fingerprint(flow: &FlowRecord) -> bool {
    is_zmap_fingerprint_view(flow.packets.as_slice())
}

/// [`is_zmap_fingerprint`] over any packet storage layout.
pub fn is_zmap_fingerprint_view<V: PacketsView + ?Sized>(v: &V) -> bool {
    (0..v.len())
        .find(|&i| v.flags(i).has_syn())
        .is_some_and(|i| v.ip_id(i) == Some(ZMAP_IP_ID) && !v.has_tcp_options(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::net::{IpAddr, Ipv4Addr};
    use tamper_capture::PacketRecord;
    use tamper_wire::TcpFlags;

    fn rec(
        ts: u64,
        flags: TcpFlags,
        seq: u32,
        ip_id: Option<u16>,
        ttl: u8,
        opts: bool,
    ) -> PacketRecord {
        PacketRecord {
            ts_sec: ts,
            flags,
            seq,
            ack: 0,
            ip_id,
            ttl,
            window: 65535,
            payload_len: 0,
            payload: Bytes::new(),
            has_tcp_options: opts,
        }
    }

    fn flow(packets: Vec<PacketRecord>) -> FlowRecord {
        FlowRecord {
            client_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            server_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            src_port: 1,
            dst_port: 443,
            packets,
            observation_end_sec: 60,
            truncated: false,
        }
    }

    #[test]
    fn injected_rst_shows_large_ipid_jump() {
        let f = flow(vec![
            rec(0, TcpFlags::SYN, 100, Some(1000), 52, true),
            rec(0, TcpFlags::ACK, 101, Some(1001), 52, true),
            rec(0, TcpFlags::RST, 101, Some(48000), 101, false),
        ]);
        assert_eq!(max_rst_ipid_delta(&f), Some(46999));
        assert_eq!(max_rst_ttl_delta(&f), Some(49));
    }

    #[test]
    fn client_rst_shows_small_deltas() {
        let f = flow(vec![
            rec(0, TcpFlags::SYN, 100, Some(7), 52, true),
            rec(0, TcpFlags::ACK, 101, Some(8), 52, true),
            rec(0, TcpFlags::RST, 101, Some(9), 52, true),
        ]);
        assert_eq!(max_rst_ipid_delta(&f), Some(1));
        assert_eq!(max_rst_ttl_delta(&f), Some(0));
    }

    #[test]
    fn baseline_deltas() {
        let f = flow(vec![
            rec(0, TcpFlags::SYN, 100, Some(10), 52, true),
            rec(0, TcpFlags::ACK, 101, Some(11), 52, true),
            rec(1, TcpFlags::ACK, 101, Some(13), 52, true),
        ]);
        assert_eq!(max_consecutive_ipid_delta(&f), Some(2));
        assert_eq!(min_consecutive_ipid_delta(&f), Some(1));
        assert_eq!(max_consecutive_ttl_delta(&f), Some(0));
    }

    #[test]
    fn no_rst_no_rst_delta() {
        let f = flow(vec![rec(0, TcpFlags::SYN, 100, Some(10), 52, true)]);
        assert_eq!(max_rst_ipid_delta(&f), None);
        assert_eq!(max_rst_ttl_delta(&f), None);
        assert_eq!(max_consecutive_ipid_delta(&f), None);
    }

    #[test]
    fn ipv6_flow_has_no_ipid_evidence() {
        let f = flow(vec![
            rec(0, TcpFlags::SYN, 100, None, 52, true),
            rec(0, TcpFlags::RST, 101, None, 101, true),
        ]);
        assert_eq!(max_rst_ipid_delta(&f), None);
        // TTL evidence still works on IPv6 (hop limit).
        assert_eq!(max_rst_ttl_delta(&f), Some(49));
    }

    #[test]
    fn negative_ttl_delta_kept_signed() {
        let f = flow(vec![
            rec(0, TcpFlags::SYN, 100, Some(1), 120, true),
            rec(0, TcpFlags::RST, 101, Some(2), 40, true),
        ]);
        assert_eq!(max_rst_ttl_delta(&f), Some(-80));
    }

    #[test]
    fn zmap_fingerprint_detection() {
        let z = flow(vec![
            rec(0, TcpFlags::SYN, 1, Some(ZMAP_IP_ID), 255, false),
            rec(0, TcpFlags::RST, 2, Some(ZMAP_IP_ID), 255, false),
        ]);
        assert!(is_zmap_fingerprint(&z));
        let marks = scanner_marks(&z);
        assert!(marks.no_tcp_options);
        assert!(marks.high_ttl);
        assert!(marks.fixed_nonzero_ipid);

        let normal = flow(vec![rec(0, TcpFlags::SYN, 1, Some(100), 52, true)]);
        assert!(!is_zmap_fingerprint(&normal));
        let m = scanner_marks(&normal);
        assert!(!m.no_tcp_options);
        assert!(!m.high_ttl);
        // A single packet can't establish a *fixed* IP-ID.
        assert!(!m.fixed_nonzero_ipid);
    }

    #[test]
    fn degenerate_flows_carry_no_scanner_marks() {
        // Zero packets: `all(no options)` would be vacuously true.
        let empty = flow(vec![]);
        let m = scanner_marks(&empty);
        assert!(!m.no_tcp_options);
        assert!(!m.high_ttl);
        assert!(!m.fixed_nonzero_ipid);

        // One packet: a lone IP-ID is trivially "fixed" — not evidence.
        let single = flow(vec![rec(0, TcpFlags::SYN, 1, Some(ZMAP_IP_ID), 255, false)]);
        let m = scanner_marks(&single);
        assert!(m.no_tcp_options, "one option-less packet is real evidence");
        assert!(m.high_ttl);
        assert!(!m.fixed_nonzero_ipid);

        // Two packets sharing a nonzero IP-ID: the mark is back.
        let double = flow(vec![
            rec(0, TcpFlags::SYN, 1, Some(ZMAP_IP_ID), 255, false),
            rec(0, TcpFlags::RST, 2, Some(ZMAP_IP_ID), 255, false),
        ]);
        assert!(scanner_marks(&double).fixed_nonzero_ipid);
    }

    #[test]
    fn zero_ipid_not_flagged_as_fixed() {
        let f = flow(vec![
            rec(0, TcpFlags::SYN, 1, Some(0), 52, true),
            rec(0, TcpFlags::ACK, 2, Some(0), 52, true),
        ]);
        assert!(!scanner_marks(&f).fixed_nonzero_ipid);
    }
}
