//! The tampering-signature taxonomy (the paper's Table 1).
//!
//! A signature `⟨X → Y⟩` names the packets seen before the tampering event
//! (`X`) and the tear-down evidence after it (`Y`), where `∅` denotes more
//! than three seconds of silence. Signatures are grouped by how far into
//! the connection tampering strikes.

use std::fmt;

/// Connection stage at which the tampering event takes effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Mid-handshake: only a single SYN was seen.
    PostSyn,
    /// Immediately post-handshake: SYN and the handshake ACK, no data.
    PostAck,
    /// After the first data packet (TLS ClientHello / HTTP request).
    PostPsh,
    /// After multiple data packets.
    PostData,
}

impl Stage {
    /// All stages in presentation order.
    pub const ALL: [Stage; 4] = [
        Stage::PostSyn,
        Stage::PostAck,
        Stage::PostPsh,
        Stage::PostData,
    ];

    /// Human-readable stage name as used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Stage::PostSyn => "Post-SYN",
            Stage::PostAck => "Post-ACK",
            Stage::PostPsh => "Post-PSH",
            Stage::PostData => "Post-Multiple-Data",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The 19 tampering signatures of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // each variant is documented by `label`/`description`
pub enum Signature {
    SynNone,
    SynRst,
    SynRstAck,
    SynRstBoth,
    AckNone,
    AckRst,
    AckRstRst,
    AckRstAck,
    AckRstAckRstAck,
    PshNone,
    PshRst,
    PshRstAck,
    PshRstRstAck,
    PshRstAckRstAck,
    PshRstEq,
    PshRstNeq,
    PshRstZero,
    DataRst,
    DataRstAck,
}

impl Signature {
    /// All 19 signatures in Table 1 order.
    pub const ALL: [Signature; 19] = [
        Signature::SynNone,
        Signature::SynRst,
        Signature::SynRstAck,
        Signature::SynRstBoth,
        Signature::AckNone,
        Signature::AckRst,
        Signature::AckRstRst,
        Signature::AckRstAck,
        Signature::AckRstAckRstAck,
        Signature::PshNone,
        Signature::PshRst,
        Signature::PshRstAck,
        Signature::PshRstRstAck,
        Signature::PshRstAckRstAck,
        Signature::PshRstEq,
        Signature::PshRstNeq,
        Signature::PshRstZero,
        Signature::DataRst,
        Signature::DataRstAck,
    ];

    /// Stable dense index (Table 1 order), for counters.
    pub fn index(self) -> usize {
        Signature::ALL.iter().position(|s| *s == self).unwrap()
    }

    /// The stage this signature belongs to.
    pub fn stage(self) -> Stage {
        use Signature::*;
        match self {
            SynNone | SynRst | SynRstAck | SynRstBoth => Stage::PostSyn,
            AckNone | AckRst | AckRstRst | AckRstAck | AckRstAckRstAck => Stage::PostAck,
            PshNone | PshRst | PshRstAck | PshRstRstAck | PshRstAckRstAck | PshRstEq
            | PshRstNeq | PshRstZero => Stage::PostPsh,
            DataRst | DataRstAck => Stage::PostData,
        }
    }

    /// The paper's notation, e.g. `⟨PSH+ACK → RST; RST₀⟩`.
    pub fn label(self) -> &'static str {
        use Signature::*;
        match self {
            SynNone => "⟨SYN → ∅⟩",
            SynRst => "⟨SYN → RST⟩",
            SynRstAck => "⟨SYN → RST+ACK⟩",
            SynRstBoth => "⟨SYN → RST; RST+ACK⟩",
            AckNone => "⟨SYN; ACK → ∅⟩",
            AckRst => "⟨SYN; ACK → RST⟩",
            AckRstRst => "⟨SYN; ACK → RST; RST⟩",
            AckRstAck => "⟨SYN; ACK → RST+ACK⟩",
            AckRstAckRstAck => "⟨SYN; ACK → RST+ACK; RST+ACK⟩",
            PshNone => "⟨PSH+ACK → ∅⟩",
            PshRst => "⟨PSH+ACK → RST⟩",
            PshRstAck => "⟨PSH+ACK → RST+ACK⟩",
            PshRstRstAck => "⟨PSH+ACK → RST; RST+ACK⟩",
            PshRstAckRstAck => "⟨PSH+ACK → RST+ACK; RST+ACK⟩",
            PshRstEq => "⟨PSH+ACK → RST = RST⟩",
            PshRstNeq => "⟨PSH+ACK → RST ≠ RST⟩",
            PshRstZero => "⟨PSH+ACK → RST; RST₀⟩",
            DataRst => "⟨PSH+ACK; Data → RST⟩",
            DataRstAck => "⟨PSH+ACK; Data → RST+ACK⟩",
        }
    }

    /// The Table 1 description column.
    pub fn description(self) -> &'static str {
        use Signature::*;
        match self {
            SynNone => "No packets after a single SYN",
            SynRst => "One or more RSTs after a single SYN",
            SynRstAck => "One or more RST+ACKs after the SYN",
            SynRstBoth => "One or more RST and RST+ACK after a single SYN",
            AckNone => "No packets received after a SYN and an ACK",
            AckRst => "Exactly one RST after a SYN and an ACK",
            AckRstRst => "More than one RST after a SYN and an ACK",
            AckRstAck => "Exactly one RST+ACK after a SYN and an ACK",
            AckRstAckRstAck => "More than one RST+ACK after a SYN and an ACK",
            PshNone => "No packets received after PSH+ACK packets",
            PshRst => "Exactly one RST",
            PshRstAck => "Exactly one RST+ACK",
            PshRstRstAck => "At least one RST and one RST+ACK",
            PshRstAckRstAck => "At least two RST+ACKs",
            PshRstEq => "More than one RST; same ACK numbers",
            PshRstNeq => "More than one RST; change in ACK numbers",
            PshRstZero => "More than one RST; one of the ACK numbers is zero",
            DataRst => "One or more RSTs not immediately after first PSH+ACK",
            DataRstAck => "One or more RST+ACKs not immediately after first PSH+ACK",
        }
    }

    /// True for the drop-evidence (silence) signatures.
    pub fn is_silence(self) -> bool {
        matches!(
            self,
            Signature::SynNone | Signature::AckNone | Signature::PshNone
        )
    }

    /// The Table 1 "Prior Work" column: studies that identified the exact
    /// signature (marked `*`) or the general phenomenon. Novel signatures
    /// return `"—"`.
    pub fn prior_work(self) -> &'static str {
        use Signature::*;
        match self {
            SynNone => "[16, 32, 62]",
            SynRst => "[84]*, [15, 62]",
            SynRstAck => "[84]*, [15, 62]",
            SynRstBoth => "[20]",
            AckNone => "[10, 12, 15, 16, 75]",
            AckRst => "[84]*, [10, 12, 22]",
            AckRstRst => "[15, 22]",
            AckRstAck => "[84]*",
            AckRstAckRstAck => "—",
            PshNone => "[12, 19, 88]",
            PshRst => "[14, 48, 74, 82, 83]",
            PshRstAck => "[14, 48, 74, 82, 83]",
            PshRstRstAck => "[20]*, [82, 83]",
            PshRstAckRstAck => "[20]*, [82]",
            PshRstEq => "—",
            PshRstNeq => "[84]*",
            PshRstZero => "—",
            DataRst => "—",
            DataRstAck => "—",
        }
    }

    /// True if the paper presents this signature as novel (no prior work
    /// recorded the exact pattern or phenomenon).
    pub fn is_novel(self) -> bool {
        self.prior_work() == "—"
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What the classifier concluded about one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Classification {
    /// Graceful termination, or still active at truncation: no tampering
    /// evidence.
    NotTampered,
    /// The flow is possibly tampered *and* matches a tampering signature.
    Tampered(Signature),
    /// Possibly tampered (RST or unexplained silence) but not matching any
    /// signature — the paper's residual 13.1%.
    PossiblyTamperedOther,
}

impl Classification {
    /// True if the flow counted as possibly tampered (signature or not).
    pub fn is_possibly_tampered(self) -> bool {
        !matches!(self, Classification::NotTampered)
    }

    /// The matched signature, if any.
    pub fn signature(self) -> Option<Signature> {
        match self {
            Classification::Tampered(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_signatures() {
        assert_eq!(Signature::ALL.len(), 19);
        // Indices are dense and stable.
        for (i, s) in Signature::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn stage_partition_sizes_match_table1() {
        let count = |st: Stage| Signature::ALL.iter().filter(|s| s.stage() == st).count();
        assert_eq!(count(Stage::PostSyn), 4);
        assert_eq!(count(Stage::PostAck), 5);
        assert_eq!(count(Stage::PostPsh), 8);
        assert_eq!(count(Stage::PostData), 2);
    }

    #[test]
    fn labels_use_paper_notation() {
        assert_eq!(Signature::SynNone.label(), "⟨SYN → ∅⟩");
        assert_eq!(Signature::PshRstZero.label(), "⟨PSH+ACK → RST; RST₀⟩");
        assert_eq!(Signature::DataRstAck.label(), "⟨PSH+ACK; Data → RST+ACK⟩");
    }

    #[test]
    fn silence_signatures() {
        let silent: Vec<_> = Signature::ALL.iter().filter(|s| s.is_silence()).collect();
        assert_eq!(silent.len(), 3);
    }

    #[test]
    fn prior_work_marks_five_novel_signatures() {
        // The paper introduces five signatures with no prior record.
        let novel: Vec<Signature> = Signature::ALL
            .iter()
            .copied()
            .filter(|s| s.is_novel())
            .collect();
        assert_eq!(
            novel,
            vec![
                Signature::AckRstAckRstAck,
                Signature::PshRstEq,
                Signature::PshRstZero,
                Signature::DataRst,
                Signature::DataRstAck,
            ]
        );
        assert!(Signature::SynRst.prior_work().contains("[84]*"));
    }

    #[test]
    fn classification_predicates() {
        assert!(!Classification::NotTampered.is_possibly_tampered());
        assert!(Classification::PossiblyTamperedOther.is_possibly_tampered());
        let c = Classification::Tampered(Signature::PshRst);
        assert!(c.is_possibly_tampered());
        assert_eq!(c.signature(), Some(Signature::PshRst));
        assert_eq!(Classification::NotTampered.signature(), None);
    }
}
