//! Order reconstruction for logged flows.
//!
//! The collection pipeline timestamps at one-second granularity and may
//! log packets out of order within a second (paper §3.2). As the paper
//! notes, order "can typically be reconstructed with packet headers and
//! sequence numbers": a SYN precedes the handshake ACK, data packets are
//! ordered by sequence number, and tear-down packets follow the data that
//! triggered them.

use crate::view::PacketsView;
use tamper_capture::PacketRecord;
use tamper_wire::TcpFlags;

/// Coarse within-bucket rank of a packet.
///
/// Pure ACKs share the data rank: a client's ACK stream interleaves with
/// its data at the *same* sequence cursor (`snd_nxt`), so ordering both by
/// sequence number — empty payloads first on ties, since the handshake
/// ACK precedes the request it shares a sequence number with — recovers
/// the true order, which matters for the IP-ID/TTL evidence.
fn rank(f: TcpFlags) -> u8 {
    if f.has_syn() {
        0
    } else if f.has_rst() {
        4
    } else {
        // Data, pure ACKs, and FINs all ride the client's sequence
        // cursor; ordering them together by sequence number recovers the
        // true order (the post-FIN final ACK has a *higher* sequence than
        // the FIN, so it lands after it naturally).
        2
    }
}

/// Return indices into `packets` in reconstructed arrival order.
///
/// Within each equal-timestamp bucket, packets sort by
/// (rank, relative sequence number, relative ack, log index). Sequence
/// numbers are taken relative to the flow's initial sequence number so
/// wrap-around does not scramble ordering.
pub fn reconstruct_order(packets: &[PacketRecord]) -> Vec<usize> {
    let mut idx = Vec::new();
    reconstruct_order_into(packets, &mut idx);
    idx
}

/// [`reconstruct_order`] writing into a caller-owned buffer, so hot loops
/// (one classification per evicted flow) can reuse the allocation.
pub fn reconstruct_order_into(packets: &[PacketRecord], idx: &mut Vec<usize>) {
    reconstruct_order_view_into(packets, idx);
}

/// [`reconstruct_order_into`] over any packet storage layout — the one
/// sort key, shared by the `Vec<PacketRecord>` and columnar paths.
pub fn reconstruct_order_view_into<V: PacketsView + ?Sized>(v: &V, idx: &mut Vec<usize>) {
    // The ISN is the sequence number of the (lowest-ranked) SYN if one was
    // logged, else the minimum data sequence seen.
    let isn = (0..v.len())
        .find(|&i| v.flags(i).has_syn())
        .map(|i| v.seq(i))
        .or_else(|| (0..v.len()).map(|i| v.seq(i)).min())
        .unwrap_or(0);
    // Ack numbers need the same relative treatment as sequence numbers:
    // the server's ISN can sit just below the u32 wrap, so raw acks would
    // scramble the tie-break. Anchor at the first nonzero ack logged; the
    // offset is *signed* because the log may present a later ack first —
    // acks just before the anchor must sort just before it, not 4 GiB
    // after. (Acks of 0 are pre-handshake and keep sorting first, via the
    // bool key.)
    let ack0 = (0..v.len())
        .find(|&i| v.ack(i) != 0)
        .map(|i| v.ack(i))
        .unwrap_or(0);

    idx.clear();
    idx.extend(0..v.len());
    // Unstable sort: the trailing index makes every key unique, so order
    // is deterministic — and unlike the stable sort it never allocates,
    // which the steady-state analyze path depends on.
    idx.sort_unstable_by_key(|&i| {
        (
            v.ts_sec(i),
            rank(v.flags(i)),
            v.seq(i).wrapping_sub(isn),
            v.has_payload(i), // the handshake ACK precedes its request
            (v.ack(i) != 0, v.ack(i).wrapping_sub(ack0).cast_signed()),
            v.flags(i).has_fin(), // the final data ACK precedes the FIN
            i,
        )
    });
}

/// Convenience: the packets themselves in reconstructed order.
pub fn reordered(packets: &[PacketRecord]) -> Vec<&PacketRecord> {
    reconstruct_order(packets)
        .into_iter()
        .map(|i| &packets[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use tamper_wire::TcpFlags;

    fn rec(ts: u64, flags: TcpFlags, seq: u32, payload_len: u32) -> PacketRecord {
        PacketRecord {
            ts_sec: ts,
            flags,
            seq,
            ack: 0,
            ip_id: Some(0),
            ttl: 60,
            window: 65535,
            payload_len,
            payload: Bytes::from(vec![b'x'; payload_len as usize]),
            has_tcp_options: true,
        }
    }

    #[test]
    fn syn_sorts_before_ack_before_data_before_rst() {
        let packets = vec![
            rec(5, TcpFlags::RST, 600, 0),
            rec(5, TcpFlags::PSH_ACK, 101, 500),
            rec(5, TcpFlags::ACK, 101, 0),
            rec(5, TcpFlags::SYN, 100, 0),
        ];
        let order = reconstruct_order(&packets);
        let flags: Vec<_> = order.iter().map(|&i| packets[i].flags).collect();
        assert_eq!(
            flags,
            vec![
                TcpFlags::SYN,
                TcpFlags::ACK,
                TcpFlags::PSH_ACK,
                TcpFlags::RST
            ]
        );
    }

    #[test]
    fn timestamps_dominate_rank() {
        let packets = vec![
            rec(10, TcpFlags::RST, 700, 0),
            rec(11, TcpFlags::SYN, 100, 0), // later second: stays later
        ];
        let order = reconstruct_order(&packets);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn data_ordered_by_relative_seq_with_wraparound() {
        let isn = u32::MAX - 10;
        let packets = vec![
            rec(3, TcpFlags::PSH_ACK, isn.wrapping_add(600), 100), // second data pkt
            rec(3, TcpFlags::PSH_ACK, isn.wrapping_add(1), 599),   // first data pkt (wraps)
            rec(3, TcpFlags::SYN, isn, 0),
        ];
        let order = reconstruct_order(&packets);
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn ack_tiebreak_survives_wraparound() {
        // Two pure ACKs at the same seq cursor whose ack numbers straddle
        // the u32 wrap: the server ISN sits just below u32::MAX, so the
        // later ACK has the numerically *smaller* raw ack. Sorting raw
        // acks put it first; relative acks keep capture order.
        let server_isn = u32::MAX - 2;
        let mut early = rec(4, TcpFlags::ACK, 101, 0);
        early.ack = server_isn.wrapping_add(1); // 4294967294
        let mut late = rec(4, TcpFlags::ACK, 101, 0);
        late.ack = server_isn.wrapping_add(600); // wrapped: 597
        let packets = vec![late.clone(), early.clone()];
        let order = reconstruct_order(&packets);
        assert_eq!(order, vec![1, 0], "earlier ack must sort first");

        // And an ack of 0 (pre-handshake) still sorts before both.
        let handshake = rec(4, TcpFlags::ACK, 101, 0); // ack == 0
        let packets = vec![late, handshake, early];
        let order = reconstruct_order(&packets);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn stable_for_identical_keys() {
        let packets = vec![rec(1, TcpFlags::RST, 500, 0), rec(1, TcpFlags::RST, 500, 0)];
        let order = reconstruct_order(&packets);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn reordered_returns_refs_in_order() {
        let packets = vec![
            rec(2, TcpFlags::PSH_ACK, 101, 10),
            rec(2, TcpFlags::SYN, 100, 0),
        ];
        let r = reordered(&packets);
        assert!(r[0].flags.has_syn());
        assert!(r[1].has_payload());
    }

    #[test]
    fn empty_input() {
        assert!(reconstruct_order(&[]).is_empty());
    }
}
