//! Trigger extraction: for middleboxes that do not drop the offending
//! packet, the flow record contains the very bytes that triggered
//! tampering — the TLS SNI or HTTP Host. This is what lets the passive
//! pipeline report affected domains without any a-priori test list
//! (paper §3.4).

use crate::view::PacketsView;
use tamper_capture::{FlowRecord, PacketRecord};
use tamper_wire::{http, tls};

/// Application protocol of a flow, as inferred from its first data packet
/// (falling back to the destination port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppProtocol {
    /// TLS (ClientHello observed, or port 443).
    Tls,
    /// Cleartext HTTP (request observed, or port 80).
    Http,
    /// Anything else.
    Other,
}

/// What could be extracted from a flow's payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerInfo {
    /// The domain the client asked for, if visible (SNI or Host).
    pub domain: Option<String>,
    /// Protocol classification.
    pub protocol: AppProtocol,
}

/// Extract trigger information from a flow record.
pub fn extract(flow: &FlowRecord) -> TriggerInfo {
    extract_from_parts(flow.dst_port, &flow.packets)
}

/// [`extract`] over a flow's parts — the sans-IO machine calls this with
/// its own packet buffer, before any [`FlowRecord`] exists.
pub fn extract_from_parts(dst_port: u16, packets: &[PacketRecord]) -> TriggerInfo {
    extract_from_view(dst_port, packets)
}

/// [`extract_from_parts`] over any packet storage layout — the batch
/// classifier calls this with a column-slice view.
pub fn extract_from_view<V: PacketsView + ?Sized>(dst_port: u16, v: &V) -> TriggerInfo {
    // First data-bearing packet (including data riding a SYN).
    let first_data = (0..v.len())
        .find(|&i| v.has_payload(i))
        .map(|i| v.payload(i));
    from_first_payload(dst_port, first_data)
}

/// The shared extraction body: inspect the first data payload, fall back
/// to the destination port.
fn from_first_payload(dst_port: u16, first_data: Option<&[u8]>) -> TriggerInfo {
    if let Some(payload) = first_data {
        if tls::is_client_hello(payload) {
            return TriggerInfo {
                // tamperlint: allow(discarded-wire-error) — best-effort trigger extraction: a malformed ClientHello means no SNI by design
                domain: tls::parse_sni(payload).ok().flatten(),
                protocol: AppProtocol::Tls,
            };
        }
        if http::is_http_request(payload) {
            // tamperlint: allow(discarded-wire-error) — best-effort trigger extraction: a malformed request means no Host by design
            let host = http::parse_host(payload).ok().flatten();
            return TriggerInfo {
                domain: host,
                protocol: AppProtocol::Http,
            };
        }
    }
    let protocol = match dst_port {
        443 => AppProtocol::Tls,
        80 => AppProtocol::Http,
        _ => AppProtocol::Other,
    };
    TriggerInfo {
        domain: None,
        protocol,
    }
}

/// The User-Agent of the first HTTP request in the flow, if any — the
/// paper observes that Post-Data matches frequently carry user agents
/// identifying commercial firewalls.
pub fn user_agent(flow: &FlowRecord) -> Option<String> {
    flow.packets
        .iter()
        .filter(|p| p.has_payload())
        .find_map(|p| {
            http::parse_request(&p.payload)
                // tamperlint: allow(discarded-wire-error) — best-effort User-Agent sniff: a malformed request simply yields none
                .ok()
                .and_then(|r| r.user_agent)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::net::{IpAddr, Ipv4Addr};
    use tamper_capture::PacketRecord;
    use tamper_wire::TcpFlags;

    fn flow(dst_port: u16, payloads: Vec<Bytes>) -> FlowRecord {
        let packets = payloads
            .into_iter()
            .enumerate()
            .map(|(i, payload)| PacketRecord {
                ts_sec: i as u64,
                flags: if payload.is_empty() {
                    TcpFlags::SYN
                } else {
                    TcpFlags::PSH_ACK
                },
                seq: i as u32,
                ack: 0,
                ip_id: Some(1),
                ttl: 60,
                window: 65535,
                payload_len: payload.len() as u32,
                payload,
                has_tcp_options: true,
            })
            .collect();
        FlowRecord {
            client_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            server_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            src_port: 40000,
            dst_port,
            packets,
            observation_end_sec: 100,
            truncated: false,
        }
    }

    #[test]
    fn sni_extraction() {
        let hello = tls::build_client_hello("secret.example.org", [0u8; 32]);
        let f = flow(443, vec![Bytes::new(), hello]);
        let t = extract(&f);
        assert_eq!(t.protocol, AppProtocol::Tls);
        assert_eq!(t.domain.as_deref(), Some("secret.example.org"));
    }

    #[test]
    fn host_extraction() {
        let get = http::build_get("news.example", "/story", "Mozilla/5.0");
        let f = flow(80, vec![Bytes::new(), get]);
        let t = extract(&f);
        assert_eq!(t.protocol, AppProtocol::Http);
        assert_eq!(t.domain.as_deref(), Some("news.example"));
        assert_eq!(user_agent(&f).as_deref(), Some("Mozilla/5.0"));
    }

    #[test]
    fn dataless_flow_falls_back_to_port() {
        let f = flow(443, vec![Bytes::new()]);
        let t = extract(&f);
        assert_eq!(t.protocol, AppProtocol::Tls);
        assert_eq!(t.domain, None);
        let f80 = flow(80, vec![Bytes::new()]);
        assert_eq!(extract(&f80).protocol, AppProtocol::Http);
        let fother = flow(8443, vec![Bytes::new()]);
        assert_eq!(extract(&fother).protocol, AppProtocol::Other);
    }

    #[test]
    fn binary_payload_is_other_protocol_on_odd_port() {
        let f = flow(9999, vec![Bytes::from_static(&[0xde, 0xad, 0xbe, 0xef])]);
        let t = extract(&f);
        assert_eq!(t.protocol, AppProtocol::Other);
        assert_eq!(t.domain, None);
    }
}
