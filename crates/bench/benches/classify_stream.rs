//! Throughput of the streaming classification engine across shard counts.
//!
//! Synthesizes a ≥100k-flow capture in memory, replays it through the
//! columnar batch path ([`PcapMemSource`] → [`BatchClassifier`]) at
//! 1/2/4/8 shards, checks the outputs agree, and records flows/sec per
//! shard count in `BENCH_classify_stream.json` at the repo root (set
//! `BENCH_OUT_PATH` to write elsewhere). A single-threaded run of the
//! legacy per-flow path ([`run_engine`] → `Classifier`) rides along for
//! comparison.
//!
//! Thread counts above the host's core count are skipped outright and
//! recorded with `"skipped_oversubscribed": true` — timing an 8-shard
//! run on a 1-core box produces a speedup column that reads as a
//! regression when it is really just scheduler noise.

use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;

use tamper_analysis::{capture_collector, label_capture_flow, Collector};
use tamper_capture::{
    run_engine, run_source, ClosedFlow, EngineConfig, EngineStats, FlowBatch, OfflineConfig,
    PcapMemSource, PcapWriter,
};
use tamper_core::{BatchClassifier, Classifier, ClassifierConfig};
use tamper_wire::{PacketBuilder, TcpFlags};

const FLOWS: u32 = 120_000;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn synth_capture(n_flows: u32) -> Vec<u8> {
    let server = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
    let mut w = PcapWriter::new(Vec::with_capacity(n_flows as usize * 320)).expect("header");
    let mut record = 0u32;
    for i in 0..n_flows {
        let client = IpAddr::V4(Ipv4Addr::new(
            (10 + (i >> 16)) as u8,
            (i >> 8) as u8,
            i as u8,
            1,
        ));
        let sport = 20_000 + (i % 40_000) as u16;
        let dport = if i % 3 == 0 { 80 } else { 443 };
        let t = 100 + i / 64; // ~64 flows start per capture second
        let mut f = |ts: u32, flags, seq: u32, payload: &[u8]| {
            let frame = PacketBuilder::new(client, server, sport, dport)
                .flags(flags)
                .seq(seq)
                .ack(if seq > 100 { 500 } else { 0 })
                .ttl(52)
                .ip_id((seq ^ i) as u16)
                .payload(bytes::Bytes::copy_from_slice(payload))
                .build()
                .emit();
            w.write_frame(ts, record % 1_000_000, &frame)
                .expect("frame");
            record += 1;
        };
        match i % 4 {
            0 => {
                f(t, TcpFlags::SYN, 100, b"");
                f(t, TcpFlags::ACK, 101, b"");
                f(
                    t + 1,
                    TcpFlags::PSH_ACK,
                    101,
                    b"GET / HTTP/1.1\r\nHost: x.example\r\n\r\n",
                );
                f(t + 2, TcpFlags::FIN_ACK, 137, b"");
            }
            1 => f(t, TcpFlags::SYN, 100, b""),
            2 => {
                f(t, TcpFlags::SYN, 100, b"");
                f(t, TcpFlags::RST, 101, b"");
            }
            _ => {
                f(t, TcpFlags::SYN, 100, b"");
                f(t, TcpFlags::ACK, 101, b"");
                f(t + 1, TcpFlags::PSH_ACK, 101, b"hello");
                f(t + 1, TcpFlags::RST_ACK, 106, b"");
            }
        }
    }
    w.into_inner()
}

/// Per-shard accumulator for the batched run: classify whole batches
/// over the column slices and keep only aggregate counts, so the sink
/// cost reflects classification, not rendering.
struct BatchSink {
    clf: BatchClassifier,
    flows: u64,
    tampered: u64,
}

fn run_batched(bytes: &bytes::Bytes, threads: usize) -> (u64, u64, EngineStats) {
    let cfg = EngineConfig {
        offline: OfflineConfig::default(),
        threads,
        ..EngineConfig::default()
    };
    let clf_cfg = ClassifierConfig::default();
    let src = PcapMemSource::new(bytes.clone()).expect("pcap header");
    let (sink, stats) = run_source(
        src,
        &cfg,
        || BatchSink {
            clf: BatchClassifier::new(clf_cfg),
            flows: 0,
            tampered: 0,
        },
        |sink: &mut BatchSink, batch: FlowBatch| {
            for analysis in sink.clf.classify_batch(&batch) {
                sink.flows += 1;
                sink.tampered += u64::from(analysis.is_possibly_tampered());
            }
        },
        |a, b| {
            a.flows += b.flows;
            a.tampered += b.tampered;
        },
    );
    (sink.flows, sink.tampered, stats)
}

struct LegacySink {
    clf: Classifier,
    col: Collector,
}

fn run_legacy(bytes: &[u8]) -> (Collector, EngineStats) {
    let cfg = EngineConfig {
        offline: OfflineConfig::default(),
        threads: 1,
        ..EngineConfig::default()
    };
    let clf_cfg = ClassifierConfig::default();
    let (sink, stats) = run_engine(
        bytes,
        &cfg,
        || LegacySink {
            clf: Classifier::new(clf_cfg),
            col: capture_collector(clf_cfg, 0),
        },
        |sink: &mut LegacySink, closed: ClosedFlow| {
            let lf = label_capture_flow(closed.flow);
            let analysis = sink.clf.classify(&lf.flow);
            sink.col.observe_analyzed(&lf, &analysis);
        },
        |a, b| a.col.merge(b.col),
    )
    .expect("engine run");
    (sink.col, stats)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("synthesizing {FLOWS} flows...");
    let bytes = bytes::Bytes::from(synth_capture(FLOWS));
    eprintln!("capture: {} MiB on {cores} core(s)", bytes.len() >> 20);

    // Legacy per-flow path, single shard, for the comparison row. Also
    // the reference verdict counts the batched runs must reproduce.
    let (legacy_col, legacy_stats) = run_legacy(&bytes);
    let legacy_start = Instant::now();
    let (legacy_col2, _) = run_legacy(&bytes);
    let legacy_secs = legacy_start.elapsed().as_secs_f64();
    assert_eq!(legacy_col.total, legacy_col2.total);
    let legacy_fps = legacy_stats.ingest.flows as f64 / legacy_secs;
    eprintln!("legacy 1-thread: {legacy_secs:.3}s, {legacy_fps:.0} flows/s");

    // Warm up page cache / allocator on the batched path, and pin the
    // batched verdicts to the legacy ones.
    let (base_flows, base_tampered, base_stats) = run_batched(&bytes, 1);
    assert_eq!(base_flows, legacy_col.total, "flow totals diverged");
    assert_eq!(
        base_tampered, legacy_col.possibly_tampered,
        "verdicts diverged between batched and legacy paths"
    );

    let mut rows = Vec::new();
    let mut base_secs = 0f64;
    for &threads in &THREAD_COUNTS {
        if threads > cores {
            eprintln!("threads {threads}: skipped (host has {cores} core(s))");
            rows.push(format!(
                "    {{\"threads\": {threads}, \"skipped_oversubscribed\": true}}"
            ));
            continue;
        }
        let start = Instant::now();
        let (flows, tampered, stats) = run_batched(&bytes, threads);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            flows, base_flows,
            "flow totals diverged at {threads} shards"
        );
        assert_eq!(
            tampered, base_tampered,
            "verdicts diverged at {threads} shards"
        );
        assert_eq!(stats.ingest.flows, base_stats.ingest.flows);
        if threads == 1 {
            base_secs = secs;
        }
        let fps = stats.ingest.flows as f64 / secs;
        let speedup = base_secs / secs;
        eprintln!("threads {threads}: {secs:.3}s, {fps:.0} flows/s, {speedup:.2}x vs 1",);
        rows.push(format!(
            "    {{\"threads\": {threads}, \"secs\": {secs:.4}, \"flows_per_sec\": {fps:.0}, \"speedup_vs_1\": {speedup:.3}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"classify_stream\",\n  \"flows\": {},\n  \"records\": {},\n  \"cores\": {cores},\n  \"legacy\": {{\"threads\": 1, \"secs\": {legacy_secs:.4}, \"flows_per_sec\": {legacy_fps:.0}}},\n  \"runs\": [\n{}\n  ]\n}}\n",
        base_stats.ingest.flows,
        base_stats.records,
        rows.join(",\n"),
    );
    let path = std::env::var("BENCH_OUT_PATH").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_classify_stream.json"
        )
        .to_string()
    });
    std::fs::write(&path, &json).expect("write BENCH_classify_stream.json");
    println!("{json}");
}
