//! Throughput of the streaming classification engine across shard counts.
//!
//! Synthesizes a ≥100k-flow capture in memory, replays it through
//! [`run_engine`] at 1/2/4/8 shards with the full classify-and-collect
//! sink, checks the outputs agree, and records flows/sec per shard count
//! in `BENCH_classify_stream.json` at the repo root. The JSON includes
//! the host's core count: on a single-core box every configuration
//! serializes onto one CPU, so the speedup column is only meaningful
//! when `cores >= threads`.

use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;

use tamper_analysis::{capture_collector, label_capture_flow, Collector};
use tamper_capture::{
    run_engine, ClosedFlow, EngineConfig, EngineStats, OfflineConfig, PcapWriter,
};
use tamper_core::{Classifier, ClassifierConfig};
use tamper_wire::{PacketBuilder, TcpFlags};

const FLOWS: u32 = 120_000;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn synth_capture(n_flows: u32) -> Vec<u8> {
    let server = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
    let mut w = PcapWriter::new(Vec::with_capacity(n_flows as usize * 320)).expect("header");
    let mut record = 0u32;
    for i in 0..n_flows {
        let client = IpAddr::V4(Ipv4Addr::new(
            (10 + (i >> 16)) as u8,
            (i >> 8) as u8,
            i as u8,
            1,
        ));
        let sport = 20_000 + (i % 40_000) as u16;
        let dport = if i % 3 == 0 { 80 } else { 443 };
        let t = 100 + i / 64; // ~64 flows start per capture second
        let mut f = |ts: u32, flags, seq: u32, payload: &[u8]| {
            let frame = PacketBuilder::new(client, server, sport, dport)
                .flags(flags)
                .seq(seq)
                .ack(if seq > 100 { 500 } else { 0 })
                .ttl(52)
                .ip_id((seq ^ i) as u16)
                .payload(bytes::Bytes::copy_from_slice(payload))
                .build()
                .emit();
            w.write_frame(ts, record % 1_000_000, &frame)
                .expect("frame");
            record += 1;
        };
        match i % 4 {
            0 => {
                f(t, TcpFlags::SYN, 100, b"");
                f(t, TcpFlags::ACK, 101, b"");
                f(
                    t + 1,
                    TcpFlags::PSH_ACK,
                    101,
                    b"GET / HTTP/1.1\r\nHost: x.example\r\n\r\n",
                );
                f(t + 2, TcpFlags::FIN_ACK, 137, b"");
            }
            1 => f(t, TcpFlags::SYN, 100, b""),
            2 => {
                f(t, TcpFlags::SYN, 100, b"");
                f(t, TcpFlags::RST, 101, b"");
            }
            _ => {
                f(t, TcpFlags::SYN, 100, b"");
                f(t, TcpFlags::ACK, 101, b"");
                f(t + 1, TcpFlags::PSH_ACK, 101, b"hello");
                f(t + 1, TcpFlags::RST_ACK, 106, b"");
            }
        }
    }
    w.into_inner()
}

struct Sink {
    clf: Classifier,
    col: Collector,
}

fn run(bytes: &[u8], threads: usize) -> (Collector, EngineStats) {
    let cfg = EngineConfig {
        offline: OfflineConfig::default(),
        threads,
        ..EngineConfig::default()
    };
    let clf_cfg = ClassifierConfig::default();
    let (sink, stats) = run_engine(
        bytes,
        &cfg,
        || Sink {
            clf: Classifier::new(clf_cfg),
            col: capture_collector(clf_cfg, 0),
        },
        |sink: &mut Sink, closed: ClosedFlow| {
            let lf = label_capture_flow(closed.flow);
            let analysis = sink.clf.classify(&lf.flow);
            sink.col.observe_analyzed(&lf, &analysis);
        },
        |a, b| a.col.merge(b.col),
    )
    .expect("engine run");
    (sink.col, stats)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("synthesizing {FLOWS} flows...");
    let bytes = synth_capture(FLOWS);
    eprintln!("capture: {} MiB", bytes.len() >> 20);

    // Warm up page cache / allocator.
    let (base_col, base_stats) = run(&bytes, 1);

    let mut rows = Vec::new();
    let mut base_secs = 0f64;
    for &threads in &THREAD_COUNTS {
        let start = Instant::now();
        let (col, stats) = run(&bytes, threads);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            col.total, base_col.total,
            "flow totals diverged at {threads} shards"
        );
        assert_eq!(
            col.possibly_tampered, base_col.possibly_tampered,
            "verdicts diverged at {threads} shards"
        );
        assert_eq!(stats.ingest.flows, base_stats.ingest.flows);
        if threads == 1 {
            base_secs = secs;
        }
        let fps = stats.ingest.flows as f64 / secs;
        let speedup = base_secs / secs;
        eprintln!("threads {threads}: {secs:.3}s, {fps:.0} flows/s, {speedup:.2}x vs 1",);
        rows.push(format!(
            "    {{\"threads\": {threads}, \"secs\": {secs:.4}, \"flows_per_sec\": {fps:.0}, \"speedup_vs_1\": {speedup:.3}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"classify_stream\",\n  \"flows\": {},\n  \"records\": {},\n  \"cores\": {cores},\n  \"runs\": [\n{}\n  ]\n}}\n",
        base_stats.ingest.flows,
        base_stats.records,
        rows.join(",\n"),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_classify_stream.json"
    );
    std::fs::write(path, &json).expect("write BENCH_classify_stream.json");
    println!("{json}");
}
