//! Benchmarks + artifact emission for Figures 2 and 3 (IP-ID / TTL
//! injection-evidence CDFs) and the §4.2 validation numbers, plus
//! micro-benchmarks of the evidence extractors themselves.

use criterion::{criterion_group, Criterion};
use tamper_analysis::report;
use tamper_bench::{emit, pregenerate, run_pipeline, standard_world, EMIT_SESSIONS};
use tamper_core::{max_rst_ipid_delta, max_rst_ttl_delta, scanner_marks};

fn emit_artifacts() {
    let sim = standard_world(EMIT_SESSIONS);
    let col = run_pipeline(&sim);
    let view = col.view();
    emit("Figure 2", &report::fig2(&view));
    emit("Figure 3", &report::fig3(&view));
    emit("Validation (§4.1–4.3)", &report::validation(&view));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_evidence");
    let flows = pregenerate(2_000);
    g.bench_function("ipid_delta_extraction", |b| {
        b.iter(|| {
            flows
                .iter()
                .filter_map(|lf| max_rst_ipid_delta(&lf.flow))
                .count()
        })
    });
    g.bench_function("ttl_delta_extraction", |b| {
        b.iter(|| {
            flows
                .iter()
                .filter_map(|lf| max_rst_ttl_delta(&lf.flow))
                .count()
        })
    });
    g.bench_function("scanner_marks", |b| {
        b.iter(|| {
            flows
                .iter()
                .filter(|lf| scanner_marks(&lf.flow).high_ttl)
                .count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    emit_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
