//! Micro-benchmarks of the hot paths: classification throughput on
//! captured flows, order reconstruction, wire parse/emit, session
//! simulation, and the collection pipeline.

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use tamper_bench::pregenerate;
use tamper_capture::{collect, CollectorConfig};
use tamper_core::{classify, reordered, ClassifierConfig};
use tamper_netsim::{
    derive_rng, run_session, ClientConfig, Path, ServerConfig, SessionParams, SimDuration, SimTime,
};
use tamper_wire::{Packet, PacketBuilder, TcpFlags, TcpHeader};

fn bench(c: &mut Criterion) {
    let flows = pregenerate(4_000);
    let cfg = ClassifierConfig::default();

    let mut g = c.benchmark_group("classifier");
    g.throughput(Throughput::Elements(flows.len() as u64));
    g.bench_function("classify_flows", |b| {
        b.iter(|| {
            flows
                .iter()
                .filter(|lf| classify(&lf.flow, &cfg).is_possibly_tampered())
                .count()
        })
    });
    g.bench_function("reorder_flows", |b| {
        b.iter(|| {
            flows
                .iter()
                .map(|lf| reordered(&lf.flow.packets).len())
                .sum::<usize>()
        })
    });
    g.finish();

    let mut g = c.benchmark_group("wire");
    let pkt = PacketBuilder::new(
        "203.0.113.5".parse().unwrap(),
        "198.51.100.1".parse().unwrap(),
        40_000,
        443,
    )
    .flags(TcpFlags::PSH_ACK)
    .seq(1000)
    .ack(2000)
    .options(TcpHeader::standard_syn_options())
    .payload(bytes::Bytes::from(vec![0x16u8; 300]))
    .build();
    let frame = pkt.emit();
    g.throughput(Throughput::Bytes(frame.len() as u64));
    g.bench_function("emit", |b| b.iter(|| pkt.emit()));
    g.bench_function("parse", |b| b.iter(|| Packet::parse(&frame).unwrap()));
    g.finish();

    let mut g = c.benchmark_group("session");
    let client_ip = "203.0.113.5".parse().unwrap();
    let server_ip = "198.51.100.1".parse().unwrap();
    g.bench_function("simulate_clean_session", |b| {
        let mut i = 0u64;
        b.iter_batched(
            || {
                i += 1;
                (
                    ClientConfig::default_tls(client_ip, server_ip, "site.example.com"),
                    ServerConfig::default_edge(server_ip, 443),
                    derive_rng(9, i),
                )
            },
            |(ccfg, scfg, mut rng)| {
                let mut path = Path::direct(SimDuration::from_millis(40), 12);
                run_session(
                    SessionParams::new(ccfg, scfg, SimTime::ZERO),
                    &mut path,
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("collect_trace", |b| {
        let ccfg = ClientConfig::default_tls(client_ip, server_ip, "site.example.com");
        let scfg = ServerConfig::default_edge(server_ip, 443);
        let mut rng = derive_rng(9, 77);
        let mut path = Path::direct(SimDuration::from_millis(40), 12);
        let trace = run_session(
            SessionParams::new(ccfg, scfg, SimTime::ZERO),
            &mut path,
            &mut rng,
        );
        let ccfg2 = CollectorConfig::default();
        b.iter_batched(
            || derive_rng(10, 1),
            |mut crng| collect(&trace, &ccfg2, &mut crng),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion::criterion_main!(benches);
