//! Benchmark + artifact emission for Figure 10 (Appendix B): signature
//! consistency across repeated (IP, domain) pairs.

use criterion::{criterion_group, Criterion};
use tamper_analysis::report;
use tamper_bench::{emit, run_pipeline, standard_world, BENCH_SESSIONS, EMIT_SESSIONS};

fn emit_artifact() {
    let sim = standard_world(EMIT_SESSIONS);
    let col = run_pipeline(&sim);
    emit("Figure 10 (Appendix B)", &report::fig10(&col.view()));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap");
    g.sample_size(10);
    let sim = standard_world(BENCH_SESSIONS);
    let col = run_pipeline(&sim);
    let view = col.view();
    g.bench_function("fig10_render", |b| b.iter(|| report::fig10(&view)));
    g.bench_function("fig10_diagonal_mass", |b| {
        b.iter(|| report::fig10_diagonal_mass(&view))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    emit_artifact();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
