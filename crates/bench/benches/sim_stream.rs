//! Throughput of simulated worlds streamed through the unified engine.
//!
//! Before the `FlowSource` refactor, `WorldSim::run_sharded` carried its
//! own crossbeam shard/merge loop; now it is a thin shim over
//! `capture::engine` with a `SimSource` front-end. This bench generates a
//! world serially (the legacy driver path's fold) and then streams the
//! same world through the engine at 1/2/4/8 shards, checks the collectors
//! agree, and records flows/sec per configuration in
//! `BENCH_sim_stream.json` at the repo root. The JSON includes the host's
//! core count: on a single-core box every configuration serializes onto
//! one CPU, so the speedup column is only meaningful when
//! `cores >= threads`.

use std::time::Instant;

use tamper_analysis::Collector;
use tamper_core::ClassifierConfig;
use tamper_worldgen::{WorldConfig, WorldSim};

const SESSIONS: u64 = 40_000;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn collector(sim: &WorldSim) -> Collector {
    Collector::new(
        ClassifierConfig::default(),
        sim.world().len(),
        sim.config().days,
        sim.config().start_unix,
    )
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sim = WorldSim::new(WorldConfig {
        sessions: SESSIONS,
        days: 2,
        catalog_size: 2_000,
        ..Default::default()
    });

    // Legacy driver path: one serial generate-and-fold loop.
    eprintln!("serial baseline over {SESSIONS} sessions...");
    let start = Instant::now();
    let mut base_col = collector(&sim);
    sim.run(|lf| base_col.observe(&lf));
    let serial_secs = start.elapsed().as_secs_f64();
    let serial_fps = base_col.total as f64 / serial_secs;
    eprintln!("serial: {serial_secs:.3}s, {serial_fps:.0} flows/s");

    let mut rows = vec![format!(
        "    {{\"threads\": 0, \"mode\": \"serial\", \"secs\": {serial_secs:.4}, \"flows_per_sec\": {serial_fps:.0}, \"speedup_vs_serial\": 1.000}}"
    )];
    for &threads in &THREAD_COUNTS {
        let start = Instant::now();
        let col = sim.run_sharded(
            threads,
            || collector(&sim),
            |c, lf| c.observe(&lf),
            |a, b| a.merge(b),
        );
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            col.total, base_col.total,
            "flow totals diverged at {threads} shards"
        );
        assert_eq!(
            col.possibly_tampered, base_col.possibly_tampered,
            "verdicts diverged at {threads} shards"
        );
        let fps = col.total as f64 / secs;
        let speedup = serial_secs / secs;
        eprintln!("threads {threads}: {secs:.3}s, {fps:.0} flows/s, {speedup:.2}x vs serial");
        rows.push(format!(
            "    {{\"threads\": {threads}, \"mode\": \"sim_source\", \"secs\": {secs:.4}, \"flows_per_sec\": {fps:.0}, \"speedup_vs_serial\": {speedup:.3}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"sim_stream\",\n  \"sessions\": {SESSIONS},\n  \"flows\": {},\n  \"cores\": {cores},\n  \"runs\": [\n{}\n  ]\n}}\n",
        base_col.total,
        rows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_stream.json");
    std::fs::write(path, &json).expect("write BENCH_sim_stream.json");
    println!("{json}");
}
