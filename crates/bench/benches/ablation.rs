//! Ablation benches (DESIGN.md A1–A5): vary one collection/classification
//! design choice at a time, print the resulting headline statistics, and
//! measure the cost of each variant.
//!
//! - A1: inactivity threshold 1 s / 3 s / 10 s
//! - A2: packet window 4 / 10 / 20
//! - A3: timestamp quantization on/off
//! - A4: merged vs split RST-count signatures
//! - A5: sampling 1/1 vs 1/10
//!
//! (A2/A3/A5 change the collection pipeline, so their artifact lines are
//! produced by re-running the world with modified configs.)

use criterion::{criterion_group, Criterion};
use tamper_analysis::{pct, report, Collector};
use tamper_bench::{collector_for, emit, run_pipeline, BENCH_SESSIONS};
use tamper_core::{ClassifierConfig, Stage};
use tamper_worldgen::{WorldConfig, WorldSim};

fn world_with(sessions: u64, f: impl FnOnce(&mut WorldConfig)) -> WorldSim {
    let mut cfg = WorldConfig {
        sessions,
        days: 4,
        catalog_size: 1_500,
        ..Default::default()
    };
    f(&mut cfg);
    WorldSim::new(cfg)
}

fn run_with_classifier(sim: &WorldSim, cfg: ClassifierConfig) -> Collector {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    sim.run_sharded(
        threads,
        || {
            Collector::new(
                cfg,
                sim.world().len(),
                sim.config().days,
                sim.config().start_unix,
            )
        },
        |c, lf| c.observe(&lf),
        |a, b| a.merge(b),
    )
}

fn headline(col: &Collector) -> String {
    format!(
        "possibly tampered {} | stages {:.1}/{:.1}/{:.1}/{:.1} | coverage {}",
        pct(col.possibly_tampered, col.total),
        100.0 * report::stage_share(&col.view(), Stage::PostSyn),
        100.0 * report::stage_share(&col.view(), Stage::PostAck),
        100.0 * report::stage_share(&col.view(), Stage::PostPsh),
        100.0 * report::stage_share(&col.view(), Stage::PostData),
        pct(col.stage_matched.iter().sum::<u64>(), col.possibly_tampered),
    )
}

fn emit_artifacts() {
    const N: u64 = 40_000;
    // A1: inactivity threshold.
    let sim = world_with(N, |_| {});
    let mut lines = String::new();
    for secs in [1u64, 3, 10] {
        let col = run_with_classifier(
            &sim,
            ClassifierConfig {
                inactivity_secs: secs,
                split_rst_counts: true,
            },
        );
        lines.push_str(&format!("threshold {secs:>2}s: {}\n", headline(&col)));
    }
    emit("Ablation A1 — inactivity threshold", &lines);

    // A2: packet window.
    let mut lines = String::new();
    for max_packets in [4usize, 10, 20] {
        let sim = world_with(N, |cfg| cfg.collector.max_packets = max_packets);
        let col = run_pipeline(&sim);
        lines.push_str(&format!(
            "window {max_packets:>2} packets: {}\n",
            headline(&col)
        ));
    }
    emit("Ablation A2 — packet window", &lines);

    // A3: quantization.
    let mut lines = String::new();
    for quantize in [true, false] {
        let sim = world_with(N, |cfg| {
            cfg.collector.quantize_timestamps = quantize;
            cfg.collector.shuffle_within_second = quantize;
        });
        let col = run_pipeline(&sim);
        lines.push_str(&format!(
            "{}: {}\n",
            if quantize {
                "1-second timestamps (paper)"
            } else {
                "exact timestamps    "
            },
            headline(&col)
        ));
    }
    emit("Ablation A3 — timestamp quantization", &lines);

    // A4: merged vs split RST counts.
    let sim = world_with(N, |_| {});
    let mut lines = String::new();
    for split in [true, false] {
        let col = run_with_classifier(
            &sim,
            ClassifierConfig {
                inactivity_secs: 3,
                split_rst_counts: split,
            },
        );
        let distinct = (0..19)
            .filter(|&i| col.country_class.iter().any(|c| c[i] > 0))
            .count();
        lines.push_str(&format!(
            "{}: {} | distinct signatures observed: {distinct}\n",
            if split {
                "split (19 signatures) "
            } else {
                "merged (13 signatures)"
            },
            headline(&col)
        ));
    }
    emit("Ablation A4 — RST-count splitting", &lines);

    // A5: sampling.
    let mut lines = String::new();
    for (denom, sessions) in [(1u64, N), (10, N * 10)] {
        let sim = world_with(sessions, |cfg| cfg.sample_denominator = denom);
        let col = run_pipeline(&sim);
        lines.push_str(&format!(
            "1-in-{denom:<3} ({} kept): {}\n",
            col.total,
            headline(&col)
        ));
    }
    emit("Ablation A5 — connection sampling", &lines);
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    let sim = world_with(BENCH_SESSIONS, |_| {});
    for secs in [1u64, 3, 10] {
        g.bench_function(&format!("a1_threshold_{secs}s"), |b| {
            b.iter(|| {
                run_with_classifier(
                    &sim,
                    ClassifierConfig {
                        inactivity_secs: secs,
                        split_rst_counts: true,
                    },
                )
                .possibly_tampered
            })
        });
    }
    let _ = collector_for(&sim);
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    emit_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
