//! Benchmarks + artifact emission for the longitudinal and protocol
//! figures: Figure 6 (hourly Post-ACK/Post-PSH series per country),
//! Figure 7(a)/(b) (IPv4-vs-IPv6 and TLS-vs-HTTP), and Figure 9
//! (per-signature hourly series, Appendix A).

use criterion::{criterion_group, Criterion};
use tamper_analysis::report;
use tamper_bench::{emit, run_pipeline, standard_world, BENCH_SESSIONS, EMIT_SESSIONS};

fn emit_artifacts() {
    let sim = standard_world(EMIT_SESSIONS);
    let col = run_pipeline(&sim);
    let view = col.view();
    emit(
        "Figure 6",
        &report::fig6(&view, &sim, &report::FIG6_COUNTRIES),
    );
    emit("Figure 7(a)", &report::fig7a(&view, &sim, 150));
    emit("Figure 7(b)", &report::fig7b(&view, &sim, 150));
    emit("Figure 9 (Appendix A)", &report::fig9(&view));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_time");
    g.sample_size(10);
    let sim = standard_world(BENCH_SESSIONS);
    let col = run_pipeline(&sim);
    let view = col.view();
    g.bench_function("fig6_render", |b| {
        b.iter(|| report::fig6(&view, &sim, &report::FIG6_COUNTRIES))
    });
    g.bench_function("fig7_render", |b| {
        b.iter(|| {
            (
                report::fig7a(&view, &sim, 50),
                report::fig7b(&view, &sim, 50),
            )
        })
    });
    g.bench_function("fig9_render", |b| b.iter(|| report::fig9(&view)));
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    emit_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
