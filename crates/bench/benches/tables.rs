//! Benchmarks + artifact emission for Table 1 (signature taxonomy and
//! §4.1 statistics), Table 2 (content categories), and Table 3 (test-list
//! coverage).

use criterion::{criterion_group, Criterion};
use tamper_analysis::report;
use tamper_bench::{emit, run_pipeline, standard_world, BENCH_SESSIONS, EMIT_SESSIONS};
use tamper_worldgen::generate_lists;

fn emit_artifacts() {
    let sim = standard_world(EMIT_SESSIONS);
    let col = run_pipeline(&sim);
    let view = col.view();
    emit("Table 1 (+ §4.1 statistics)", &report::table1(&view));
    emit("Table 2", &report::table2(&view, &sim, 3));
    let lists = generate_lists(&sim);
    emit("Table 3", &report::table3(&view, &sim, &lists, 3));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);

    let sim = standard_world(BENCH_SESSIONS);
    g.bench_function("table1_full_pipeline", |b| {
        b.iter(|| {
            let col = run_pipeline(&sim);
            report::table1(&col.view())
        })
    });

    let col = run_pipeline(&sim);
    let view = col.view();
    let lists = generate_lists(&sim);
    g.bench_function("table2_render", |b| {
        b.iter(|| report::table2(&view, &sim, 3))
    });
    g.bench_function("table3_render", |b| {
        b.iter(|| report::table3(&view, &sim, &lists, 3))
    });
    g.bench_function("testlist_generation", |b| b.iter(|| generate_lists(&sim)));
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    emit_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
