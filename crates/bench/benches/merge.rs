//! Throughput of the partial-aggregate merge pipeline: decode N per-PoP
//! `.agg` blobs and fold them into one aggregate, as `tamperscope merge`
//! does. Records decode+merge rates in `BENCH_merge.json` at the repo
//! root (set `BENCH_OUT_PATH` to write elsewhere), with the honest host
//! core count — merging is single-threaded by design, so the core count
//! documents the host, not a parallelism claim.
//!
//! The run also proves the merge identity end-to-end: the folded result
//! must re-encode to the exact bytes of the unsplit single-pass fold.

use std::time::Instant;

use tamper_analysis::{decode_agg, encode_agg, Collector};
use tamper_core::ClassifierConfig;
use tamper_worldgen::{world_fingerprint, WorldConfig, WorldSim};

const SESSIONS: u64 = 20_000;
const POPS: usize = 8;
const REPS: u32 = 20;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cfg = WorldConfig {
        sessions: SESSIONS,
        days: 2,
        catalog_size: 1_000,
        ..Default::default()
    };
    let salt = world_fingerprint(&cfg);
    let sim = WorldSim::new(cfg);
    let mk = || {
        Collector::with_salt(
            ClassifierConfig::default(),
            sim.world().len(),
            sim.config().days,
            sim.config().start_unix,
            salt,
        )
    };

    eprintln!("generating {SESSIONS} sessions into {POPS} PoP partials...");
    let mut pops: Vec<Collector> = (0..POPS).map(|_| mk()).collect();
    let mut unsplit = mk();
    sim.run(|lf| {
        pops[sim.pop_of(POPS, &lf)].observe(&lf);
        unsplit.observe(&lf);
    });
    let flows = unsplit.total;
    let want = encode_agg(unsplit.partial());

    let blobs: Vec<Vec<u8>> = pops.iter().map(|c| encode_agg(c.partial())).collect();
    let total_bytes: usize = blobs.iter().map(Vec::len).sum();
    eprintln!(
        "{POPS} partials, {flows} flows, {} KiB of .agg on {cores} core(s)",
        total_bytes >> 10
    );

    // Warm-up + correctness: the folded partials re-encode to the exact
    // bytes of the unsplit fold.
    let fold = || {
        let mut it = blobs.iter();
        let mut acc = decode_agg(it.next().expect("at least one blob")).expect("decode");
        for b in it {
            acc.merge(decode_agg(b).expect("decode"));
        }
        acc
    };
    assert_eq!(
        encode_agg(&fold()),
        want,
        "merged partials diverge from the unsplit fold"
    );

    let start = Instant::now();
    for _ in 0..REPS {
        let acc = fold();
        assert_eq!(acc.total, flows);
    }
    let secs = start.elapsed().as_secs_f64();
    let merges_per_sec = f64::from(REPS) * POPS as f64 / secs;
    let flows_per_sec = f64::from(REPS) * flows as f64 / secs;
    let mib_per_sec = f64::from(REPS) * total_bytes as f64 / secs / (1024.0 * 1024.0);
    eprintln!(
        "{REPS} folds in {secs:.3}s: {merges_per_sec:.0} partials/s, \
         {flows_per_sec:.0} merged flows/s, {mib_per_sec:.1} MiB/s"
    );

    let json = format!(
        "{{\n  \"bench\": \"merge\",\n  \"partials\": {POPS},\n  \"flows\": {flows},\n  \
         \"agg_bytes_total\": {total_bytes},\n  \"cores\": {cores},\n  \"runs\": [\n    \
         {{\"threads\": 1, \"reps\": {REPS}, \"secs\": {secs:.4}, \
         \"partials_per_sec\": {merges_per_sec:.0}, \"flows_per_sec\": {flows_per_sec:.0}, \
         \"mib_per_sec\": {mib_per_sec:.1}}}\n  ]\n}}\n"
    );
    let path = std::env::var("BENCH_OUT_PATH").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_merge.json").to_string()
    });
    std::fs::write(&path, &json).expect("write BENCH_merge.json");
    println!("{json}");
}
