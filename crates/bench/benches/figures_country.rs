//! Benchmarks + artifact emission for Figure 1 (signature country
//! composition), Figure 4 (per-country signature distribution), and
//! Figure 5 (per-AS match proportions).

use criterion::{criterion_group, Criterion};
use tamper_analysis::report;
use tamper_bench::{emit, run_pipeline, standard_world, BENCH_SESSIONS, EMIT_SESSIONS};

fn emit_artifacts() {
    let sim = standard_world(EMIT_SESSIONS);
    let col = run_pipeline(&sim);
    let view = col.view();
    emit("Figure 1", &report::fig1(&view, &sim, 6));
    emit("Figure 4", &report::fig4(&view, &sim, 80));
    emit("Figure 5", &report::fig5(&view, &sim, 300));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_country");
    g.sample_size(10);
    let sim = standard_world(BENCH_SESSIONS);
    let col = run_pipeline(&sim);
    let view = col.view();
    g.bench_function("fig1_render", |b| b.iter(|| report::fig1(&view, &sim, 6)));
    g.bench_function("fig4_render", |b| b.iter(|| report::fig4(&view, &sim, 20)));
    g.bench_function("fig5_render", |b| b.iter(|| report::fig5(&view, &sim, 50)));
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    emit_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
