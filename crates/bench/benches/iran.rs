//! Benchmark + artifact emission for Figure 8: the Iran September-2022
//! case study, run as its own 17-day scenario world.

use criterion::{criterion_group, Criterion};
use tamper_analysis::report;
use tamper_bench::{emit, iran_world, run_pipeline};

fn emit_artifact() {
    let sim = iran_world(40_000);
    let col = run_pipeline(&sim);
    emit("Figure 8 (Iran, Sept 2022)", &report::fig8(&col.view()));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("iran");
    g.sample_size(10);
    let sim = iran_world(3_000);
    g.bench_function("iran_scenario_pipeline", |b| b.iter(|| run_pipeline(&sim)));
    let col = run_pipeline(&sim);
    let view = col.view();
    g.bench_function("fig8_render", |b| b.iter(|| report::fig8(&view)));
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    emit_artifact();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
