//! Shared harness for the benchmark targets: standard worlds, collectors,
//! and pre-generated flow batches, so each Criterion target measures one
//! paper artifact's regeneration cost and prints the artifact once.

use tamper_analysis::Collector;
use tamper_core::ClassifierConfig;
use tamper_worldgen::{LabeledFlow, Scenario, WorldConfig, WorldSim, SEP13_2022_UNIX};

/// Sessions used when *emitting* an artifact (larger for fidelity).
pub const EMIT_SESSIONS: u64 = 60_000;
/// Sessions used inside the measured benchmark loop (smaller for speed).
pub const BENCH_SESSIONS: u64 = 4_000;

/// Build the standard two-week world at the given scale.
pub fn standard_world(sessions: u64) -> WorldSim {
    WorldSim::new(WorldConfig {
        sessions,
        days: 7,
        catalog_size: 2_000,
        ..Default::default()
    })
}

/// Build the Iran-protest scenario world.
pub fn iran_world(sessions: u64) -> WorldSim {
    WorldSim::new(WorldConfig {
        sessions,
        days: 17,
        start_unix: SEP13_2022_UNIX,
        scenario: Scenario::IranProtest,
        catalog_size: 1_000,
        ..Default::default()
    })
}

/// A collector sized for `sim`.
pub fn collector_for(sim: &WorldSim) -> Collector {
    Collector::new(
        ClassifierConfig::default(),
        sim.world().len(),
        sim.config().days,
        sim.config().start_unix,
    )
}

/// Run the full generate → capture → classify → aggregate pipeline.
pub fn run_pipeline(sim: &WorldSim) -> Collector {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    sim.run_sharded(
        threads,
        || collector_for(sim),
        |c, lf| c.observe(&lf),
        |a, b| a.merge(b),
    )
}

/// Pre-generate labeled flows (for classifier micro-benchmarks that must
/// not measure generation).
pub fn pregenerate(sessions: u64) -> Vec<LabeledFlow> {
    let sim = standard_world(sessions);
    let mut flows = Vec::with_capacity(sessions as usize);
    sim.run(|lf| flows.push(lf));
    flows
}

/// Print a banner followed by the artifact body, so `cargo bench` output
/// doubles as an experiment log.
pub fn emit(name: &str, body: &str) {
    println!("\n================ {name} ================\n{body}");
}
