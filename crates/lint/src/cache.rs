//! Incremental analysis cache: per-file artifacts keyed by content hash.
//!
//! A cache file holds one record block per source file, keyed by the
//! file's repo-relative path and the FNV-1a 64 hash of its bytes, under
//! a header salt derived from the cache format version, the rule list,
//! both root registries, and the `Signature` variant set. Anything that
//! could change what a per-file stage produces changes the salt, and a
//! salt mismatch empties the cache wholesale. Every decode path fails
//! closed: a malformed header, a truncated block, an unknown tag, an
//! unparsable number, or a stale hash is a *miss* (the file is re-
//! analyzed from source), never a wrong answer.
//!
//! The format is line-oriented, tab-separated, with `\\`/`\t`/`\n`/`\r`
//! escapes in free-text fields — greppable on purpose, like the
//! baseline. Cached artifacts drop the token stream (`scan.code` is
//! empty when restored); the pre-normalized `norm_lines` map carries the
//! per-line text that fingerprinting needs, so warm findings are
//! byte-identical to cold ones. `MatchExpr` bodies are not cached: the
//! only rule that reads them (`exhaustive-signature-match`) runs at scan
//! time and its findings are cached as findings.

use crate::ast::{Call, FnDef, ParsedFile};
use crate::callgraph::{Sink, SinkKind};
use crate::effects::{Effect, EffectSet, EffectSite, GrowthKind, GrowthSite};
use crate::rules::{self, DiscardCand, Finding, Waiver, RULES};
use crate::{fingerprint, FileArtifacts, HOT_ROOTS, PURE_ROOTS};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Bumped whenever the record grammar or any per-file stage's semantics
/// change; part of the salt, so old caches die instantly.
pub const CACHE_VERSION: u32 = 1;

/// The header salt: version ⊕ rules ⊕ registries ⊕ signature taxonomy.
pub fn salt(ctx: &rules::ScanCtx) -> u64 {
    let mut text = format!("v{CACHE_VERSION}");
    for r in RULES {
        text.push('\u{1}');
        text.push_str(r);
    }
    for (owner, name) in HOT_ROOTS {
        text.push('\u{2}');
        text.push_str(owner);
        text.push(':');
        text.push_str(name);
    }
    for (owner, name) in PURE_ROOTS {
        text.push('\u{3}');
        text.push_str(owner);
        text.push(':');
        text.push_str(name);
    }
    for v in &ctx.signature_variants {
        text.push('\u{4}');
        text.push_str(v);
    }
    fingerprint::fnv1a64(text.as_bytes())
}

/// Escape a free-text field for one-line storage.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`esc`]; `None` on a malformed escape (fail closed).
fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Encode an `Option<String>`: `-` for `None`, `+<escaped>` for `Some`.
fn opt(o: &Option<String>) -> String {
    match o {
        None => "-".to_string(),
        Some(s) => format!("+{}", esc(s)),
    }
}

/// Invert [`opt`].
fn unopt(s: &str) -> Option<Option<String>> {
    if s == "-" {
        Some(None)
    } else {
        s.strip_prefix('+').and_then(unesc).map(Some)
    }
}

/// Map a rule string back to its static name; unknown rules fail closed.
fn static_rule(s: &str) -> Option<&'static str> {
    RULES.iter().find(|r| **r == s).copied()
}

fn sink_tag(kind: SinkKind) -> &'static str {
    match kind {
        SinkKind::Clock => "C",
        SinkKind::Rng => "R",
        SinkKind::Thread => "T",
    }
}

fn sink_from_tag(tag: &str) -> Option<SinkKind> {
    match tag {
        "C" => Some(SinkKind::Clock),
        "R" => Some(SinkKind::Rng),
        "T" => Some(SinkKind::Thread),
        _ => None,
    }
}

/// Serialize one file's artifacts to record lines (no header).
pub fn encode(art: &FileArtifacts) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    out.push(format!(
        "ok\t{}",
        if art.scan.parsed.parsed_ok { 1 } else { 0 }
    ));
    for f in &art.scan.raw {
        out.push(format!("F\t{}\t{}\t{}", f.rule, f.line, esc(&f.message)));
    }
    for f in &art.dataflow_findings {
        out.push(format!("D\t{}\t{}\t{}", f.rule, f.line, esc(&f.message)));
    }
    for (w, covered) in &art.scan.waivers {
        let lines: Vec<String> = covered.iter().map(|l| l.to_string()).collect();
        out.push(format!(
            "W\t{}\t{}\t{}\t{}",
            esc(&w.rule),
            w.line,
            esc(&w.reason),
            lines.join(",")
        ));
    }
    for s in &art.fail_closed_allocs {
        out.push(format!("X\t{}\t{}", s.line, esc(&s.what)));
    }
    for c in &art.discard_cands {
        let names: Vec<String> = c.names.iter().map(|n| esc(n)).collect();
        out.push(format!(
            "dc\t{}\t{}\t{}",
            if c.let_form { "L" } else { "O" },
            c.line,
            names.join(",")
        ));
    }
    for (line, text) in &art.norm_lines {
        out.push(format!("N\t{line}\t{}", esc(text)));
    }
    for (local, f) in art.scan.parsed.fns.iter().enumerate() {
        out.push(format!(
            "fn\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            esc(&f.name),
            opt(&f.owner),
            opt(&f.trait_of),
            esc(&f.ret),
            f.start_line,
            f.end_line,
            f.body.0,
            f.body.1
        ));
        for (ty, name) in f.params.iter().zip(&f.param_names) {
            out.push(format!("P\t{}\t{}", esc(ty), esc(name)));
        }
        for c in &f.calls {
            out.push(format!(
                "C\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                c.line,
                esc(&c.name),
                opt(&c.qualifier),
                if c.method { 1 } else { 0 },
                if c.recv_self { 1 } else { 0 },
                c.args,
                opt(&c.recv_type)
            ));
        }
        out.push(format!("B\t{}", art.fn_effects[local].0));
        for s in &art.fn_sinks[local] {
            out.push(format!(
                "S\t{}\t{}\t{}",
                sink_tag(s.kind),
                s.line,
                esc(&s.what)
            ));
        }
        for s in &art.fn_sites[local] {
            out.push(format!(
                "E\t{}\t{}\t{}",
                s.effect.name(),
                s.line,
                esc(&s.what)
            ));
        }
        for s in &art.fn_allocs[local] {
            out.push(format!("A\t{}\t{}", s.line, esc(&s.what)));
        }
        for s in &art.fn_growth[local] {
            out.push(format!(
                "G\t{}\t{}\t{}\t{}",
                esc(&s.field),
                s.line,
                s.kind.tag(),
                esc(&s.what)
            ));
        }
    }
    out
}

/// Rebuild artifacts from record lines. Any anomaly returns `None` and
/// the caller treats the entry as a miss. The restored `scan.code` is
/// empty; `norm_lines` carries fingerprint text instead.
pub fn decode(path: &str, lines: &[String]) -> Option<FileArtifacts> {
    let mut parsed_ok: Option<bool> = None;
    let mut raw: Vec<Finding> = Vec::new();
    let mut dataflow_findings: Vec<Finding> = Vec::new();
    let mut waivers: Vec<(Waiver, BTreeSet<u32>)> = Vec::new();
    let mut fail_closed_allocs = Vec::new();
    let mut discard_cands: Vec<DiscardCand> = Vec::new();
    let mut norm_lines: BTreeMap<u32, String> = BTreeMap::new();
    let mut fns: Vec<FnDef> = Vec::new();
    let mut fn_sinks: Vec<Vec<Sink>> = Vec::new();
    let mut fn_effects: Vec<EffectSet> = Vec::new();
    let mut fn_sites: Vec<Vec<EffectSite>> = Vec::new();
    let mut fn_allocs: Vec<Vec<crate::dataflow::AllocSite>> = Vec::new();
    let mut fn_growth: Vec<Vec<GrowthSite>> = Vec::new();

    for line in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.as_slice() {
            ["ok", v] => parsed_ok = Some(*v == "1"),
            ["F", rule, line, msg] | ["D", rule, line, msg] => {
                let f = Finding::new(path, line.parse().ok()?, static_rule(rule)?, unesc(msg)?);
                if fields[0] == "F" {
                    raw.push(f);
                } else {
                    dataflow_findings.push(f);
                }
            }
            ["W", rule, line, reason, covered] => {
                let mut set: BTreeSet<u32> = BTreeSet::new();
                if !covered.is_empty() {
                    for part in covered.split(',') {
                        set.insert(part.parse().ok()?);
                    }
                }
                waivers.push((
                    Waiver {
                        rule: unesc(rule)?,
                        line: line.parse().ok()?,
                        reason: unesc(reason)?,
                    },
                    set,
                ));
            }
            ["X", line, what] => fail_closed_allocs.push(crate::dataflow::AllocSite {
                line: line.parse().ok()?,
                what: unesc(what)?,
            }),
            ["dc", form, line, names] => {
                let let_form = match *form {
                    "L" => true,
                    "O" => false,
                    _ => return None,
                };
                let mut parsed_names = Vec::new();
                if !names.is_empty() {
                    for part in names.split(',') {
                        parsed_names.push(unesc(part)?);
                    }
                }
                discard_cands.push(DiscardCand {
                    line: line.parse().ok()?,
                    let_form,
                    names: parsed_names,
                });
            }
            ["N", line, text] => {
                norm_lines.insert(line.parse().ok()?, unesc(text)?);
            }
            ["fn", name, owner, trait_of, ret, start, end, b0, b1] => {
                fns.push(FnDef {
                    name: unesc(name)?,
                    owner: unopt(owner)?,
                    trait_of: unopt(trait_of)?,
                    params: Vec::new(),
                    param_names: Vec::new(),
                    ret: unesc(ret)?,
                    start_line: start.parse().ok()?,
                    end_line: end.parse().ok()?,
                    body: (b0.parse().ok()?, b1.parse().ok()?),
                    calls: Vec::new(),
                    matches: Vec::new(),
                });
                fn_sinks.push(Vec::new());
                fn_effects.push(EffectSet::EMPTY);
                fn_sites.push(Vec::new());
                fn_allocs.push(Vec::new());
                fn_growth.push(Vec::new());
            }
            ["P", ty, name] => {
                let f = fns.last_mut()?;
                f.params.push(unesc(ty)?);
                f.param_names.push(unesc(name)?);
            }
            ["C", line, name, qual, method, recv_self, args, recv_type] => {
                fns.last_mut()?.calls.push(Call {
                    line: line.parse().ok()?,
                    name: unesc(name)?,
                    qualifier: unopt(qual)?,
                    method: *method == "1",
                    recv_self: *recv_self == "1",
                    args: args.parse().ok()?,
                    recv_type: unopt(recv_type)?,
                });
            }
            ["B", bits] => {
                if fn_effects.is_empty() {
                    return None;
                }
                let i = fn_effects.len() - 1;
                fn_effects[i] = EffectSet(bits.parse().ok()?);
            }
            ["S", kind, line, what] => {
                fn_sinks.last_mut()?.push(Sink {
                    kind: sink_from_tag(kind)?,
                    line: line.parse().ok()?,
                    what: unesc(what)?,
                });
            }
            ["E", effect, line, what] => {
                fn_sites.last_mut()?.push(EffectSite {
                    effect: Effect::from_name(effect)?,
                    line: line.parse().ok()?,
                    what: unesc(what)?,
                });
            }
            ["A", line, what] => {
                fn_allocs.last_mut()?.push(crate::dataflow::AllocSite {
                    line: line.parse().ok()?,
                    what: unesc(what)?,
                });
            }
            ["G", field, line, kind, what] => {
                fn_growth.last_mut()?.push(GrowthSite {
                    field: unesc(field)?,
                    line: line.parse().ok()?,
                    kind: GrowthKind::from_tag(kind)?,
                    what: unesc(what)?,
                });
            }
            _ => return None,
        }
    }

    let parsed_ok = parsed_ok?;
    Some(FileArtifacts {
        scan: rules::FileScan {
            path: path.to_string(),
            scope: rules::scope_for(path),
            raw,
            waivers,
            code: Vec::new(),
            parsed: ParsedFile { fns, parsed_ok },
        },
        fn_sinks,
        fn_effects,
        fn_sites,
        fn_allocs,
        fn_growth,
        fail_closed_allocs,
        dataflow_findings,
        discard_cands,
        norm_lines,
    })
}

/// The on-disk store. `prev` holds what the cache file contained; `next`
/// accumulates this run's entries (hits carried over, misses re-encoded)
/// so files that vanished from the tree age out on save.
pub struct Store {
    salt: u64,
    prev: BTreeMap<String, (u64, Vec<String>)>,
    next: BTreeMap<String, (u64, Vec<String>)>,
}

impl Store {
    /// A store with no prior entries (cache disabled or cold).
    pub fn empty(salt: u64) -> Store {
        Store {
            salt,
            prev: BTreeMap::new(),
            next: BTreeMap::new(),
        }
    }

    /// Load a cache file. A missing file, bad header, salt mismatch, or
    /// any structural damage yields an empty store (fail closed).
    pub fn load(path: &Path, salt: u64) -> Store {
        let empty = Store::empty(salt);
        let Ok(text) = std::fs::read_to_string(path) else {
            return empty;
        };
        let mut lines = text.lines();
        let Some(header) = lines.next() else {
            return empty;
        };
        if header != format!("tamperlint-cache v{CACHE_VERSION} {salt:016x}") {
            return empty;
        }
        let mut prev: BTreeMap<String, (u64, Vec<String>)> = BTreeMap::new();
        let mut cur: Option<(String, u64, usize, Vec<String>)> = None;
        for line in lines {
            match &mut cur {
                Some((_, _, want, records)) => {
                    records.push(line.to_string());
                    if records.len() == *want {
                        let (p, h, _, r) = cur.take().unwrap();
                        prev.insert(p, (h, r));
                    }
                }
                None => {
                    let fields: Vec<&str> = line.split('\t').collect();
                    let ["file", p, h, n] = fields.as_slice() else {
                        return empty;
                    };
                    let (Some(p), Ok(h), Ok(n)) =
                        (unesc(p), u64::from_str_radix(h, 16), n.parse::<usize>())
                    else {
                        return empty;
                    };
                    if n == 0 {
                        return empty; // every block has at least `ok`
                    }
                    cur = Some((p, h, n, Vec::new()));
                }
            }
        }
        if cur.is_some() {
            return empty; // truncated final block
        }
        Store {
            salt,
            prev,
            next: BTreeMap::new(),
        }
    }

    /// Look up a file by (path, content hash). On a hit the decoded
    /// artifacts are returned and the entry is carried into this run's
    /// save set; a hash mismatch or decode failure is a miss.
    pub fn take_hit(&mut self, path: &str, hash: u64) -> Option<FileArtifacts> {
        let (stored_hash, records) = self.prev.get(path)?;
        if *stored_hash != hash {
            return None;
        }
        let art = decode(path, records)?;
        self.next.insert(path.to_string(), (hash, records.clone()));
        Some(art)
    }

    /// Record a freshly built file for this run's save set.
    pub fn record(&mut self, path: &str, hash: u64, art: &FileArtifacts) {
        self.next.insert(path.to_string(), (hash, encode(art)));
    }

    /// Write the store. Best-effort: an unwritable target is ignored (the
    /// next run is simply cold).
    pub fn save(&self, path: &Path) {
        let mut out = format!("tamperlint-cache v{CACHE_VERSION} {:016x}\n", self.salt);
        for (p, (hash, records)) in &self.next {
            out.push_str(&format!(
                "file\t{}\t{hash:016x}\t{}\n",
                esc(p),
                records.len()
            ));
            for r in records {
                out.push_str(r);
                out.push('\n');
            }
        }
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(path, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StageAcc;

    const SRC: &str = "use std::time::Instant;\n\
        // tamperlint: allow(ambient-clock) — test fixture\n\
        pub fn parse_header(buf: &[u8]) -> u32 {\n\
            let t = Instant::now();\n\
            buf.len() as u32\n\
        }\n";

    fn sample() -> FileArtifacts {
        let ctx = rules::ScanCtx::default();
        let mut acc = StageAcc::default();
        crate::build_artifacts(
            "crates/analysis/src/sample.rs",
            SRC,
            rules::scope_for("crates/analysis/src/sample.rs"),
            &ctx,
            &mut acc,
        )
    }

    #[test]
    fn round_trip_preserves_artifacts() {
        let art = sample();
        let lines = encode(&art);
        let back = decode(&art.scan.path, &lines).expect("decode");
        assert_eq!(back.scan.parsed.parsed_ok, art.scan.parsed.parsed_ok);
        assert_eq!(back.scan.raw.len(), art.scan.raw.len());
        for (a, b) in art.scan.raw.iter().zip(&back.scan.raw) {
            assert_eq!((a.rule, a.line, &a.message), (b.rule, b.line, &b.message));
        }
        assert_eq!(back.scan.waivers, art.scan.waivers);
        assert_eq!(back.scan.parsed.fns.len(), art.scan.parsed.fns.len());
        for (a, b) in art.scan.parsed.fns.iter().zip(&back.scan.parsed.fns) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.owner, b.owner);
            assert_eq!(a.params, b.params);
            assert_eq!(a.calls.len(), b.calls.len());
        }
        assert_eq!(back.fn_effects.len(), art.fn_effects.len());
        for (a, b) in art.fn_effects.iter().zip(&back.fn_effects) {
            assert_eq!(a.0, b.0);
        }
        assert_eq!(back.norm_lines, art.norm_lines);
        assert_eq!(back.dataflow_findings.len(), art.dataflow_findings.len());
        // Cached artifacts drop the token stream by design.
        assert!(back.scan.code.is_empty());
    }

    #[test]
    fn corrupted_record_is_a_miss() {
        let art = sample();
        let mut lines = encode(&art);
        let last = lines.len() - 1;
        lines[last] = "Z\tgarbage".to_string();
        assert!(decode(&art.scan.path, &lines).is_none());
        // A bad number fails closed too.
        let mut lines = encode(&art);
        lines[0] = "ok\t1".to_string();
        lines.push("N\tnot-a-number\ttext".to_string());
        assert!(decode(&art.scan.path, &lines).is_none());
    }

    #[test]
    fn store_hit_requires_matching_hash() {
        let art = sample();
        let mut store = Store::empty(7);
        store.record(&art.scan.path, 42, &art);
        // Simulate a reload: move next → prev.
        let mut reloaded = Store::empty(7);
        reloaded.prev = store.next.clone();
        assert!(reloaded.take_hit(&art.scan.path, 41).is_none());
        assert!(reloaded.take_hit(&art.scan.path, 42).is_some());
        assert!(reloaded
            .take_hit("crates/analysis/src/other.rs", 42)
            .is_none());
    }

    #[test]
    fn load_fails_closed_on_header_damage() {
        let dir = std::env::temp_dir().join("tamperlint-cache-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache-header");
        let art = sample();
        let mut store = Store::empty(9);
        store.record(&art.scan.path, 42, &art);
        store.save(&path);
        // Pristine reload sees the entry.
        let mut ok = Store::load(&path, 9);
        assert!(ok.take_hit(&art.scan.path, 42).is_some());
        // Salt mismatch (registry or version drift) empties the store.
        let mut bad_salt = Store::load(&path, 10);
        assert!(bad_salt.take_hit(&art.scan.path, 42).is_none());
        // A truncated file empties the store.
        let text = std::fs::read_to_string(&path).unwrap();
        let truncated: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, truncated).unwrap();
        let mut bad = Store::load(&path, 9);
        assert!(bad.take_hit(&art.scan.path, 42).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn escape_round_trips() {
        for s in [
            "plain",
            "tab\there",
            "line\nbreak",
            "back\\slash",
            "mix\t\\\n\r",
        ] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s));
        }
        assert!(unesc("dangling\\").is_none());
        assert!(unesc("bad\\q").is_none());
    }
}
