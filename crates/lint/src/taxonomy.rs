//! The taxonomy consistency checker.
//!
//! Table 1 of the paper — the 19-signature taxonomy — exists in three places
//! that can drift apart: the `Signature` enum in `crates/core/src/signature.rs`,
//! the golden classification corpus in `tests/fixtures/golden.verdicts.jsonl`,
//! and the prose in `DESIGN.md`. This checker parses the enum *from source*
//! (tokens, not rustc) and cross-checks all three:
//!
//! - `Signature::ALL` lists every declared variant exactly once, in
//!   declaration order, and its declared length matches;
//! - `label()`, `stage()`, `description()` and `prior_work()` each cover
//!   every variant explicitly (no wildcard arm hiding a new variant);
//! - labels are unique — two variants must not share a flag-sequence;
//! - every golden verdict's `signature` is a known label and its `stage`
//!   agrees with the enum's stage mapping; every label is exercised by the
//!   golden corpus at least once;
//! - `DESIGN.md` still states the right signature count.

use crate::lexer::{lex, strip_test_modules, Tok, TokKind};
use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

const SIG_FILE: &str = "crates/core/src/signature.rs";
const GOLDEN_FILE: &str = "tests/fixtures/golden.verdicts.jsonl";
const DESIGN_FILE: &str = "DESIGN.md";

/// Run the taxonomy checks against a repo root on disk.
pub fn check(root: &Path) -> Vec<Finding> {
    let read = |rel: &str| match std::fs::read_to_string(root.join(rel)) {
        Ok(s) => Ok(s),
        Err(e) => Err(Finding::new(
            rel,
            0,
            "taxonomy",
            format!("cannot read {rel}: {e}"),
        )),
    };
    let (sig, golden, design) = match (read(SIG_FILE), read(GOLDEN_FILE), read(DESIGN_FILE)) {
        (Ok(s), Ok(g), Ok(d)) => (s, g, d),
        (s, g, d) => {
            return [s.err(), g.err(), d.err()].into_iter().flatten().collect();
        }
    };
    check_sources(&sig, &golden, &design)
}

/// Run the taxonomy checks against in-memory sources (used by tests to
/// exercise failure modes without touching the real files).
pub fn check_sources(sig_src: &str, golden: &str, design: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let parsed = match parse_signature_source(sig_src) {
        Ok(p) => p,
        Err(f) => {
            findings.push(f);
            return findings;
        }
    };
    check_enum_consistency(&parsed, &mut findings);
    check_golden(&parsed, golden, &mut findings);
    check_design(&parsed, design, &mut findings);
    findings.sort();
    findings
}

/// What the source-level parse of `signature.rs` recovers.
#[derive(Debug, Default)]
struct ParsedTaxonomy {
    /// `Signature` variants in declaration order, with lines.
    variants: Vec<(String, u32)>,
    /// Declared length in `const ALL: [Signature; N]`.
    all_decl_len: Option<(usize, u32)>,
    /// `Signature::X` entries of `ALL`, in order.
    all_entries: Vec<(String, u32)>,
    /// `label()` arms: variant → (label, line).
    labels: BTreeMap<String, (String, u32)>,
    /// `stage()` arms: variant → (stage variant, line).
    stages: BTreeMap<String, (String, u32)>,
    /// Variants covered by `description()` / `prior_work()`.
    described: BTreeSet<String>,
    prior: BTreeSet<String>,
    /// Whether each match carried a wildcard `_` arm.
    label_wildcard: bool,
    stage_wildcard: bool,
    desc_wildcard: bool,
    prior_wildcard: bool,
    /// `Stage` variants and their `label()` strings.
    stage_variants: Vec<String>,
    stage_labels: BTreeMap<String, String>,
}

fn taxonomy_finding(line: u32, message: String) -> Finding {
    Finding::new(SIG_FILE, line, "taxonomy", message)
}

/// The `Signature` enum's variant names parsed from source — the
/// exhaustive-signature-match rule uses these to recognize
/// `use Signature::*`-style match arms.
pub fn signature_variant_names(src: &str) -> BTreeSet<String> {
    let toks: Vec<Tok> = strip_test_modules(lex(src))
        .into_iter()
        .filter(|t| !t.kind.is_comment())
        .collect();
    parse_enum_variants(&toks, "Signature")
        .unwrap_or_default()
        .into_iter()
        .map(|(name, _)| name)
        .collect()
}

fn parse_signature_source(src: &str) -> Result<ParsedTaxonomy, Finding> {
    let toks: Vec<Tok> = strip_test_modules(lex(src))
        .into_iter()
        .filter(|t| !t.kind.is_comment())
        .collect();
    let variants = parse_enum_variants(&toks, "Signature")
        .ok_or_else(|| taxonomy_finding(0, "cannot find `enum Signature` declaration".into()))?;
    let stage_variants = parse_enum_variants(&toks, "Stage")
        .ok_or_else(|| taxonomy_finding(0, "cannot find `enum Stage` declaration".into()))?
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    let mut p = ParsedTaxonomy {
        variants,
        stage_variants,
        ..ParsedTaxonomy::default()
    };

    let sig_impl = impl_block(&toks, "Signature")
        .ok_or_else(|| taxonomy_finding(0, "cannot find `impl Signature` block".into()))?;
    let stage_impl = impl_block(&toks, "Stage")
        .ok_or_else(|| taxonomy_finding(0, "cannot find `impl Stage` block".into()))?;

    if let Some((len, entries, line)) = parse_all_const(&toks[sig_impl.clone()], "Signature") {
        p.all_decl_len = Some((len, line));
        p.all_entries = entries;
    }

    if let Some(arms) = parse_fn_match(&toks[sig_impl.clone()], "label") {
        for arm in &arms.arms {
            if arm.wildcard {
                p.label_wildcard = true;
                continue;
            }
            for (v, line) in &arm.pattern {
                p.labels
                    .entry(v.clone())
                    .or_insert((arm.value_str.clone().unwrap_or_default(), *line));
            }
        }
    }
    if let Some(arms) = parse_fn_match(&toks[sig_impl.clone()], "stage") {
        for arm in &arms.arms {
            if arm.wildcard {
                p.stage_wildcard = true;
                continue;
            }
            for (v, line) in &arm.pattern {
                p.stages
                    .entry(v.clone())
                    .or_insert((arm.value_path.clone().unwrap_or_default(), *line));
            }
        }
    }
    for (fn_name, set, wild) in [
        ("description", &mut p.described, &mut p.desc_wildcard),
        ("prior_work", &mut p.prior, &mut p.prior_wildcard),
    ] {
        if let Some(arms) = parse_fn_match(&toks[sig_impl.clone()], fn_name) {
            for arm in &arms.arms {
                if arm.wildcard {
                    *wild = true;
                }
                for (v, _) in &arm.pattern {
                    set.insert(v.clone());
                }
            }
        }
    }
    if let Some(arms) = parse_fn_match(&toks[stage_impl], "label") {
        for arm in &arms.arms {
            for (v, _) in &arm.pattern {
                if let Some(s) = &arm.value_str {
                    p.stage_labels.insert(v.clone(), s.clone());
                }
            }
        }
    }
    Ok(p)
}

/// Find `enum <name> { … }` and return its variant identifiers.
fn parse_enum_variants(toks: &[Tok], name: &str) -> Option<Vec<(String, u32)>> {
    let mut i = 0;
    while i + 2 < toks.len() {
        if ident_at(toks, i) == Some("enum")
            && ident_at(toks, i + 1) == Some(name)
            && punct_at(toks, i + 2) == Some('{')
        {
            let close = matching_brace(toks, i + 2)?;
            let mut out = Vec::new();
            let mut j = i + 3;
            let mut depth = 0usize;
            let mut expect_variant = true;
            while j < close {
                match &toks[j].kind {
                    TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                        depth = depth.saturating_sub(1)
                    }
                    TokKind::Punct(',') if depth == 0 => expect_variant = true,
                    TokKind::Punct('#') if depth == 0 && punct_at(toks, j + 1) == Some('[') => {
                        // Variant attribute: skip `#[…]`.
                        let mut d = 0usize;
                        j += 1;
                        while j < close {
                            match &toks[j].kind {
                                TokKind::Punct('[') => d += 1,
                                TokKind::Punct(']') => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    TokKind::Ident(v) if depth == 0 && expect_variant => {
                        out.push((v.clone(), toks[j].line));
                        expect_variant = false;
                    }
                    _ => {}
                }
                j += 1;
            }
            return Some(out);
        }
        i += 1;
    }
    None
}

/// Find the inherent `impl <name> { … }` block and return its token range.
fn impl_block(toks: &[Tok], name: &str) -> Option<std::ops::Range<usize>> {
    let mut i = 0;
    while i + 2 < toks.len() {
        if ident_at(toks, i) == Some("impl")
            && ident_at(toks, i + 1) == Some(name)
            && punct_at(toks, i + 2) == Some('{')
        {
            let close = matching_brace(toks, i + 2)?;
            return Some(i + 3..close);
        }
        i += 1;
    }
    None
}

/// Parsed `const ALL` declaration: `(declared length, entries, line)`.
type AllConst = (usize, Vec<(String, u32)>, u32);

/// Parse `const ALL: [<ty>; N] = [<ty>::A, <ty>::B, …];`.
fn parse_all_const(toks: &[Tok], ty: &str) -> Option<AllConst> {
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("const") && ident_at(toks, i + 1) == Some("ALL") {
            let line = toks[i].line;
            // Declared length: the Lit between `;` and `]` of the type.
            let mut len = None;
            let mut j = i + 2;
            while j < toks.len() && punct_at(toks, j) != Some('=') {
                if let TokKind::Lit(text) = &toks[j].kind {
                    len = text
                        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
                        .parse::<usize>()
                        .ok();
                }
                j += 1;
            }
            // Entries: `<ty>::Variant` paths until the closing `]`.
            let mut entries = Vec::new();
            let mut depth = 0usize;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Ident(t)
                        if t == ty
                            && depth == 1
                            && punct_at(toks, j + 1) == Some(':')
                            && punct_at(toks, j + 2) == Some(':') =>
                    {
                        if let Some(v) = ident_at(toks, j + 3) {
                            entries.push((v.to_string(), toks[j + 3].line));
                            j += 3;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            return Some((len?, entries, line));
        }
        i += 1;
    }
    None
}

/// One parsed `match` arm inside a taxonomy accessor.
#[derive(Debug)]
struct Arm {
    /// Variant idents on the pattern side (qualifiers stripped), with lines.
    pattern: Vec<(String, u32)>,
    /// True for a `_ => …` arm.
    wildcard: bool,
    /// String-literal arm value, if any.
    value_str: Option<String>,
    /// Last ident of a path arm value (`Stage::PostSyn` → `PostSyn`).
    value_path: Option<String>,
}

struct FnMatch {
    arms: Vec<Arm>,
}

/// Parse the single `match self { … }` inside `fn <name>`.
fn parse_fn_match(toks: &[Tok], fn_name: &str) -> Option<FnMatch> {
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("fn") && ident_at(toks, i + 1) == Some(fn_name) {
            // Find the `match` keyword, then its brace.
            let mut j = i + 2;
            while j < toks.len() && ident_at(toks, j) != Some("match") {
                j += 1;
            }
            let mut open = j;
            while open < toks.len() && punct_at(toks, open) != Some('{') {
                open += 1;
            }
            let close = matching_brace(toks, open)?;
            return Some(FnMatch {
                arms: parse_arms(&toks[open + 1..close]),
            });
        }
        i += 1;
    }
    None
}

fn parse_arms(toks: &[Tok]) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // --- Pattern side: idents up to `=>`. ---
        let mut pattern = Vec::new();
        let mut wildcard = false;
        while i < toks.len() {
            if punct_at(toks, i) == Some('=') && punct_at(toks, i + 1) == Some('>') {
                i += 2;
                break;
            }
            if let Some(id) = ident_at(toks, i) {
                if id == "_" {
                    wildcard = true;
                } else if punct_at(toks, i + 1) == Some(':') && punct_at(toks, i + 2) == Some(':') {
                    // Qualifier (`Stage::` / `Signature::`): skip it.
                } else {
                    pattern.push((id.to_string(), toks[i].line));
                }
            }
            i += 1;
        }
        if i >= toks.len() && pattern.is_empty() && !wildcard {
            break;
        }
        // --- Value side: until a depth-0 comma. ---
        let mut value_str = None;
        let mut value_path = None;
        let mut depth = 0usize;
        while i < toks.len() {
            match &toks[i].kind {
                TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                    depth = depth.saturating_sub(1)
                }
                TokKind::Punct(',') if depth == 0 => {
                    i += 1;
                    break;
                }
                TokKind::Str(s) if value_str.is_none() => value_str = Some(s.clone()),
                TokKind::Ident(id) => value_path = Some(id.clone()),
                _ => {}
            }
            i += 1;
        }
        arms.push(Arm {
            pattern,
            wildcard,
            value_str,
            value_path,
        });
    }
    arms
}

fn matching_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------------

fn check_enum_consistency(p: &ParsedTaxonomy, findings: &mut Vec<Finding>) {
    let declared: Vec<&str> = p.variants.iter().map(|(v, _)| v.as_str()).collect();

    // ALL: declared length, order, duplicates, coverage.
    match p.all_decl_len {
        Some((len, line)) if len != declared.len() => findings.push(taxonomy_finding(
            line,
            format!(
                "Signature::ALL declares length {len} but the enum has {} variants",
                declared.len()
            ),
        )),
        None => findings.push(taxonomy_finding(
            0,
            "cannot find `const ALL: [Signature; N]` in `impl Signature`".into(),
        )),
        _ => {}
    }
    let all: Vec<&str> = p.all_entries.iter().map(|(v, _)| v.as_str()).collect();
    let mut seen = BTreeSet::new();
    for (v, line) in &p.all_entries {
        if !seen.insert(v.as_str()) {
            findings.push(taxonomy_finding(
                *line,
                format!("Signature::ALL lists `{v}` more than once"),
            ));
        }
        if !declared.contains(&v.as_str()) {
            findings.push(taxonomy_finding(
                *line,
                format!("Signature::ALL lists `{v}`, which is not a declared variant"),
            ));
        }
    }
    for (v, line) in &p.variants {
        if !all.contains(&v.as_str()) {
            findings.push(taxonomy_finding(
                *line,
                format!("variant `{v}` is missing from Signature::ALL"),
            ));
        }
    }
    if seen.len() == declared.len() && all != declared {
        findings.push(taxonomy_finding(
            p.all_decl_len.map(|(_, l)| l).unwrap_or(0),
            "Signature::ALL is not in declaration order (index() depends on it)".into(),
        ));
    }

    // Accessor coverage: every variant must have an explicit arm.
    for (what, covered, wildcard) in [
        (
            "label()",
            p.labels.keys().cloned().collect::<BTreeSet<_>>(),
            p.label_wildcard,
        ),
        (
            "stage()",
            p.stages.keys().cloned().collect::<BTreeSet<_>>(),
            p.stage_wildcard,
        ),
        ("description()", p.described.clone(), p.desc_wildcard),
        ("prior_work()", p.prior.clone(), p.prior_wildcard),
    ] {
        if wildcard {
            findings.push(taxonomy_finding(
                0,
                format!("{what} has a wildcard `_` arm; new variants would be silently absorbed"),
            ));
        }
        for (v, line) in &p.variants {
            if !covered.contains(v) {
                findings.push(taxonomy_finding(
                    *line,
                    format!("variant `{v}` has no explicit {what} arm"),
                ));
            }
        }
    }

    // Labels: unique flag-sequences.
    let mut by_label: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (v, (label, _)) in &p.labels {
        by_label.entry(label.as_str()).or_default().push(v.as_str());
    }
    for (label, vs) in by_label {
        if vs.len() > 1 {
            findings.push(taxonomy_finding(
                p.labels[vs[0]].1,
                format!(
                    "duplicate flag-sequence label {label:?} shared by variants {}",
                    vs.join(", ")
                ),
            ));
        }
    }

    // Stage values must name real Stage variants.
    for (v, (stage, line)) in &p.stages {
        if !p.stage_variants.iter().any(|s| s == stage) {
            findings.push(taxonomy_finding(
                *line,
                format!("variant `{v}` maps to unknown stage `{stage}`"),
            ));
        }
    }
}

fn check_golden(p: &ParsedTaxonomy, golden: &str, findings: &mut Vec<Finding>) {
    // label → stage label expected for that signature.
    let mut label_stage: BTreeMap<&str, Option<&str>> = BTreeMap::new();
    for (v, (label, _)) in &p.labels {
        let stage_label = p
            .stages
            .get(v)
            .and_then(|(sv, _)| p.stage_labels.get(sv))
            .map(String::as_str);
        label_stage.insert(label.as_str(), stage_label);
    }
    let mut exercised: BTreeSet<&str> = BTreeSet::new();
    for (idx, line) in golden.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        if line.trim().is_empty() {
            continue;
        }
        let sig = json_str_field(line, "signature");
        let stage = json_str_field(line, "stage");
        let Some(sig) = sig else {
            findings.push(Finding::new(
                GOLDEN_FILE,
                lineno,
                "taxonomy",
                "golden verdict has no `signature` field".into(),
            ));
            continue;
        };
        let Some(sig) = sig else { continue }; // null: not tampered
        match label_stage.get(sig.as_str()) {
            None => findings.push(Finding::new(
                GOLDEN_FILE,
                lineno,
                "taxonomy",
                format!("golden verdict uses unknown signature label {sig:?}"),
            )),
            Some(expected_stage) => {
                if let Some(k) = label_stage.keys().find(|k| **k == sig.as_str()) {
                    exercised.insert(k);
                }
                let got = stage.flatten();
                if got.as_deref() != *expected_stage {
                    findings.push(Finding::new(
                        GOLDEN_FILE,
                        lineno,
                        "taxonomy",
                        format!(
                            "golden verdict stage {:?} disagrees with signature.rs stage {:?} \
                             for {sig:?}",
                            got.as_deref().unwrap_or("null"),
                            expected_stage.unwrap_or("?")
                        ),
                    ));
                }
            }
        }
    }
    for (v, (label, line)) in &p.labels {
        if !exercised.contains(label.as_str()) {
            findings.push(Finding::new(
                GOLDEN_FILE,
                0,
                "taxonomy",
                format!(
                    "signature `{v}` ({label}) is never exercised by the golden corpus \
                     (declared at {SIG_FILE}:{line})"
                ),
            ));
        }
    }
}

fn check_design(p: &ParsedTaxonomy, design: &str, findings: &mut Vec<Finding>) {
    let n = p.variants.len();
    let wanted = [
        format!("{n} signatures"),
        format!("{n}-signature"),
        format!("taxonomy of {n}"),
    ];
    if !wanted.iter().any(|w| design.contains(w)) {
        findings.push(Finding::new(
            DESIGN_FILE,
            0,
            "taxonomy",
            format!("DESIGN.md never states the taxonomy size ({n}); expected one of {wanted:?}"),
        ));
    }
}

/// Extract a JSON string field from one flat object line.
///
/// Returns `None` if the key is absent, `Some(None)` for `"key":null`, and
/// `Some(Some(value))` for a string value (decoding `\"` and `\\`).
fn json_str_field(line: &str, key: &str) -> Option<Option<String>> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    if rest.starts_with("null") {
        return Some(None);
    }
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(Some(out)),
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => break,
            },
            other => out.push(other),
        }
    }
    Some(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_field_extraction() {
        let line = r#"{"a":"x","signature":"⟨SYN → ∅⟩","stage":null}"#;
        assert_eq!(
            json_str_field(line, "signature"),
            Some(Some("⟨SYN → ∅⟩".to_string()))
        );
        assert_eq!(json_str_field(line, "stage"), Some(None));
        assert_eq!(json_str_field(line, "missing"), None);
    }

    #[test]
    fn parses_the_real_signature_source() {
        let src = include_str!("../../core/src/signature.rs");
        let p = parse_signature_source(src).expect("parse");
        assert_eq!(p.variants.len(), 19);
        assert_eq!(p.all_decl_len.map(|(n, _)| n), Some(19));
        assert_eq!(p.all_entries.len(), 19);
        assert_eq!(p.labels.len(), 19);
        assert_eq!(p.stages.len(), 19);
        assert_eq!(p.stage_variants.len(), 4);
        assert_eq!(
            p.stage_labels.get("PostData").map(String::as_str),
            Some("Post-Multiple-Data")
        );
        assert_eq!(
            p.labels.get("PshRstZero").map(|(l, _)| l.as_str()),
            Some("⟨PSH+ACK → RST; RST₀⟩")
        );
    }
}
