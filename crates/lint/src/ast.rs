//! A lightweight recursive-descent parser over the lexer's token stream.
//!
//! This is deliberately not a full Rust grammar: it recovers just the
//! structure the call-graph rules need — items (`mod`/`impl`/`trait`/`fn`),
//! function signatures (name, owner type, flattened parameter and return
//! types), the call expressions and `match` expressions inside each body —
//! and records source line spans for everything. Anything it cannot parse
//! it skips conservatively; a file whose item structure loses sync is
//! marked `parsed_ok = false` and downstream rules must fail closed
//! (treat the whole file as in scope rather than silently exempting it).

use crate::lexer::{Tok, TokKind};

/// One parsed function (free function, inherent/trait method, or trait
/// default method). Nested `fn` items are folded into the enclosing
/// function's body: their calls and findings are attributed to the outer
/// function, which is the conservative choice for reachability.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type or `trait` name, if any.
    pub owner: Option<String>,
    /// The trait an enclosing `impl Trait for Type` block implements, if
    /// any — `None` for inherent impls and trait declarations.
    pub trait_of: Option<String>,
    /// Flattened type text per parameter (pattern stripped); a bare
    /// `self` receiver becomes `"Self"`.
    pub params: Vec<String>,
    /// Bound name per parameter, aligned with `params`: the pattern's
    /// binding ident (`self` for receivers, the last ident for `mut x`,
    /// `""` when the pattern binds nothing recoverable).
    pub param_names: Vec<String>,
    /// Flattened return type text, `""` when the function returns unit.
    pub ret: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: u32,
    /// 1-based line of the closing brace (or of the `;` for bodyless
    /// trait declarations).
    pub end_line: u32,
    /// Token index range of the body within the code-token slice given to
    /// [`parse`] (empty for bodyless declarations).
    pub body: (usize, usize),
    /// Call expressions found in the body.
    pub calls: Vec<Call>,
    /// `match` expressions found in the body.
    pub matches: Vec<MatchExpr>,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// 1-based source line of the called name.
    pub line: u32,
    /// Last path segment (the function or method name).
    pub name: String,
    /// The path segment immediately before `::name`, when present
    /// (`Packet::parse` → `Some("Packet")`, `tls::parse_sni` →
    /// `Some("tls")`).
    pub qualifier: Option<String>,
    /// True for `.name(...)` method-call syntax.
    pub method: bool,
    /// True for the `self.name(...)` form — the receiver is statically
    /// the enclosing impl's type, so resolution can stay in-owner.
    pub recv_self: bool,
    /// Number of arguments at the call site (receiver excluded). Rust
    /// has no overloading, so resolution can require candidates to match.
    pub args: usize,
    /// The receiver's type name for `x.name(...)` calls, when `x` is a
    /// local/parameter whose type the body makes apparent (`let x: T`,
    /// `let x = T::new(...)`, a `T`-typed parameter).
    pub recv_type: Option<String>,
}

/// One `match` expression and its arms.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// The arms, in source order.
    pub arms: Vec<Arm>,
}

/// One match arm: the pattern's tokens (guard excluded — everything after
/// a top-level `if` belongs to the guard, not the pattern).
#[derive(Debug, Clone)]
pub struct Arm {
    /// 1-based line the pattern starts on.
    pub line: u32,
    /// Pattern tokens in order.
    pub pat: Vec<PatTok>,
}

/// One token of a match-arm pattern.
#[derive(Debug, Clone)]
pub struct PatTok {
    /// Rendered token text (`ident`, one punct char, or literal text).
    pub text: String,
    /// True when the token is an identifier.
    pub ident: bool,
    /// 1-based source line.
    pub line: u32,
}

/// The parsed shape of one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Every function found, in source order.
    pub fns: Vec<FnDef>,
    /// False when the item parser lost sync somewhere; callers must fail
    /// closed (assume any line may belong to any function).
    pub parsed_ok: bool,
}

impl ParsedFile {
    /// The function whose span contains `line`, if any. Spans never
    /// overlap except for nested fns (folded into the outer span), so the
    /// innermost (= last-starting) match is returned.
    pub fn fn_at_line(&self, line: u32) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.start_line <= line && line <= f.end_line)
            .map(|(i, _)| i)
            .next_back()
    }
}

/// Keywords that look like `name(` but are not calls.
const NON_CALL_KEYWORDS: [&str; 16] = [
    "if", "else", "while", "match", "for", "return", "loop", "in", "as", "let", "move", "unsafe",
    "ref", "mut", "box", "await",
];

/// Parse a file's code tokens (comments already removed, `#[cfg(test)]`
/// modules already stripped) into its item structure.
pub fn parse(code: &[Tok]) -> ParsedFile {
    let mut p = Parser {
        t: code,
        fns: Vec::new(),
        ok: true,
    };
    p.items(0, code.len(), None, None);
    ParsedFile {
        fns: p.fns,
        parsed_ok: p.ok,
    }
}

struct Parser<'a> {
    t: &'a [Tok],
    fns: Vec<FnDef>,
    ok: bool,
}

impl Parser<'_> {
    fn ident(&self, i: usize) -> Option<&str> {
        match self.t.get(i).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize) -> Option<char> {
        match self.t.get(i).map(|t| &t.kind) {
            Some(TokKind::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    fn line(&self, i: usize) -> u32 {
        self.t.get(i).map_or(0, |t| t.line)
    }

    /// Index of the brace matching the `{` at `open`, or `end` (with the
    /// lost-sync flag set) when unbalanced.
    fn match_brace(&mut self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        for i in open..end {
            match self.punct(i) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.ok = false;
        end
    }

    /// Skip a generic-argument block starting at the `<` at `pos`;
    /// returns the index after the matching `>`. Arrows (`->`, `=>`) and
    /// shifts are guarded by checking the preceding token.
    fn skip_angles(&self, pos: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = pos;
        while i < end {
            match self.punct(i) {
                Some('<') => depth += 1,
                Some('>') if !matches!(self.punct(i.wrapping_sub(1)), Some('-') | Some('=')) => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Skip one non-fn item starting at `pos`: ends after a `;` at
    /// depth 0 or after the close of a `{ … }` opened at depth 0.
    fn skip_item(&mut self, pos: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = pos;
        while i < end {
            match self.punct(i) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some(';') if depth == 0 => return i + 1,
                Some('{') if depth == 0 => {
                    let close = self.match_brace(i, end);
                    return (close + 1).min(end);
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Parse the items in `pos..end` under the given impl/trait owner and
    /// (for `impl Trait for Type` blocks) the implemented trait's name.
    fn items(&mut self, mut pos: usize, end: usize, owner: Option<&str>, trait_of: Option<&str>) {
        while pos < end {
            match (self.ident(pos), self.punct(pos)) {
                (_, Some('#')) => {
                    // `#[attr]` / `#![attr]`.
                    let mut i = pos + 1;
                    if self.punct(i) == Some('!') {
                        i += 1;
                    }
                    if self.punct(i) == Some('[') {
                        let mut depth = 0i32;
                        while i < end {
                            match self.punct(i) {
                                Some('[') => depth += 1,
                                Some(']') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            i += 1;
                        }
                    }
                    pos = i + 1;
                }
                (Some("pub"), _) => {
                    pos += 1;
                    if self.punct(pos) == Some('(') {
                        // `pub(crate)`, `pub(super)`, `pub(in path)`.
                        while pos < end && self.punct(pos) != Some(')') {
                            pos += 1;
                        }
                        pos += 1;
                    }
                }
                (Some("unsafe"), _) | (Some("async"), _) | (Some("default"), _) => pos += 1,
                (Some("const"), _) if self.ident(pos + 1) == Some("fn") => pos += 1,
                (Some("extern"), _) => {
                    pos += 1;
                    if matches!(self.t.get(pos).map(|t| &t.kind), Some(TokKind::Str(_))) {
                        pos += 1;
                    }
                    if self.ident(pos) == Some("crate") {
                        pos = self.skip_item(pos, end);
                    }
                }
                (Some("mod"), _) => {
                    // `mod name { … }` or `mod name;`.
                    let mut i = pos + 2;
                    if self.punct(i) == Some('{') {
                        let close = self.match_brace(i, end);
                        self.items(i + 1, close, owner, trait_of);
                        pos = close + 1;
                    } else {
                        while i < end && self.punct(i) != Some(';') {
                            i += 1;
                        }
                        pos = i + 1;
                    }
                }
                (Some("impl"), _) => {
                    // `impl[<…>] [Trait for] Type[<…>] [where …] { … }`.
                    let mut i = pos + 1;
                    if self.punct(i) == Some('<') {
                        i = self.skip_angles(i, end);
                    }
                    let mut ty: Option<String> = None;
                    let mut tr: Option<String> = None;
                    while i < end {
                        if self.punct(i) == Some('{') {
                            break;
                        }
                        if self.punct(i) == Some('<') {
                            i = self.skip_angles(i, end);
                            continue;
                        }
                        if let Some(name) = self.ident(i) {
                            if name == "where" {
                                while i < end && self.punct(i) != Some('{') {
                                    if self.punct(i) == Some('<') {
                                        i = self.skip_angles(i, end);
                                    } else {
                                        i += 1;
                                    }
                                }
                                break;
                            }
                            if name == "for" {
                                // Everything before `for` was the trait path;
                                // its last segment is the trait name.
                                tr = ty.take();
                            } else if name != "dyn" {
                                ty = Some(name.to_string());
                            }
                        }
                        i += 1;
                    }
                    if self.punct(i) == Some('{') {
                        let close = self.match_brace(i, end);
                        self.items(i + 1, close, ty.as_deref(), tr.as_deref());
                        pos = close + 1;
                    } else {
                        self.ok = false;
                        pos = i + 1;
                    }
                }
                (Some("trait"), _) => {
                    let name = self.ident(pos + 1).map(str::to_string);
                    let mut i = pos + 2;
                    while i < end && self.punct(i) != Some('{') {
                        if self.punct(i) == Some('<') {
                            i = self.skip_angles(i, end);
                        } else {
                            i += 1;
                        }
                    }
                    if self.punct(i) == Some('{') {
                        let close = self.match_brace(i, end);
                        self.items(i + 1, close, name.as_deref(), None);
                        pos = close + 1;
                    } else {
                        self.ok = false;
                        pos = i + 1;
                    }
                }
                (Some("fn"), _) => pos = self.function(pos, end, owner, trait_of),
                _ => pos = self.skip_item(pos, end),
            }
        }
    }

    /// Parse one `fn` item starting at the `fn` keyword.
    fn function(
        &mut self,
        pos: usize,
        end: usize,
        owner: Option<&str>,
        trait_of: Option<&str>,
    ) -> usize {
        let start_line = self.line(pos);
        let Some(name) = self.ident(pos + 1).map(str::to_string) else {
            self.ok = false;
            return pos + 1;
        };
        let mut i = pos + 2;
        if self.punct(i) == Some('<') {
            i = self.skip_angles(i, end);
        }
        if self.punct(i) != Some('(') {
            self.ok = false;
            return i;
        }
        // Parameters: split on top-level commas, drop the pattern before
        // the first top-level `:`.
        let mut params = Vec::new();
        let mut param_names = Vec::new();
        let mut depth = 0i32;
        let open = i;
        let mut close = end;
        for j in open..end {
            match self.punct(j) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => {
                    depth -= 1;
                    if depth == 0 {
                        close = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        if close == end {
            self.ok = false;
            return end;
        }
        let mut seg_start = open + 1;
        let mut j = open + 1;
        let mut angle = 0i32;
        while j <= close {
            let boundary = j == close
                || (self.punct(j) == Some(',') && {
                    // Top-level comma: not inside nested (), [] or <…>.
                    let mut d = 0i32;
                    for k in open + 1..j {
                        match self.punct(k) {
                            Some('(') | Some('[') => d += 1,
                            Some(')') | Some(']') => d -= 1,
                            _ => {}
                        }
                    }
                    d == 0 && angle == 0
                });
            match self.punct(j) {
                Some('<') => angle += 1,
                Some('>') if !matches!(self.punct(j.wrapping_sub(1)), Some('-') | Some('=')) => {
                    angle -= 1
                }
                _ => {}
            }
            if boundary {
                if j > seg_start {
                    params.push(self.param_type(seg_start, j));
                    param_names.push(self.param_name(seg_start, j));
                }
                seg_start = j + 1;
            }
            j += 1;
        }
        i = close + 1;
        // Return type.
        let mut ret = String::new();
        if self.punct(i) == Some('-') && self.punct(i + 1) == Some('>') {
            i += 2;
            let ret_start = i;
            while i < end {
                match (self.ident(i), self.punct(i)) {
                    (Some("where"), _) | (_, Some('{')) | (_, Some(';')) => break,
                    (_, Some('<')) => i = self.skip_angles(i, end),
                    _ => i += 1,
                }
            }
            ret = self.flatten(ret_start, i);
        }
        if self.ident(i) == Some("where") {
            while i < end && self.punct(i) != Some('{') && self.punct(i) != Some(';') {
                if self.punct(i) == Some('<') {
                    i = self.skip_angles(i, end);
                } else {
                    i += 1;
                }
            }
        }
        if self.punct(i) == Some(';') {
            self.fns.push(FnDef {
                name,
                owner: owner.map(str::to_string),
                trait_of: trait_of.map(str::to_string),
                params,
                param_names,
                ret,
                start_line,
                end_line: self.line(i),
                body: (i, i),
                calls: Vec::new(),
                matches: Vec::new(),
            });
            return i + 1;
        }
        if self.punct(i) != Some('{') {
            self.ok = false;
            return i + 1;
        }
        let body_close = self.match_brace(i, end);
        let body = (i + 1, body_close);
        let mut calls = extract_calls(self.t, body.0, body.1);
        // Resolve each method call's raw receiver ident to a type name
        // via locally apparent types (parameter annotations, `let x: T`,
        // `let x = T::new(...)`, `let x = T { .. }`).
        let types = self.local_type_names(body.0, body.1, &params, &param_names);
        for call in &mut calls {
            call.recv_type = call.recv_type.take().and_then(|r| types.get(&r).cloned());
        }
        let matches = self.extract_matches(body.0, body.1);
        self.fns.push(FnDef {
            name,
            owner: owner.map(str::to_string),
            trait_of: trait_of.map(str::to_string),
            params,
            param_names,
            ret,
            start_line,
            end_line: self.line(body_close.min(end.saturating_sub(1))),
            body,
            calls,
            matches,
        });
        (body_close + 1).min(end)
    }

    /// Map of local/parameter name → apparent type name for a body range.
    /// Deliberately shallow: parameter annotations plus `let x: T …`,
    /// `let x = T::ctor(…)`, and `let x = T { … }` bindings. Anything the
    /// body does not make apparent (field reads, match results) is absent,
    /// which leaves resolution to the name-based fan-out.
    fn local_type_names(
        &self,
        start: usize,
        end: usize,
        params: &[String],
        param_names: &[String],
    ) -> std::collections::BTreeMap<String, String> {
        let mut map = std::collections::BTreeMap::new();
        for (name, ty) in param_names.iter().zip(params) {
            if !name.is_empty() && name != "self" {
                if let Some(t) = first_type_name(ty) {
                    map.insert(name.clone(), t);
                }
            }
        }
        let mut i = start;
        while i < end {
            if self.ident(i) != Some("let") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if self.ident(j) == Some("mut") {
                j += 1;
            }
            let Some(name) = self.ident(j) else {
                i += 1;
                continue;
            };
            if self.punct(j + 1) == Some(':') && self.punct(j + 2) != Some(':') {
                // `let x: T …` — first uppercase-initial ident of the
                // annotation, stopping at `=` or `;`.
                let mut k = j + 2;
                while k < end {
                    if matches!(self.punct(k), Some('=') | Some(';')) {
                        break;
                    }
                    if let Some(t) = self.ident(k) {
                        if t.starts_with(char::is_uppercase) {
                            map.insert(name.to_string(), t.to_string());
                            break;
                        }
                    }
                    k += 1;
                }
            } else if self.punct(j + 1) == Some('=') && self.punct(j + 2) != Some('=') {
                let mut k = j + 2;
                while self.punct(k) == Some('&') || self.ident(k) == Some("mut") {
                    k += 1;
                }
                if let Some(t) = self.ident(k) {
                    let ctor = self.punct(k + 1) == Some(':') && self.punct(k + 2) == Some(':');
                    let record = self.punct(k + 1) == Some('{');
                    if t.starts_with(char::is_uppercase) && (ctor || record) {
                        map.insert(name.to_string(), t.to_string());
                    }
                }
            }
            i = j + 1;
        }
        map
    }

    /// The binding name of one parameter segment: `self` for receivers,
    /// otherwise the last ident of the pattern before the top-level `:`
    /// (which handles `x`, `mut x`, and destructured `Foo(x)` shapes),
    /// or `""` when nothing recoverable is bound.
    fn param_name(&self, start: usize, end: usize) -> String {
        let mut depth = 0i32;
        let mut pat_end = end;
        for i in start..end {
            match self.punct(i) {
                Some('(') | Some('[') | Some('<') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('>') if !matches!(self.punct(i.wrapping_sub(1)), Some('-') | Some('=')) => {
                    depth -= 1
                }
                Some(':') if depth == 0 && self.punct(i + 1) != Some(':') && i > start => {
                    pat_end = i;
                    break;
                }
                _ => {}
            }
        }
        let mut last = None;
        for i in start..pat_end {
            if let Some(name) = self.ident(i) {
                if name == "self" {
                    return "self".to_string();
                }
                if name != "mut" && name != "ref" {
                    last = Some(name);
                }
            }
        }
        last.unwrap_or("").to_string()
    }

    /// Flattened text of one parameter's type (tokens after the first
    /// top-level `:`, or the whole segment for a bare receiver).
    fn param_type(&self, start: usize, end: usize) -> String {
        let mut depth = 0i32;
        for i in start..end {
            match self.punct(i) {
                Some('(') | Some('[') | Some('<') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('>') if !matches!(self.punct(i.wrapping_sub(1)), Some('-') | Some('=')) => {
                    depth -= 1
                }
                Some(':') if depth == 0 && self.punct(i + 1) != Some(':') && i > start => {
                    return self.flatten(i + 1, end);
                }
                _ => {}
            }
        }
        // No top-level colon: a `self` / `&mut self` receiver.
        if (start..end).any(|i| self.ident(i) == Some("self")) {
            return "Self".to_string();
        }
        self.flatten(start, end)
    }

    /// Render tokens as compact text: idents separated by a space only
    /// when adjacent to another ident/literal.
    fn flatten(&self, start: usize, end: usize) -> String {
        let mut out = String::new();
        let mut prev_wordy = false;
        for t in &self.t[start..end.min(self.t.len())] {
            let (text, wordy): (String, bool) = match &t.kind {
                TokKind::Ident(s) => (s.clone(), true),
                TokKind::Punct(c) => (c.to_string(), false),
                TokKind::Lit(s) => (s.clone(), true),
                TokKind::Str(_) => ("\"\"".to_string(), false),
                _ => continue,
            };
            if prev_wordy && wordy {
                out.push(' ');
            }
            out.push_str(&text);
            prev_wordy = wordy;
        }
        out
    }

    /// Find every `match` expression in a body range and parse its arms.
    /// Nested matches are found by the same linear scan.
    fn extract_matches(&mut self, start: usize, end: usize) -> Vec<MatchExpr> {
        let mut out = Vec::new();
        for i in start..end {
            if self.ident(i) != Some("match") {
                continue;
            }
            // Scrutinee runs to the `{` at bracket depth 0 (struct
            // literals are not allowed in scrutinee position).
            let mut depth = 0i32;
            let mut open = None;
            for j in i + 1..end {
                match self.punct(j) {
                    Some('(') | Some('[') => depth += 1,
                    Some(')') | Some(']') => depth -= 1,
                    Some('{') if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    _ => {}
                }
            }
            let Some(open) = open else { continue };
            let close = self.match_brace(open, end);
            let arms = self.parse_arms(open + 1, close);
            out.push(MatchExpr {
                line: self.line(i),
                arms,
            });
        }
        out
    }

    /// Parse the arms between a match's braces.
    fn parse_arms(&mut self, start: usize, end: usize) -> Vec<Arm> {
        let mut arms = Vec::new();
        let mut pos = start;
        while pos < end {
            // Pattern: tokens up to the top-level `=>`; everything after a
            // top-level `if` is the guard and excluded.
            let arm_line = self.line(pos);
            let mut pat = Vec::new();
            let mut depth = 0i32;
            let mut in_guard = false;
            let mut saw_arrow = false;
            while pos < end {
                if depth == 0 && self.punct(pos) == Some('=') && self.punct(pos + 1) == Some('>') {
                    pos += 2;
                    saw_arrow = true;
                    break;
                }
                if depth == 0 && self.ident(pos) == Some("if") {
                    in_guard = true;
                }
                match self.punct(pos) {
                    Some('(') | Some('[') | Some('{') => depth += 1,
                    Some(')') | Some(']') | Some('}') => depth -= 1,
                    _ => {}
                }
                if !in_guard {
                    if let Some(t) = self.t.get(pos) {
                        let (text, ident) = match &t.kind {
                            TokKind::Ident(s) => (s.clone(), true),
                            TokKind::Punct(c) => (c.to_string(), false),
                            TokKind::Lit(s) => (s.clone(), false),
                            TokKind::Str(_) => ("\"\"".to_string(), false),
                            _ => (String::new(), false),
                        };
                        pat.push(PatTok {
                            text,
                            ident,
                            line: t.line,
                        });
                    }
                }
                pos += 1;
            }
            if !saw_arrow {
                break;
            }
            arms.push(Arm {
                line: arm_line,
                pat,
            });
            // Value: a block (skip matched braces + optional comma) or an
            // expression up to the next top-level comma.
            if self.punct(pos) == Some('{') {
                pos = self.match_brace(pos, end) + 1;
                if self.punct(pos) == Some(',') {
                    pos += 1;
                }
            } else {
                let mut depth = 0i32;
                while pos < end {
                    match self.punct(pos) {
                        Some('(') | Some('[') | Some('{') => depth += 1,
                        Some(')') | Some(']') | Some('}') => depth -= 1,
                        Some(',') if depth == 0 => {
                            pos += 1;
                            break;
                        }
                        _ => {}
                    }
                    pos += 1;
                }
            }
        }
        arms
    }
}

/// First uppercase-initial path segment of a flattened type string:
/// `&mut Reader<'a>` → `Reader`, `&[u8]` → none.
fn first_type_name(ty: &str) -> Option<String> {
    let mut cur = String::new();
    for c in ty.chars().chain(std::iter::once(' ')) {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if cur.starts_with(char::is_uppercase) {
                return Some(cur);
            }
            cur.clear();
        }
    }
    None
}

/// Extract call expressions from a token range.
fn extract_calls(t: &[Tok], start: usize, end: usize) -> Vec<Call> {
    let ident = |i: usize| match t.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize| match t.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    };
    let mut out = Vec::new();
    for i in start..end {
        let Some(name) = ident(i) else { continue };
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // Nested `fn` definitions are folded into this body, not calls.
        if i > start && ident(i - 1) == Some("fn") {
            continue;
        }
        let method = i > start && punct(i - 1) == Some('.');
        let recv_self = method && i >= 2 && ident(i - 2) == Some("self");
        // `name(` — a plain call; `name::<T>(` — a turbofish call.
        let mut after = i + 1;
        if punct(after) == Some(':')
            && punct(after + 1) == Some(':')
            && punct(after + 2) == Some('<')
        {
            let mut depth = 0i32;
            let mut j = after + 2;
            while j < end {
                match punct(j) {
                    Some('<') => depth += 1,
                    Some('>') if !matches!(punct(j.wrapping_sub(1)), Some('-') | Some('=')) => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            after = j + 1;
        }
        if punct(after) != Some('(') {
            continue;
        }
        let qualifier =
            if !method && i >= 3 && punct(i - 1) == Some(':') && punct(i - 2) == Some(':') {
                ident(i - 3).map(str::to_string)
            } else {
                None
            };
        // Argument count: top-level commas inside the parens, ignoring
        // commas between closure pipes (`|a, b| …` is one argument) and
        // a trailing comma before the close.
        let mut depth = 0i32;
        let mut commas = 0usize;
        let mut any_tok = false;
        let mut in_pipe = false;
        let mut last_comma = false;
        let mut j = after;
        while j < end {
            match punct(j) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') | Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        if last_comma {
                            commas -= 1;
                        }
                        break;
                    }
                }
                Some('|') if depth == 1 => in_pipe = !in_pipe,
                Some(',') if depth == 1 && !in_pipe => commas += 1,
                _ => {}
            }
            if depth == 1 {
                last_comma = punct(j) == Some(',') && !in_pipe;
            }
            if depth == 1 && j > after {
                any_tok = true;
            }
            j += 1;
        }
        let args = if any_tok { commas + 1 } else { 0 };
        // The receiver ident for `x.name(...)` — only a bare local or
        // parameter counts; `a.b.name(...)` reads a field whose type the
        // body does not declare, so it stays unresolved.
        let recv = if method && !recv_self && !(i >= 3 && punct(i - 3) == Some('.')) {
            ident(i - 2).filter(|r| *r != "self").map(str::to_string)
        } else {
            None
        };
        let Some(tok) = t.get(i) else { continue };
        out.push(Call {
            line: tok.line,
            name: name.to_string(),
            qualifier,
            method,
            recv_self,
            args,
            recv_type: recv,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_modules};

    fn parse_src(src: &str) -> (ParsedFile, Vec<Tok>) {
        let code: Vec<Tok> = strip_test_modules(lex(src))
            .into_iter()
            .filter(|t| !t.kind.is_comment())
            .collect();
        (parse(&code), code)
    }

    #[test]
    fn parses_free_fns_and_methods() {
        let src = "
            pub fn parse(data: &[u8]) -> Result<Packet> { helper(data) }
            impl<R: Read> PcapReader<R> {
                pub fn next_record(&mut self) -> Result<Option<PcapRecord>, PcapError> {
                    self.fill_buf()
                }
            }
            fn helper(d: &[u8]) -> Result<Packet> { Packet::parse(d) }
        ";
        let (p, _) = parse_src(src);
        assert!(p.parsed_ok);
        let names: Vec<(&str, Option<&str>)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("parse", None),
                ("next_record", Some("PcapReader")),
                ("helper", None),
            ]
        );
        assert_eq!(p.fns[0].params, vec!["&[u8]"]);
        assert_eq!(p.fns[1].params, vec!["Self"]);
        assert_eq!(p.fns[1].ret, "Result<Option<PcapRecord>,PcapError>");
        // helper's qualified call resolves with its qualifier.
        let call = &p.fns[2].calls[0];
        assert_eq!(call.name, "parse");
        assert_eq!(call.qualifier.as_deref(), Some("Packet"));
        assert!(!call.method);
        // next_record's method call.
        let call = &p.fns[1].calls[0];
        assert_eq!(call.name, "fill_buf");
        assert!(call.method);
    }

    #[test]
    fn trait_impls_and_where_clauses_parse() {
        let src = "
            impl<'g, F, O> FlowSource for SimSource<'g, F, O>
            where
                F: Fn(u64) -> Option<O> + Sync,
                O: Send,
            {
                fn fill(&mut self, out: &mut Vec<u64>, max: usize) -> bool {
                    self.cursor < self.span()
                }
            }
        ";
        let (p, _) = parse_src(src);
        assert!(p.parsed_ok, "{:?}", p.fns);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "fill");
        assert_eq!(p.fns[0].owner.as_deref(), Some("SimSource"));
        assert_eq!(p.fns[0].params, vec!["Self", "&mut Vec<u64>", "usize"]);
    }

    #[test]
    fn match_arms_split_patterns_from_guards_and_values() {
        let src = "
            fn f(sig: Signature, n: usize) -> u8 {
                match sig {
                    Signature::SynRst => 1,
                    s if n > 0 => match n { 0 => 9, _ => 8 },
                    other => 0,
                }
            }
        ";
        let (p, _) = parse_src(src);
        assert!(p.parsed_ok);
        let matches = &p.fns[0].matches;
        assert_eq!(matches.len(), 2, "outer + nested");
        let outer = &matches[0];
        assert_eq!(outer.arms.len(), 3);
        let texts: Vec<String> = outer.arms[0].pat.iter().map(|t| t.text.clone()).collect();
        assert_eq!(texts, vec!["Signature", ":", ":", "SynRst"]);
        // Guard tokens are excluded from the pattern.
        let texts: Vec<String> = outer.arms[1].pat.iter().map(|t| t.text.clone()).collect();
        assert_eq!(texts, vec!["s"]);
        // The nested match (inside the second arm's value) parses too.
        assert_eq!(matches[1].arms.len(), 2);
    }

    #[test]
    fn nested_fns_fold_into_the_enclosing_body() {
        let src = "
            pub(crate) fn route_hash(frame: &[u8]) -> Option<u64> {
                fn word(b: &[u8], at: usize) -> u64 { mix(0, at as u64) }
                Some(word(frame, 0))
            }
        ";
        let (p, _) = parse_src(src);
        assert!(p.parsed_ok);
        assert_eq!(p.fns.len(), 1);
        let calls: Vec<&str> = p.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        // `fn word(...)` is not a call; `mix(…)`, `Some(…)`, `word(…)` are.
        assert_eq!(calls, vec!["mix", "Some", "word"]);
        assert_eq!(p.fns[0].name, "route_hash");
    }

    #[test]
    fn lost_sync_is_reported_not_silent() {
        let (p, _) = parse_src("fn broken(a: u8 { }");
        assert!(!p.parsed_ok);
    }
}
