//! Stable, line-number-independent finding fingerprints.
//!
//! A fingerprint hashes (rule, file, normalized finding-line content,
//! occurrence index) with FNV-1a 64. The line *number* is deliberately
//! excluded: inserting code above a finding must not churn its
//! fingerprint, or the checked-in baseline would rot on every refactor.
//! The occurrence index disambiguates identical lines in one file (two
//! `b[0]` on different lines hash apart as occurrences 0 and 1, in line
//! order), so a stable set survives edits elsewhere in the file.
//!
//! Findings with no source line behind them (taxonomy cross-checks) fall
//! back to the message with digit runs collapsed, so a drifting count or
//! line number in the message does not churn the fingerprint either.

use crate::lexer::{Tok, TokKind};
use crate::rules::Finding;
use std::collections::BTreeMap;

/// FNV-1a, 64-bit.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Render the code tokens on one line as normalized text (idents and
/// literals verbatim, string contents kept, whitespace canonicalized to
/// single separators). Returns `None` when the line carries no code.
pub fn normalize_line(code: &[Tok], line: u32) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    for t in code.iter().filter(|t| t.line == line) {
        match &t.kind {
            TokKind::Ident(s) => parts.push(s.clone()),
            TokKind::Punct(c) => parts.push(c.to_string()),
            TokKind::Lit(s) => parts.push(s.clone()),
            TokKind::Str(s) => parts.push(format!("\"{s}\"")),
            _ => {}
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(" "))
    }
}

/// Collapse every digit run to `#` (the no-source fallback normalizer).
pub fn collapse_digits(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_run = false;
    for c in s.chars() {
        if c.is_ascii_digit() {
            if !in_run {
                out.push('#');
                in_run = true;
            }
        } else {
            out.push(c);
            in_run = false;
        }
    }
    out
}

/// Assign a fingerprint to every finding, in order. `line_text` maps
/// (file, line) to that line's normalized code text; findings it cannot
/// resolve fall back to the digit-collapsed message. Callers pass findings
/// already sorted, so occurrence indices follow line order and are stable
/// under edits elsewhere.
pub fn assign(findings: &mut [Finding], line_text: &dyn Fn(&str, u32) -> Option<String>) {
    let mut occurrence: BTreeMap<(String, String, String), u32> = BTreeMap::new();
    for f in findings.iter_mut() {
        let norm = line_text(&f.file, f.line).unwrap_or_else(|| collapse_digits(&f.message));
        let key = (f.rule.to_string(), f.file.clone(), norm);
        let idx = occurrence.entry(key.clone()).or_insert(0);
        let payload = format!("{}\u{0}{}\u{0}{}\u{0}{}", key.0, key.1, key.2, idx);
        *idx += 1;
        f.fingerprint = format!("{:016x}", fnv1a64(payload.as_bytes()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn finding(file: &str, line: u32, rule: &'static str, message: &str) -> Finding {
        Finding {
            file: file.into(),
            line,
            rule,
            message: message.into(),
            fingerprint: String::new(),
        }
    }

    #[test]
    fn fingerprints_ignore_line_numbers() {
        let src_a = "fn f(b: &[u8]) -> u8 { b[0] }\n";
        let src_b = "// pushed down\n\nfn f(b: &[u8]) -> u8 { b[0] }\n";
        let code_a: Vec<Tok> = lex(src_a)
            .into_iter()
            .filter(|t| !t.kind.is_comment())
            .collect();
        let code_b: Vec<Tok> = lex(src_b)
            .into_iter()
            .filter(|t| !t.kind.is_comment())
            .collect();
        let mut fa = [finding("crates/wire/src/x.rs", 1, "index", "m")];
        let mut fb = [finding("crates/wire/src/x.rs", 3, "index", "m")];
        assign(&mut fa, &|_, line| normalize_line(&code_a, line));
        assign(&mut fb, &|_, line| normalize_line(&code_b, line));
        assert_eq!(fa[0].fingerprint, fb[0].fingerprint);
        assert_eq!(fa[0].fingerprint.len(), 16);
    }

    #[test]
    fn identical_lines_get_distinct_stable_occurrences() {
        let mut fs = [
            finding("f.rs", 2, "index", "m"),
            finding("f.rs", 9, "index", "m"),
        ];
        let text = |_: &str, _: u32| Some("b [ 0 ]".to_string());
        assign(&mut fs, &text);
        assert_ne!(fs[0].fingerprint, fs[1].fingerprint);
        // Shifting both lines down leaves both fingerprints alone.
        let mut shifted = [
            finding("f.rs", 5, "index", "m"),
            finding("f.rs", 14, "index", "m"),
        ];
        assign(&mut shifted, &text);
        assert_eq!(fs[0].fingerprint, shifted[0].fingerprint);
        assert_eq!(fs[1].fingerprint, shifted[1].fingerprint);
    }

    #[test]
    fn message_fallback_collapses_digits() {
        assert_eq!(collapse_digits("19 signatures vs 21"), "# signatures vs #");
        let mut fs = [finding("DESIGN.md", 0, "taxonomy", "table lists 19 rows")];
        let mut gs = [finding("DESIGN.md", 0, "taxonomy", "table lists 23 rows")];
        assign(&mut fs, &|_, _| None);
        assign(&mut gs, &|_, _| None);
        assert_eq!(fs[0].fingerprint, gs[0].fingerprint);
    }
}
