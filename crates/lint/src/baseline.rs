//! The checked-in finding baseline behind `cargo xtask analyze --deny-new`.
//!
//! Format: `#`-prefixed comment lines and blank lines are ignored; every
//! other line is `<16-hex-fingerprint> <rule> <file>`. The rule and file
//! are informational (they make review diffs readable); matching is by
//! fingerprint alone. A missing or unparsable baseline fails the gate —
//! CI must never silently run without one.

use crate::rules::Finding;
use crate::Analysis;
use std::collections::BTreeSet;

/// Repo-relative path of the checked-in baseline.
pub const BASELINE_FILE: &str = "tamperlint.baseline";

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// 16-hex-digit fingerprint.
    pub fingerprint: String,
    /// Rule code at capture time (informational).
    pub rule: String,
    /// File at capture time (informational).
    pub file: String,
}

/// A parsed baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<Entry>,
    /// Declared in-source waiver count (`# waivers: N`), when present.
    /// The waiver audit test holds the repo to this number so a stray
    /// `tamperlint: allow(...)` comment can't slip in unreviewed.
    pub expected_waivers: Option<usize>,
    fingerprints: BTreeSet<String>,
}

impl Baseline {
    /// Parse baseline text; any malformed line is an error (the gate fails
    /// closed rather than treating a corrupt baseline as empty).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut base = Baseline::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                // The one structured comment: `# waivers: N` declares how
                // many in-source waivers the repo is expected to carry.
                if let Some(rest) = line.strip_prefix("# waivers:") {
                    let n = rest.trim().parse::<usize>().map_err(|_| {
                        format!("baseline line {}: bad `# waivers:` count {rest:?}", i + 1)
                    })?;
                    base.expected_waivers = Some(n);
                }
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(fp), Some(rule), Some(file), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected `<fingerprint> <rule> <file>`, got {line:?}",
                    i + 1
                ));
            };
            if fp.len() != 16 || !fp.chars().all(|c| c.is_ascii_hexdigit()) {
                return Err(format!(
                    "baseline line {}: {fp:?} is not a 16-hex-digit fingerprint",
                    i + 1
                ));
            }
            base.fingerprints.insert(fp.to_string());
            base.entries.push(Entry {
                fingerprint: fp.to_string(),
                rule: rule.to_string(),
                file: file.to_string(),
            });
        }
        Ok(base)
    }

    /// True when the fingerprint is baselined.
    pub fn contains(&self, fingerprint: &str) -> bool {
        self.fingerprints.contains(fingerprint)
    }

    /// Render a baseline capturing the given findings (sorted input keeps
    /// the file diff-stable) and the current in-source waiver count.
    pub fn render(findings: &[Finding], waivers: usize) -> String {
        let mut out = String::from(
            "# tamperlint baseline — accepted findings by fingerprint.\n\
             # Regenerate with `cargo xtask analyze --write-baseline`;\n\
             # `cargo xtask analyze --deny-new` fails only on fingerprints absent here.\n",
        );
        out.push_str(&format!("# waivers: {waivers}\n"));
        for f in findings {
            out.push_str(&format!("{} {} {}\n", f.fingerprint, f.rule, f.file));
        }
        out
    }
}

impl Analysis {
    /// Findings whose fingerprints are not in the baseline — the
    /// regressions `--deny-new` fails on.
    pub fn new_findings<'a>(&'a self, base: &Baseline) -> Vec<&'a Finding> {
        self.findings
            .iter()
            .filter(|f| !base.contains(&f.fingerprint))
            .collect()
    }

    /// Baseline entries no current finding matches — fixed debt worth
    /// pruning (reported as a warning, never a failure).
    pub fn stale_entries<'a>(&self, base: &'a Baseline) -> Vec<&'a Entry> {
        let live: BTreeSet<&str> = self
            .findings
            .iter()
            .map(|f| f.fingerprint.as_str())
            .collect();
        base.entries
            .iter()
            .filter(|e| !live.contains(e.fingerprint.as_str()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(fp: &str) -> Finding {
        Finding {
            file: "crates/wire/src/x.rs".into(),
            line: 1,
            rule: "index",
            message: "m".into(),
            fingerprint: fp.into(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let fs = [finding("00aa11bb22cc33dd"), finding("ffee00112233aabb")];
        let text = Baseline::render(&fs, 7);
        let base = Baseline::parse(&text).unwrap();
        assert_eq!(base.entries.len(), 2);
        assert_eq!(base.expected_waivers, Some(7));
        assert!(base.contains("00aa11bb22cc33dd"));
        assert!(!base.contains("0000000000000000"));
    }

    #[test]
    fn malformed_lines_fail_closed() {
        assert!(Baseline::parse("not-a-fingerprint index f.rs").is_err());
        assert!(Baseline::parse("00aa11bb22cc33dd index").is_err());
        assert!(Baseline::parse("00aa11bb22cc33dd index f.rs extra").is_err());
        assert!(Baseline::parse("# waivers: many").is_err());
        // Comments and blanks are fine; no declaration means None.
        let empty = Baseline::parse("# header\n\n").unwrap();
        assert!(empty.entries.is_empty());
        assert_eq!(empty.expected_waivers, None);
    }

    #[test]
    fn new_and_stale_are_set_differences() {
        let base = Baseline::parse("00aa11bb22cc33dd index crates/wire/src/x.rs\n").unwrap();
        let mut analysis = Analysis::default();
        analysis.findings.push(finding("00aa11bb22cc33dd"));
        analysis.findings.push(finding("ffee00112233aabb"));
        let new: Vec<&str> = analysis
            .new_findings(&base)
            .iter()
            .map(|f| f.fingerprint.as_str())
            .collect();
        assert_eq!(new, vec!["ffee00112233aabb"]);
        analysis.findings.clear();
        assert_eq!(analysis.stale_entries(&base).len(), 1);
    }
}
