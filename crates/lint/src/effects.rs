//! The interprocedural effect-summary engine.
//!
//! One bottom-up pass over the call graph — Tarjan's SCC condensation,
//! so recursion converges without iteration — computes a per-function
//! [`EffectSet`]: everything a function may do, directly or through any
//! call chain. The five containment rules query these summaries instead
//! of re-walking the graph per rule, and two rule families exist *only*
//! because summaries do:
//!
//! * **purity-audit** — every entry in the `PURE_ROOTS` registry (the
//!   classify→aggregate→report path) must have an empty
//!   determinism-relevant effect set. This turns the runtime
//!   byte-identity tests into a static proof: no clock, no rng, no
//!   thread, no unordered-map iteration, no IO, no global mutation, and
//!   no `Unknown` (unresolved call or unparsed body) anywhere in the
//!   transitive closure.
//! * **unbounded-growth** — an insertion into a long-lived collection
//!   field (`self.<field>.push/insert/entry/extend` on a type that
//!   survives across `process`/`absorb`-style calls) with no eviction,
//!   clear, or cap on the same field anywhere in the owner's impl
//!   surface.
//!
//! The engine fails closed: a file the parser lost sync on marks every
//! one of its functions `Unknown`, and a call whose qualifier names a
//! workspace module/type/crate but resolves to no symbol marks the
//! *caller* `Unknown` (the callee could do anything).

use crate::callgraph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::rules::Finding;
use crate::symbols::SymbolTable;
use std::collections::{BTreeMap, BTreeSet};

/// One effect a function may have. Bit positions index into
/// [`Effect::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Performs a fresh heap allocation.
    Allocates,
    /// Reads a wall/monotonic clock (outside the sanctioned obs home).
    ReadsClock,
    /// Draws ambient randomness (outside the sanctioned obs home).
    ReadsRng,
    /// Can panic (`unwrap`, `expect`, `panic!`, …).
    MayPanic,
    /// Spawns or scopes a thread (outside `capture::engine`).
    SpawnsThread,
    /// Touches a `HashMap`/`HashSet` (iteration order is unordered).
    IteratesUnorderedMap,
    /// Performs input/output (`println!`, `std::fs`, stdio handles).
    PerformsIo,
    /// Mutates global state (`set_var`, atomics on `STATIC` receivers).
    MutatesGlobal,
    /// Fail-closed: unparsed body or a dropped workspace call edge.
    Unknown,
}

impl Effect {
    /// Every effect, in bit order.
    pub const ALL: [Effect; 9] = [
        Effect::Allocates,
        Effect::ReadsClock,
        Effect::ReadsRng,
        Effect::MayPanic,
        Effect::SpawnsThread,
        Effect::IteratesUnorderedMap,
        Effect::PerformsIo,
        Effect::MutatesGlobal,
        Effect::Unknown,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Effect::Allocates => "Allocates",
            Effect::ReadsClock => "ReadsClock",
            Effect::ReadsRng => "ReadsRng",
            Effect::MayPanic => "MayPanic",
            Effect::SpawnsThread => "SpawnsThread",
            Effect::IteratesUnorderedMap => "IteratesUnorderedMap",
            Effect::PerformsIo => "PerformsIo",
            Effect::MutatesGlobal => "MutatesGlobal",
            Effect::Unknown => "Unknown",
        }
    }

    fn bit(self) -> u16 {
        1 << (Effect::ALL.iter().position(|e| *e == self).unwrap_or(0) as u16)
    }

    /// The effect for a stable name, for cache decoding.
    pub fn from_name(name: &str) -> Option<Effect> {
        Effect::ALL.iter().copied().find(|e| e.name() == name)
    }
}

/// A set of [`Effect`]s, as a bitset. The lattice the fixpoint runs on:
/// join is union, bottom is the empty set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffectSet(pub u16);

impl EffectSet {
    /// The empty (pure) set.
    pub const EMPTY: EffectSet = EffectSet(0);

    /// The determinism-relevant subset the purity audit forbids.
    /// `Allocates` is excluded (allocation is deterministic) and so is
    /// `MayPanic` (covered by the dedicated panic/index rules).
    pub fn purity_mask() -> EffectSet {
        EffectSet(
            Effect::ReadsClock.bit()
                | Effect::ReadsRng.bit()
                | Effect::SpawnsThread.bit()
                | Effect::IteratesUnorderedMap.bit()
                | Effect::PerformsIo.bit()
                | Effect::MutatesGlobal.bit()
                | Effect::Unknown.bit(),
        )
    }

    /// Add one effect.
    pub fn insert(&mut self, e: Effect) {
        self.0 |= e.bit();
    }

    /// Union in another set.
    pub fn union(&mut self, other: EffectSet) {
        self.0 |= other.0;
    }

    /// Membership test.
    pub fn contains(self, e: Effect) -> bool {
        self.0 & e.bit() != 0
    }

    /// Intersection.
    pub fn intersect(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 & other.0)
    }

    /// True when no effect is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The member effects, in bit order.
    pub fn iter(self) -> impl Iterator<Item = Effect> {
        Effect::ALL.into_iter().filter(move |e| self.contains(*e))
    }

    /// Display as `{A, B}`.
    pub fn render(self) -> String {
        let names: Vec<&str> = self.iter().map(Effect::name).collect();
        format!("{{{}}}", names.join(", "))
    }
}

/// One direct-effect site in a function body, for witness messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectSite {
    /// The effect observed.
    pub effect: Effect,
    /// 1-based source line.
    pub line: u32,
    /// What was seen (`Instant::now`, `println!`, a dropped call name…).
    pub what: String,
}

/// Macro names whose invocation is terminal-or-process IO. `write!` /
/// `writeln!` are deliberately absent: report rendering targets
/// in-memory `String`s with them.
const IO_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];

/// Identifiers that reach the filesystem or the process's stdio.
const IO_IDENTS: [&str; 6] = [
    "stdin",
    "stdout",
    "stderr",
    "OpenOptions",
    "read_to_string",
    "remove_file",
];

/// Macro names that unconditionally panic when reached.
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Method names that mutate a `static` atomic/cell receiver.
const GLOBAL_MUT_METHODS: [&str; 7] = [
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "swap",
    "get_or_init",
];

/// Unordered-map type names (their presence in a body taints iteration
/// order; the pipeline's own determinism rule is `map-iter`, this is the
/// effect-lattice view of the same hazard).
const MAP_IDENTS: [&str; 3] = ["HashMap", "HashSet", "hash_map"];

/// True for `SCREAMING_CASE` identifiers (a `static` receiver).
fn is_screaming(name: &str) -> bool {
    name.len() > 1
        && name.contains(|c: char| c.is_ascii_uppercase())
        && !name.contains(|c: char| c.is_ascii_lowercase())
}

/// Scan one body's token range for direct effects *not* covered by the
/// sink scanner ([`crate::callgraph::find_sinks`]) or the allocation
/// scanner ([`crate::dataflow::alloc_sites`]): panics, IO, global
/// mutation, and unordered-map use.
pub fn direct_effect_sites(code: &[Tok], start: usize, end: usize) -> Vec<EffectSite> {
    let ident = |i: usize| match code.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize| match code.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    };
    let mut out = Vec::new();
    // Indexed loop: the matchers look ahead (`i + 1`, `i + 2`) and behind.
    #[allow(clippy::needless_range_loop)]
    for i in start..end.min(code.len()) {
        let Some(name) = ident(i) else { continue };
        let line = code[i].line;
        let bang = punct(i + 1) == Some('!');
        if bang && PANIC_MACROS.contains(&name) {
            out.push(EffectSite {
                effect: Effect::MayPanic,
                line,
                what: format!("{name}!"),
            });
        }
        if (name == "unwrap" || name == "expect") && punct(i.wrapping_sub(1)) == Some('.') {
            out.push(EffectSite {
                effect: Effect::MayPanic,
                line,
                what: format!(".{name}()"),
            });
        }
        if bang && IO_MACROS.contains(&name) {
            out.push(EffectSite {
                effect: Effect::PerformsIo,
                line,
                what: format!("{name}!"),
            });
        }
        if IO_IDENTS.contains(&name)
            || (name == "fs" && punct(i + 1) == Some(':') && punct(i + 2) == Some(':'))
            || (name == "File" && punct(i + 1) == Some(':') && punct(i + 2) == Some(':'))
        {
            out.push(EffectSite {
                effect: Effect::PerformsIo,
                line,
                what: name.to_string(),
            });
        }
        if name == "set_var" {
            out.push(EffectSite {
                effect: Effect::MutatesGlobal,
                line,
                what: "set_var".to_string(),
            });
        }
        if is_screaming(name) && punct(i + 1) == Some('.') {
            if let Some(m) = ident(i + 2) {
                if GLOBAL_MUT_METHODS.contains(&m) {
                    out.push(EffectSite {
                        effect: Effect::MutatesGlobal,
                        line,
                        what: format!("{name}.{m}"),
                    });
                }
            }
        }
        if MAP_IDENTS.contains(&name) {
            out.push(EffectSite {
                effect: Effect::IteratesUnorderedMap,
                line,
                what: name.to_string(),
            });
        }
    }
    out
}

/// Per-function effect summaries over a call graph: `direct` is what the
/// body does itself, `total` the fixpoint over the SCC condensation
/// (what the function may do through any call chain).
#[derive(Debug, Default)]
pub struct Summaries {
    /// Direct effects per function id.
    pub direct: Vec<EffectSet>,
    /// Transitive effects per function id (the fixpoint).
    pub total: Vec<EffectSet>,
    /// Direct-effect sites per function id, for witness messages.
    pub sites: Vec<Vec<EffectSite>>,
}

impl Summaries {
    /// Run the bottom-up fixpoint. Tarjan pops SCCs callee-first, so a
    /// single pass in pop order suffices: each SCC's total is the union
    /// of its members' direct effects and every callee SCC's total —
    /// recursion (members of one SCC) converges by construction.
    pub fn compute(
        graph: &CallGraph,
        direct: Vec<EffectSet>,
        sites: Vec<Vec<EffectSite>>,
    ) -> Summaries {
        let n = graph.out.len();
        debug_assert_eq!(direct.len(), n);
        let sccs = tarjan_sccs(graph);
        let mut scc_of = vec![0usize; n];
        for (ci, members) in sccs.iter().enumerate() {
            for &m in members {
                scc_of[m] = ci;
            }
        }
        // Pop order is callee-closed: every edge leaving an SCC lands in
        // an SCC popped earlier.
        let mut scc_total: Vec<EffectSet> = vec![EffectSet::EMPTY; sccs.len()];
        for (ci, members) in sccs.iter().enumerate() {
            let mut acc = EffectSet::EMPTY;
            for &m in members {
                acc.union(direct[m]);
                for e in &graph.out[m] {
                    let callee_scc = scc_of[e.callee];
                    if callee_scc != ci {
                        acc.union(scc_total[callee_scc]);
                    }
                }
            }
            scc_total[ci] = acc;
        }
        let total: Vec<EffectSet> = (0..n).map(|i| scc_total[scc_of[i]]).collect();
        Summaries {
            direct,
            total,
            sites,
        }
    }

    /// Materialize a witness path from `fid` to a function with a direct
    /// occurrence of `effect`: BFS over callees whose total carries the
    /// effect (deterministic: sorted adjacency, first-discovery wins).
    /// Returns the function-id chain (`fid` first, the direct carrier
    /// last) and the carrier's site.
    pub fn witness(
        &self,
        graph: &CallGraph,
        fid: usize,
        effect: Effect,
    ) -> (Vec<usize>, Option<&EffectSite>) {
        if self.direct[fid].contains(effect) {
            let site = self.sites[fid].iter().find(|s| s.effect == effect);
            return (vec![fid], site);
        }
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        queue.push_back(fid);
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        seen.insert(fid);
        while let Some(i) = queue.pop_front() {
            for e in &graph.out[i] {
                if !self.total[e.callee].contains(effect) || !seen.insert(e.callee) {
                    continue;
                }
                parent.insert(e.callee, i);
                if self.direct[e.callee].contains(effect) {
                    let mut chain = vec![e.callee];
                    let mut cur = e.callee;
                    while let Some(&p) = parent.get(&cur) {
                        chain.push(p);
                        cur = p;
                    }
                    chain.reverse();
                    let site = self.sites[e.callee].iter().find(|s| s.effect == effect);
                    return (chain, site);
                }
                queue.push_back(e.callee);
            }
        }
        (vec![fid], None)
    }
}

/// Tarjan's strongly-connected components, iteratively (explicit stacks;
/// fixture recursion chains must not overflow the linter's own stack).
/// SCCs are returned in pop order: callees before callers.
fn tarjan_sccs(graph: &CallGraph) -> Vec<Vec<usize>> {
    let n = graph.out.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Work frames: (node, next-edge-offset).
    let mut work: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        work.push((start, 0));
        while let Some(&mut (v, ref mut ei)) = work.last_mut() {
            if *ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(e) = graph.out[v].get(*ei) {
                *ei += 1;
                let w = e.callee;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
                work.pop();
                if let Some(&mut (p, _)) = work.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    sccs
}

/// Resolve a registry entry against the symbol table: `owner` matches a
/// function's `impl` owner, the trait it implements, or — for free
/// functions — the defining file's stem.
pub fn resolve_root(sym: &SymbolTable, owner: &str, name: &str) -> Vec<usize> {
    sym.named(name)
        .iter()
        .copied()
        .filter(|&id| {
            let f = &sym.fns[id];
            f.def.owner.as_deref() == Some(owner)
                || f.def.trait_of.as_deref() == Some(owner)
                || (f.def.owner.is_none() && f.stem == owner)
        })
        .collect()
}

/// The root-registry drift check: every `HOT_ROOTS` / `PURE_ROOTS` entry
/// must still name a real function. An entry that resolves to nothing is
/// rename rot — the gate it anchors has silently stopped firing.
pub fn registry_findings(
    sym: &SymbolTable,
    registries: &[(&str, &[(&str, &str)])],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (registry, entries) in registries {
        for (owner, name) in *entries {
            if resolve_root(sym, owner, name).is_empty() {
                out.push(Finding::new(
                    "crates/lint/src/lib.rs",
                    0,
                    "root-registry",
                    format!(
                        "{registry} entry (\"{owner}\", \"{name}\") resolves to no function \
                         in the workspace symbol table — update the registry or restore \
                         the function"
                    ),
                ));
            }
        }
    }
    out
}

/// Emit purity-audit findings: one per (resolved pure root, forbidden
/// effect), at the root's definition line, with a witness chain.
pub fn purity_findings(
    sym: &SymbolTable,
    graph: &CallGraph,
    sums: &Summaries,
    pure_roots: &[(&str, &str)],
    in_scope: &dyn Fn(&str) -> bool,
) -> Vec<Finding> {
    let mask = EffectSet::purity_mask();
    let mut out = Vec::new();
    for (owner, name) in pure_roots {
        for fid in resolve_root(sym, owner, name) {
            let f = &sym.fns[fid];
            if !in_scope(&f.file) {
                continue;
            }
            let impure = sums.total[fid].intersect(mask);
            for effect in impure.iter() {
                let (chain, site) = sums.witness(graph, fid, effect);
                let path: Vec<String> = chain
                    .iter()
                    .map(|&id| sym.fns[id].def.name.clone())
                    .collect();
                let carrier = *chain.last().unwrap_or(&fid);
                let evidence = match site {
                    Some(s) => format!("{} at {}:{}", s.what, sym.fns[carrier].file, s.line),
                    None => "effect inherited through the call graph".to_string(),
                };
                out.push(Finding::new(
                    &f.file,
                    f.def.start_line,
                    "purity-audit",
                    format!(
                        "pure root `{owner}::{name}` carries effect {}: via {} ({evidence}); \
                         the classify→aggregate→report path must stay a pure function of \
                         its inputs — remove the effect or waive with a reason",
                        effect.name(),
                        path.join(" → "),
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// unbounded-growth
// ---------------------------------------------------------------------------

/// Method-name prefixes that mark a type as *long-lived*: its instances
/// survive across per-packet/per-flow calls, so its collection fields
/// accumulate for the life of the run (the state the upcoming `serve`
/// daemon keeps forever).
const LONG_LIVED_PREFIXES: [&str; 7] = [
    "process", "absorb", "observe", "fill", "record", "merge", "classify",
];

/// Collection methods that add entries.
const INSERT_METHODS: [&str; 8] = [
    "insert",
    "push",
    "push_back",
    "push_front",
    "entry",
    "extend",
    "extend_from_slice",
    "append",
];

/// Collection methods that remove entries (eviction evidence).
const EVICT_METHODS: [&str; 16] = [
    "clear",
    "remove",
    "remove_entry",
    "pop",
    "pop_back",
    "pop_front",
    "pop_first",
    "pop_last",
    "truncate",
    "drain",
    "retain",
    "retain_mut",
    "split_off",
    "swap_remove",
    "take",
    "dedup",
];

/// What one growth site does to its field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowthKind {
    /// Adds an entry.
    Insert,
    /// Removes entries, reassigns, or `mem::take`s the field.
    Evict,
    /// Compares the field's `len()` (a cap check).
    Cap,
}

impl GrowthKind {
    /// Stable cache tag.
    pub fn tag(self) -> &'static str {
        match self {
            GrowthKind::Insert => "I",
            GrowthKind::Evict => "E",
            GrowthKind::Cap => "C",
        }
    }

    /// Decode a cache tag.
    pub fn from_tag(tag: &str) -> Option<GrowthKind> {
        match tag {
            "I" => Some(GrowthKind::Insert),
            "E" => Some(GrowthKind::Evict),
            "C" => Some(GrowthKind::Cap),
            _ => None,
        }
    }
}

/// One `self.<field>` collection operation in a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowthSite {
    /// The field operated on.
    pub field: String,
    /// 1-based source line.
    pub line: u32,
    /// Insert / evict / cap.
    pub kind: GrowthKind,
    /// Rendered operation, for messages (`push(…)`, `entry(…)`, …).
    pub what: String,
}

/// Scan one body's token range for `self.<field>` collection operations.
/// Handles an indexed hop (`self.wheel[b].push(…)` attributes to
/// `wheel`), field reassignment, and `mem::take(&mut self.<field>)`.
pub fn growth_sites(code: &[Tok], start: usize, end: usize) -> Vec<GrowthSite> {
    let ident = |i: usize| match code.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize| match code.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    };
    let end = end.min(code.len());
    let mut out = Vec::new();
    for i in start..end {
        // `take ( & mut self . field` — mem::take resets the field.
        if ident(i) == Some("take")
            && punct(i + 1) == Some('(')
            && punct(i + 2) == Some('&')
            && ident(i + 3) == Some("mut")
            && ident(i + 4) == Some("self")
            && punct(i + 5) == Some('.')
        {
            if let Some(field) = ident(i + 6) {
                out.push(GrowthSite {
                    field: field.to_string(),
                    line: code[i].line,
                    kind: GrowthKind::Evict,
                    what: "mem::take".to_string(),
                });
            }
        }
        if ident(i) != Some("self") || punct(i + 1) != Some('.') {
            continue;
        }
        let Some(field) = ident(i + 2) else { continue };
        let line = code[i + 2].line;
        // Skip one balanced `[…]` hop so `self.wheel[b].push` lands on
        // `wheel`.
        let mut j = i + 3;
        if punct(j) == Some('[') {
            let mut depth = 0i32;
            while j < end {
                match punct(j) {
                    Some('[') => depth += 1,
                    Some(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if punct(j) == Some('=')
            && punct(j + 1) != Some('=')
            && punct(j.wrapping_sub(1)) != Some('=')
        {
            // Plain reassignment replaces the contents. (`==` is a
            // comparison; `+=` on a counter never reaches here because
            // the lexer emits `+` then `=` and the `+` fails the match.)
            out.push(GrowthSite {
                field: field.to_string(),
                line,
                kind: GrowthKind::Evict,
                what: "reassignment".to_string(),
            });
            continue;
        }
        if punct(j) != Some('.') {
            continue;
        }
        let Some(method) = ident(j + 1) else { continue };
        if punct(j + 2) != Some('(') {
            continue;
        }
        if INSERT_METHODS.contains(&method) {
            out.push(GrowthSite {
                field: field.to_string(),
                line,
                kind: GrowthKind::Insert,
                what: format!("{method}(…)"),
            });
        } else if EVICT_METHODS.contains(&method) {
            out.push(GrowthSite {
                field: field.to_string(),
                line,
                kind: GrowthKind::Evict,
                what: format!("{method}(…)"),
            });
        } else if method == "len" {
            // `self.f.len()` only counts as a cap when it feeds a
            // comparison (`self.f.len() >= cap`), not as a plain getter.
            let after = j + 4; // past `len ( )`
            let cmp = matches!(punct(after), Some('<') | Some('>'))
                || (punct(after) == Some('=') && punct(after + 1) == Some('='))
                || matches!(punct(i.wrapping_sub(1)), Some('<') | Some('>'));
            if cmp {
                out.push(GrowthSite {
                    field: field.to_string(),
                    line,
                    kind: GrowthKind::Cap,
                    what: "len() comparison".to_string(),
                });
            }
        }
    }
    out
}

/// Emit unbounded-growth findings: for every `(owner, field)` with an
/// insertion in a long-lived type and *no* eviction/cap evidence on the
/// same field anywhere in the workspace, one finding per insertion site
/// in growth-scoped files.
///
/// `per_fn_sites` aligns with `sym.fns`.
pub fn growth_findings(
    sym: &SymbolTable,
    per_fn_sites: &[Vec<GrowthSite>],
    in_scope: &dyn Fn(&str) -> bool,
) -> Vec<Finding> {
    // Owner → has a long-lived method anywhere in the workspace?
    let mut long_lived: BTreeSet<&str> = BTreeSet::new();
    for f in &sym.fns {
        if let Some(owner) = f.def.owner.as_deref() {
            if LONG_LIVED_PREFIXES
                .iter()
                .any(|p| f.def.name.starts_with(p))
            {
                long_lived.insert(owner);
            }
        }
    }
    // (owner, field) → (insert sites, evidence count).
    #[derive(Default)]
    struct FieldInfo<'a> {
        inserts: Vec<(&'a str, u32, &'a str)>, // (file, line, what)
        evidence: usize,
    }
    let mut fields: BTreeMap<(String, String), FieldInfo> = BTreeMap::new();
    for (fid, sites) in per_fn_sites.iter().enumerate() {
        let f = &sym.fns[fid];
        let Some(owner) = f.def.owner.as_deref() else {
            continue;
        };
        if !long_lived.contains(owner) {
            continue;
        }
        for s in sites {
            let info = fields
                .entry((owner.to_string(), s.field.clone()))
                .or_default();
            match s.kind {
                GrowthKind::Insert => info
                    .inserts
                    .push((f.file.as_str(), s.line, s.what.as_str())),
                GrowthKind::Evict | GrowthKind::Cap => info.evidence += 1,
            }
        }
    }
    let mut out = Vec::new();
    for ((owner, field), info) in &fields {
        if info.evidence > 0 {
            continue;
        }
        for (file, line, what) in &info.inserts {
            if !in_scope(file) {
                continue;
            }
            out.push(Finding::new(
                file,
                *line,
                "unbounded-growth",
                format!(
                    "`self.{field}.{what}` grows long-lived `{owner}.{field}` with no \
                     eviction, clear, or cap on the same field anywhere in the workspace \
                     — a long-running ingest accumulates this forever; bound it or waive \
                     with a reason"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_modules};

    fn code(src: &str) -> Vec<Tok> {
        strip_test_modules(lex(src))
            .into_iter()
            .filter(|t| !t.kind.is_comment())
            .collect()
    }

    #[test]
    fn effect_set_roundtrip() {
        let mut s = EffectSet::EMPTY;
        s.insert(Effect::ReadsClock);
        s.insert(Effect::Unknown);
        assert!(s.contains(Effect::ReadsClock));
        assert!(!s.contains(Effect::Allocates));
        assert_eq!(s.iter().count(), 2);
        assert_eq!(s.render(), "{ReadsClock, Unknown}");
        for e in Effect::ALL {
            assert_eq!(Effect::from_name(e.name()), Some(e));
        }
    }

    #[test]
    fn direct_sites_cover_io_panic_global_map() {
        let toks = code(
            "fn f() {\n\
             println!(\"x\");\n\
             v.unwrap();\n\
             COUNTER.fetch_add(1, O);\n\
             let m: HashMap<u32, u32> = HashMap::new();\n\
             }",
        );
        let sites = direct_effect_sites(&toks, 0, toks.len());
        let effects: BTreeSet<Effect> = sites.iter().map(|s| s.effect).collect();
        assert!(effects.contains(&Effect::PerformsIo));
        assert!(effects.contains(&Effect::MayPanic));
        assert!(effects.contains(&Effect::MutatesGlobal));
        assert!(effects.contains(&Effect::IteratesUnorderedMap));
    }

    #[test]
    fn growth_sites_classify_insert_evict_cap() {
        let toks = code(
            "impl T { fn absorb(&mut self) {\n\
             self.flows.insert(k, v);\n\
             self.wheel[b].push(x);\n\
             if self.flows.len() >= self.cap { self.flows.remove(&k); }\n\
             self.scratch = fresh;\n\
             let old = std::mem::take(&mut self.buf);\n\
             } }",
        );
        let sites = growth_sites(&toks, 0, toks.len());
        let get = |field: &str, kind: GrowthKind| {
            sites
                .iter()
                .filter(|s| s.field == field && s.kind == kind)
                .count()
        };
        assert_eq!(get("flows", GrowthKind::Insert), 1);
        assert_eq!(get("wheel", GrowthKind::Insert), 1);
        assert_eq!(get("flows", GrowthKind::Cap), 1);
        assert_eq!(get("flows", GrowthKind::Evict), 1);
        assert_eq!(get("scratch", GrowthKind::Evict), 1);
        assert_eq!(get("buf", GrowthKind::Evict), 1);
    }
}
