//! The intra-workspace call graph and the reachability analyses built on
//! it.
//!
//! Resolution is name-based and deliberately over-approximate — when in
//! doubt an edge is added, because the graph's consumers are *exemption*
//! analyses: the panic/index rules drop findings only in functions proven
//! unreachable from an untrusted-input root, and the containment rules add
//! findings only along a concrete path to an ambient sink. A spurious edge
//! therefore keeps a finding alive or stays silent; it never hides one.
//!
//! Resolution rules for a call to `f`:
//! - `q::f(…)` — candidates whose impl owner is `q` **or** whose file stem
//!   is `q` (`pcap::read_all`). A qualifier matching no known owner/stem
//!   (e.g. `Vec`, `Option`) produces **no** edge.
//! - `Self::f(…)` — candidates sharing the caller's impl owner.
//! - `.f(…)` — every receiver-taking function named `f` with matching
//!   arity; narrowed to the enclosing type for `self.f(…)` and to the
//!   receiver's type when a `let x: T` / `let x = T::…` binding or a
//!   parameter annotation makes it locally apparent.
//! - bare `f(…)` — free functions anywhere plus same-file functions.

use crate::lexer::{Tok, TokKind};
use crate::symbols::SymbolTable;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The kinds of ambient sink the containment rules track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    /// `Instant::now` / `SystemTime::now`.
    Clock,
    /// `thread_rng`, `from_entropy`, `OsRng`, `getrandom`, `rand::random`.
    Rng,
    /// `crossbeam`, `thread::spawn`, `thread::scope`.
    Thread,
}

impl SinkKind {
    /// The rule family a transitive finding of this kind reports under.
    pub fn rule(self) -> &'static str {
        match self {
            SinkKind::Clock => "ambient-clock",
            SinkKind::Rng => "ambient-rng",
            SinkKind::Thread => "thread-containment",
        }
    }
}

/// One ambient sink found in a function body.
#[derive(Debug, Clone)]
pub struct Sink {
    /// Sink family.
    pub kind: SinkKind,
    /// 1-based source line.
    pub line: u32,
    /// What was called, for messages (`Instant::now`, `thread::spawn`, …).
    pub what: String,
}

/// Scan a code-token range for ambient sinks.
pub fn find_sinks(code: &[Tok], start: usize, end: usize) -> Vec<Sink> {
    let ident = |i: usize| match code.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize| match code.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    };
    let path_pair = |i: usize, a: &str, b: &str| {
        ident(i) == Some(a)
            && punct(i + 1) == Some(':')
            && punct(i + 2) == Some(':')
            && ident(i + 3) == Some(b)
    };
    let mut out = Vec::new();
    for (i, tok) in code
        .iter()
        .enumerate()
        .take(end.min(code.len()))
        .skip(start)
    {
        let line = tok.line;
        if path_pair(i, "Instant", "now") || path_pair(i, "SystemTime", "now") {
            out.push(Sink {
                kind: SinkKind::Clock,
                line,
                what: format!("{}::now", ident(i).unwrap_or_default()),
            });
        }
        if let Some(name @ ("thread_rng" | "from_entropy" | "OsRng" | "getrandom")) = ident(i) {
            out.push(Sink {
                kind: SinkKind::Rng,
                line,
                what: name.to_string(),
            });
        }
        if path_pair(i, "rand", "random") {
            out.push(Sink {
                kind: SinkKind::Rng,
                line,
                what: "rand::random".to_string(),
            });
        }
        if ident(i) == Some("crossbeam") {
            out.push(Sink {
                kind: SinkKind::Thread,
                line,
                what: "crossbeam".to_string(),
            });
        }
        if path_pair(i, "thread", "spawn") || path_pair(i, "thread", "scope") {
            out.push(Sink {
                kind: SinkKind::Thread,
                line,
                what: format!("thread::{}", ident(i + 3).unwrap_or_default()),
            });
        }
    }
    out
}

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Callee function id.
    pub callee: usize,
    /// 1-based line of the call site in the caller.
    pub line: u32,
}

/// The resolved call graph over a [`SymbolTable`].
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Outgoing edges per function id, sorted by callee, deduplicated
    /// (first call site wins).
    pub out: Vec<Vec<Edge>>,
    /// Incoming callers per function id, sorted.
    pub rin: Vec<Vec<usize>>,
    /// Dropped workspace calls per function id: `(line, rendered call)`
    /// for every call whose qualifier names a workspace type, module, or
    /// crate and whose bare name exists in the symbol table, yet the
    /// resolver produced no target. The effect engine treats these as
    /// `Unknown` on the caller — a call that *looks* intra-workspace but
    /// resolves to nothing could do anything, so it fails closed. Foreign
    /// calls (`Vec::with_capacity`, `mem::take`) never land here: their
    /// qualifiers match no workspace owner, stem, or crate.
    pub dropped: Vec<Vec<(u32, String)>>,
}

impl CallGraph {
    /// Resolve every call in the table into edges.
    pub fn build(sym: &SymbolTable) -> CallGraph {
        let n = sym.fns.len();
        let mut out: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut rin: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut dropped: Vec<Vec<(u32, String)>> = vec![Vec::new(); n];
        // Qualifiers that denote something *inside* the workspace: impl
        // owners, trait names, file stems, crate names (plus their
        // `tamper_`-prefixed package forms).
        let mut workspace_quals: BTreeSet<String> = BTreeSet::new();
        for f in &sym.fns {
            workspace_quals.insert(f.stem.clone());
            workspace_quals.insert(f.krate.clone());
            workspace_quals.insert(format!("tamper_{}", f.krate));
            if let Some(o) = &f.def.owner {
                workspace_quals.insert(o.clone());
            }
            if let Some(t) = &f.def.trait_of {
                workspace_quals.insert(t.clone());
            }
        }
        for (i, f) in sym.fns.iter().enumerate() {
            for call in &f.def.calls {
                let cands = sym.named(&call.name);
                let mut targets: Vec<usize> = Vec::new();
                if call.method {
                    // `.f(…)` can only land on a function that takes a
                    // receiver, and Rust has no overloading, so the
                    // argument count must also match the candidate's arity.
                    let viable: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&j| {
                            let c = &sym.fns[j].def;
                            c.params.first().is_some_and(|p| p.contains("Self"))
                                && c.params.len() - 1 == call.args
                        })
                        .collect();
                    if call.recv_self && f.def.owner.is_some() {
                        // `self.f(...)` dispatches on the enclosing type:
                        // prefer candidates sharing the owner, the owner's
                        // trait impls (trait-default bodies fanning to
                        // implementors), or the trait the owner implements.
                        let own: Vec<usize> = viable
                            .iter()
                            .copied()
                            .filter(|&j| {
                                let c = &sym.fns[j].def;
                                c.owner == f.def.owner
                                    || c.trait_of == f.def.owner
                                    || (f.def.trait_of.is_some() && c.owner == f.def.trait_of)
                            })
                            .collect();
                        if own.is_empty() {
                            // Method lives outside the owner's impl/trait
                            // surface — fall back to receiver-taking fan-out.
                            targets.extend(viable);
                        } else {
                            targets.extend(own);
                        }
                    } else if let Some(t) = &call.recv_type {
                        // The receiver's type is locally apparent: keep
                        // candidates on that type (or implementing a trait
                        // for it), falling back to fan-out when none match.
                        let typed: Vec<usize> = viable
                            .iter()
                            .copied()
                            .filter(|&j| {
                                let c = &sym.fns[j].def;
                                c.owner.as_deref() == Some(t.as_str())
                                    || c.trait_of.as_deref() == Some(t.as_str())
                            })
                            .collect();
                        if typed.is_empty() {
                            targets.extend(viable);
                        } else {
                            targets.extend(typed);
                        }
                    } else {
                        targets.extend(viable);
                    }
                } else if let Some(q) = &call.qualifier {
                    if q == "Self" {
                        targets.extend(cands.iter().copied().filter(|&j| {
                            sym.fns[j].def.owner.is_some() && sym.fns[j].def.owner == f.def.owner
                        }));
                    } else {
                        targets.extend(cands.iter().copied().filter(|&j| {
                            sym.fns[j].def.owner.as_deref() == Some(q.as_str())
                                || sym.fns[j].stem == *q
                        }));
                    }
                } else {
                    targets.extend(
                        cands.iter().copied().filter(|&j| {
                            sym.fns[j].def.owner.is_none() || sym.fns[j].file == f.file
                        }),
                    );
                }
                if targets.is_empty() && !cands.is_empty() {
                    // The bare name exists in the workspace. If the call
                    // was qualified into workspace territory and still
                    // resolved to nothing, the resolver lost the edge —
                    // record it so effect summaries can fail closed.
                    let workspace_qualified = match &call.qualifier {
                        Some(q) if q == "Self" => f.def.owner.is_some(),
                        Some(q) => workspace_quals.contains(q.as_str()),
                        None => false,
                    };
                    if workspace_qualified && !call.method {
                        let q = call.qualifier.as_deref().unwrap_or("");
                        dropped[i].push((call.line, format!("{q}::{}", call.name)));
                    }
                }
                for t in targets {
                    if t != i {
                        out[i].push(Edge {
                            callee: t,
                            line: call.line,
                        });
                    }
                }
            }
            out[i].sort_by_key(|e| (e.callee, e.line));
            out[i].dedup_by_key(|e| e.callee);
            for e in &out[i] {
                rin[e.callee].push(i);
            }
        }
        for callers in &mut rin {
            callers.sort_unstable();
            callers.dedup();
        }
        CallGraph { out, rin, dropped }
    }

    /// Forward closure of `roots`, restricted to the `allowed` subgraph —
    /// edges leaving `allowed` are not followed, and do not re-enter.
    pub fn reachable(
        &self,
        roots: impl IntoIterator<Item = usize>,
        allowed: &BTreeSet<usize>,
    ) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = roots.into_iter().filter(|i| allowed.contains(i)).collect();
        let mut queue: VecDeque<usize> = seen.iter().copied().collect();
        while let Some(i) = queue.pop_front() {
            for e in &self.out[i] {
                if allowed.contains(&e.callee) && seen.insert(e.callee) {
                    queue.push_back(e.callee);
                }
            }
        }
        seen
    }

    /// Forward closure of `roots` restricted to `allowed`, keeping the
    /// BFS tree: for every reached non-root function, the caller it was
    /// first discovered from. Deterministic (queue order over sorted
    /// adjacency → shortest chain, lowest id ties). Used by the hot-path
    /// allocation gate to print how an allocation site is reached.
    pub fn reachable_with_parents(
        &self,
        roots: impl IntoIterator<Item = usize>,
        allowed: &BTreeSet<usize>,
    ) -> BTreeMap<usize, Option<usize>> {
        let mut seen: BTreeMap<usize, Option<usize>> = roots
            .into_iter()
            .filter(|i| allowed.contains(i))
            .map(|i| (i, None))
            .collect();
        let mut queue: VecDeque<usize> = seen.keys().copied().collect();
        while let Some(i) = queue.pop_front() {
            for e in &self.out[i] {
                if allowed.contains(&e.callee) && !seen.contains_key(&e.callee) {
                    seen.insert(e.callee, Some(i));
                    queue.push_back(e.callee);
                }
            }
        }
        seen
    }

    /// Caller-ward taint from `seeds`: for every function that can reach a
    /// seed, the next hop toward it (callee id + call-site line). Seeds
    /// themselves are not in the map. BFS over sorted adjacency makes the
    /// hop choice deterministic (shortest chain, lowest id ties).
    pub fn taint(&self, seeds: &BTreeSet<usize>) -> BTreeMap<usize, Edge> {
        let mut next: BTreeMap<usize, Edge> = BTreeMap::new();
        let mut seen: BTreeSet<usize> = seeds.clone();
        let mut queue: VecDeque<usize> = seeds.iter().copied().collect();
        while let Some(i) = queue.pop_front() {
            for &caller in &self.rin[i] {
                if seen.insert(caller) {
                    let line = self.out[caller]
                        .iter()
                        .find(|e| e.callee == i)
                        .map_or(0, |e| e.line);
                    next.insert(caller, Edge { callee: i, line });
                    queue.push_back(caller);
                }
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::lexer::{lex, strip_test_modules};
    use crate::symbols::SymbolTable;

    fn table(files: &[(&str, &str)]) -> SymbolTable {
        let parsed: Vec<_> = files
            .iter()
            .map(|(path, src)| {
                let code: Vec<_> = strip_test_modules(lex(src))
                    .into_iter()
                    .filter(|t| !t.kind.is_comment())
                    .collect();
                (path.to_string(), ast::parse(&code))
            })
            .collect();
        SymbolTable::build(&parsed)
    }

    fn id(sym: &SymbolTable, name: &str) -> usize {
        sym.named(name)[0]
    }

    #[test]
    fn qualified_calls_resolve_by_owner_or_stem_only() {
        let sym = table(&[
            (
                "crates/a/src/entry.rs",
                "fn go(x: u8) { pcap::read_all(x); Packet::parse(x); Vec::with_capacity(4); }",
            ),
            (
                "crates/a/src/pcap.rs",
                "pub fn read_all(x: u8) {}\npub fn with_capacity(n: usize) {}",
            ),
            (
                "crates/b/src/packet.rs",
                "impl Packet { pub fn parse(x: u8) {} }",
            ),
        ]);
        let g = CallGraph::build(&sym);
        let callees: Vec<usize> = g.out[id(&sym, "go")].iter().map(|e| e.callee).collect();
        assert!(callees.contains(&id(&sym, "read_all")), "stem-qualified");
        assert!(callees.contains(&id(&sym, "parse")), "owner-qualified");
        // `Vec::with_capacity` must NOT edge to the unrelated free fn:
        // `Vec` matches no known owner or file stem.
        assert!(!callees.contains(&id(&sym, "with_capacity")));
    }

    #[test]
    fn taint_flows_caller_ward_across_two_hops() {
        let sym = table(&[
            (
                "crates/a/src/entry.rs",
                "pub fn top(x: u8) { relay::mid(x); }",
            ),
            ("crates/a/src/relay.rs", "pub fn mid(x: u8) { bottom(x); }"),
            (
                "crates/a/src/sink.rs",
                "pub fn bottom(x: u8) { let _ = std::time::Instant::now(); }",
            ),
        ]);
        let g = CallGraph::build(&sym);
        let seeds: BTreeSet<usize> = [id(&sym, "bottom")].into();
        let taint = g.taint(&seeds);
        let mid = id(&sym, "mid");
        let top = id(&sym, "top");
        assert_eq!(taint[&mid].callee, id(&sym, "bottom"));
        assert_eq!(taint[&top].callee, mid);
        assert!(!taint.contains_key(&id(&sym, "bottom")), "seeds excluded");
    }

    #[test]
    fn reachability_is_confined_to_the_allowed_subgraph() {
        let sym = table(&[
            (
                "crates/a/src/r.rs",
                "pub fn parse_x(b: &[u8]) { helper(); }",
            ),
            (
                "crates/a/src/h.rs",
                "pub fn helper() { outside(); }\npub fn emit() { helper(); }",
            ),
            ("crates/b/src/o.rs", "pub fn outside() {}"),
        ]);
        let g = CallGraph::build(&sym);
        let allowed: BTreeSet<usize> =
            [id(&sym, "parse_x"), id(&sym, "helper"), id(&sym, "emit")].into();
        let seen = g.reachable([id(&sym, "parse_x")], &allowed);
        assert!(seen.contains(&id(&sym, "helper")));
        // `outside` is off the surface; `emit` calls helper but is not
        // itself reachable from the root.
        assert!(!seen.contains(&id(&sym, "outside")));
        assert!(!seen.contains(&id(&sym, "emit")));
    }

    #[test]
    fn sink_scan_finds_all_three_kinds() {
        let src = "
            fn f() {
                let t = Instant::now();
                let r = thread_rng();
                std::thread::spawn(|| {});
            }
        ";
        let code: Vec<Tok> = lex(src)
            .into_iter()
            .filter(|t| !t.kind.is_comment())
            .collect();
        let kinds: Vec<SinkKind> = find_sinks(&code, 0, code.len())
            .into_iter()
            .map(|s| s.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![SinkKind::Clock, SinkKind::Rng, SinkKind::Thread]
        );
    }
}
