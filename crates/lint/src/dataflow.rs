//! Intra-procedural dataflow over parsed function bodies.
//!
//! [`FnFlow`] gives each function use-def chains on its locals and
//! parameters: every `let` binding and reassignment is recorded with the
//! token range of its defining expression, and declared types are kept
//! for parameters and annotated bindings. Three analyses are built on
//! top:
//!
//! * [`alloc_sites`] — fresh-allocation constructors (`Vec::new`,
//!   `vec![…]`, `format!`, `.collect()`, `.clone()` on a declared heap
//!   type, …). The pipeline flags those reachable from the declared hot
//!   roots (`hot-path-alloc`).
//! * [`untrusted_len_findings`] — taint from `&[u8]`/`Reader` parameters
//!   and length-field reads flowing into `with_capacity`/`vec![0; n]`/
//!   slice-index sinks without an intervening clamp/`min`/bounds check
//!   (`untrusted-len-alloc`).
//! * [`cast_findings`] — raw `as` narrowing on seq/ack/len/off-named
//!   values (`cast-truncation`), sanitized by the same def-chain and
//!   guard evidence.
//!
//! Files the item parser loses sync on fail closed: the whole-file
//! variants treat every site as live and every value as unsanitized.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::FnDef;
use crate::lexer::{Tok, TokKind};

/// Idents that launder a tainted or oversized value: a def or sink
/// expression mentioning one of these is considered clamped.
pub const SANITIZERS: [&str; 3] = ["min", "clamp", "try_from"];

/// Narrowing cast targets the `cast-truncation` rule cares about.
/// (`usize`/`u64`/`i64` are wide enough for any wire length.)
const NARROW_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Ident `_`-segments that mark a value as sequence-space or
/// length-like for the cast rule.
const LEN_SEQ_SEGMENTS: [&str; 7] = ["seq", "ack", "isn", "off", "offset", "len", "length"];

/// Heap-owning types whose `.clone()` duplicates a buffer. `Bytes` is
/// deliberately absent: the vendored shim clones by refcount.
const HEAP_TYPES: [&str; 8] = [
    "Vec", "String", "Box", "BTreeMap", "BTreeSet", "VecDeque", "HashMap", "HashSet",
];

/// Allocation constructors by `Qualifier::method` path pair.
const CTOR_PATHS: [(&str, &str); 16] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("String", "from"),
    ("Box", "new"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
    ("VecDeque", "new"),
    ("VecDeque", "with_capacity"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("Bytes", "copy_from_slice"),
    ("Bytes", "from"),
    ("BytesMut", "with_capacity"),
];

/// Allocating methods recognizable without type information.
const ALLOC_METHODS: [&str; 6] = [
    "to_string",
    "to_owned",
    "to_vec",
    "collect",
    "to_ascii_lowercase",
    "to_lowercase",
];

fn ident(t: &[Tok], i: usize) -> Option<&str> {
    match t.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(t: &[Tok], i: usize) -> Option<char> {
    match t.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

fn line(t: &[Tok], i: usize) -> u32 {
    t.get(i).map_or(0, |t| t.line)
}

/// True for idents that can be local binding names (lowercase or `_`
/// initial — uppercase initials are types/variants/consts).
fn bindable(name: &str) -> bool {
    name.chars()
        .next()
        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
}

/// True when the ident's last `_`-segment marks sequence-space or a
/// length (`incl_len`, `opts_len`, `seq`, `payload_length`, …).
fn is_len_seq_ident(name: &str) -> bool {
    name.rsplit('_')
        .next()
        .is_some_and(|seg| LEN_SEQ_SEGMENTS.contains(&seg))
}

/// One definition of a local: the token range of its defining
/// expression (empty for parameters and uninitialized `let`s).
#[derive(Debug, Clone)]
pub struct Def {
    /// 1-based source line of the binding or assignment.
    pub line: u32,
    /// Token range `[start, end)` of the RHS expression.
    pub expr: (usize, usize),
}

/// Use-def chains for one function body.
#[derive(Debug, Default)]
pub struct FnFlow {
    /// Binding name → every definition, in body order. Parameters
    /// contribute a def with an empty expression range.
    pub defs: BTreeMap<String, Vec<Def>>,
    /// Binding name → flattened declared type text, where annotated
    /// (parameters and `let x: T` bindings).
    pub types: BTreeMap<String, String>,
    /// Names bound to untrusted byte sources: `&[u8]`/`Reader`
    /// parameters.
    pub buffers: BTreeSet<String>,
    /// True when the body reads from an io source (`.read(…)`,
    /// `read_exact(…)`) — widens the untrusted context beyond the
    /// parameter list (pcap record headers arrive this way).
    pub io_reads: bool,
}

/// Build the use-def chains for one parsed function.
pub fn flow_of(code: &[Tok], f: &FnDef) -> FnFlow {
    let mut flow = FnFlow::default();
    for (name, ty) in f.param_names.iter().zip(&f.params) {
        if name.is_empty() {
            continue;
        }
        flow.defs.entry(name.clone()).or_default().push(Def {
            line: f.start_line,
            expr: (0, 0),
        });
        flow.types.insert(name.clone(), ty.clone());
        if ty.contains("[u8]") || ty.contains("Reader") {
            flow.buffers.insert(name.clone());
        }
    }
    let (start, end) = f.body;
    let mut i = start;
    while i < end {
        if ident(code, i) == Some("let") {
            i = scan_let(code, i, end, &mut flow);
            continue;
        }
        if let Some(name) = ident(code, i) {
            if (name == "read" || name == "read_exact") && punct(code, i + 1) == Some('(') {
                flow.io_reads = true;
            }
            if bindable(name) && ident(code, i.wrapping_sub(1)).is_none() {
                if let Some(rhs_start) = assign_rhs_start(code, i, end) {
                    let rhs_end = expr_end(code, rhs_start, end);
                    flow.defs.entry(name.to_string()).or_default().push(Def {
                        line: line(code, i),
                        expr: (rhs_start, rhs_end),
                    });
                    i = rhs_end;
                    continue;
                }
            }
        }
        i += 1;
    }
    flow
}

/// If token `i` starts a (re)assignment `name = …` / `name += …` /
/// `name <<= …`, return the RHS start index.
fn assign_rhs_start(code: &[Tok], i: usize, end: usize) -> Option<usize> {
    // A field store `x.y = …` or struct literal `Foo { x: … }` is not a
    // local def; require the name not be preceded by `.` and not be
    // followed by `:`/`.`.
    if punct(code, i.wrapping_sub(1)) == Some('.') {
        return None;
    }
    let next = i + 1;
    match punct(code, next) {
        Some('=') if punct(code, next + 1) != Some('=') && punct(code, next + 1) != Some('>') => {
            // Exclude `==` (two adjacent `=` puncts) and `=>`; also make
            // sure this `=` is not the tail of `<=`/`>=`/`!=` (those have
            // the comparison punct *before* it, at `next-1 == i`, which is
            // an ident — impossible). Plain or `let`-free reassignment.
            Some(next + 1)
        }
        Some(op) if "+-*/%&|^".contains(op) && punct(code, next + 1) == Some('=') => Some(next + 2),
        Some('<') | Some('>')
            if punct(code, next + 1) == punct(code, next) && punct(code, next + 2) == Some('=') =>
        {
            Some(next + 3)
        }
        _ => None,
    }
    .filter(|&s| s < end)
}

/// Walk an expression from `start` to its terminating `;` (or `else`, or
/// an unbalanced close) at bracket depth zero; returns the exclusive end.
fn expr_end(code: &[Tok], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        match punct(code, i) {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            Some(';') if depth == 0 => return i,
            Some(',') if depth == 0 => return i,
            _ => {}
        }
        if depth == 0 && ident(code, i) == Some("else") {
            return i;
        }
        i += 1;
    }
    end
}

/// Handle one `let` binding starting at the `let` keyword; returns the
/// position to resume scanning from.
fn scan_let(code: &[Tok], let_pos: usize, end: usize, flow: &mut FnFlow) -> usize {
    // Find the top-level `=` (or statement end when there is none).
    let mut depth = 0i32;
    let mut eq = None;
    let mut colon = None;
    let mut i = let_pos + 1;
    while i < end {
        match punct(code, i) {
            Some('(') | Some('[') | Some('{') | Some('<') => depth += 1,
            Some(')') | Some(']') | Some('}') => depth -= 1,
            Some('>') if punct(code, i.wrapping_sub(1)) != Some('-') => depth -= 1,
            Some(':') if depth == 0 && punct(code, i + 1) != Some(':') && colon.is_none() => {
                colon = Some(i);
            }
            Some('=') if depth == 0 => {
                if punct(code, i + 1) == Some('=') {
                    // `==` inside a pattern guard — not the binder.
                    i += 2;
                    continue;
                }
                eq = Some(i);
                break;
            }
            Some(';') if depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    let pat_end = colon.or(eq).unwrap_or(i.min(end));
    // Bound names: bindable idents in the pattern (handles `mut x`,
    // `Some(x)`, `(a, b)`). Uppercase idents are constructors, not
    // bindings; `mut`/`ref` are modifiers.
    let mut names: Vec<String> = Vec::new();
    for j in let_pos + 1..pat_end {
        if let Some(name) = ident(code, j) {
            if bindable(name) && name != "mut" && name != "ref" && name != "_" {
                names.push(name.to_string());
            }
        }
    }
    let Some(eq) = eq else {
        // `let x: T;` — declaration only.
        if let (Some(c), [name]) = (colon, names.as_slice()) {
            flow.types.insert(
                name.clone(),
                flatten_idents(code, c + 1, pat_end.max(c + 1)),
            );
        }
        for name in &names {
            flow.defs.entry(name.clone()).or_default().push(Def {
                line: line(code, let_pos),
                expr: (0, 0),
            });
        }
        return i + 1;
    };
    if let (Some(c), [name]) = (colon, names.as_slice()) {
        flow.types
            .insert(name.clone(), flatten_idents(code, c + 1, eq));
    }
    // An `if let` / `while let` scrutinee ends at the block it guards:
    // without this, the `{` counts as an opening bracket and the whole
    // block body leaks into the def expression (tainting pattern
    // bindings with any wire-read the block happens to perform).
    let conditional = matches!(
        ident(code, let_pos.wrapping_sub(1)),
        Some("if") | Some("while")
    );
    let rhs_end = if conditional {
        let mut depth = 0i32;
        let mut j = eq + 1;
        while j < end {
            match punct(code, j) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('{') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        j
    } else {
        expr_end(code, eq + 1, end)
    };
    for name in &names {
        flow.defs.entry(name.clone()).or_default().push(Def {
            line: line(code, let_pos),
            expr: (eq + 1, rhs_end),
        });
    }
    rhs_end
}

/// Compact text of the idents/puncts in a range — enough for type
/// fragment matching (`Vec<u8>`, `&[u8]`, `Reader`).
fn flatten_idents(code: &[Tok], start: usize, end: usize) -> String {
    let mut out = String::new();
    for t in &code[start.min(code.len())..end.min(code.len())] {
        match &t.kind {
            TokKind::Ident(s) => {
                if !out.is_empty() && out.ends_with(|c: char| c.is_ascii_alphanumeric()) {
                    out.push(' ');
                }
                out.push_str(s);
            }
            TokKind::Punct(c) => out.push(*c),
            TokKind::Lit(s) => out.push_str(s),
            _ => {}
        }
    }
    out
}

/// Does the token range mention any of the given names?
fn mentions(code: &[Tok], range: (usize, usize), names: &BTreeSet<String>) -> bool {
    (range.0..range.1.min(code.len())).any(|i| ident(code, i).is_some_and(|s| names.contains(s)))
}

/// Does the token range mention a sanitizer (`min`/`clamp`/`try_from`)?
fn sanitized_range(code: &[Tok], start: usize, end: usize) -> bool {
    (start..end.min(code.len())).any(|i| ident(code, i).is_some_and(|s| SANITIZERS.contains(&s)))
}

/// True when a def's expression reads a wire value: a byte-getter on a
/// reader (`r.u16()`, `read_u32(…)`), an endian helper (`le_u32(…)`,
/// `from_be_bytes`), or a direct index into a tracked untrusted buffer.
fn reads_wire_value(code: &[Tok], range: (usize, usize), buffers: &BTreeSet<String>) -> bool {
    for i in range.0..range.1.min(code.len()) {
        let Some(name) = ident(code, i) else { continue };
        let call_like = {
            let mut after = i + 1;
            if punct(code, after) == Some(':') && punct(code, after + 1) == Some(':') {
                after += 2;
            }
            punct(code, after) == Some('(')
        };
        if call_like
            && (matches!(
                name,
                "u8" | "u16" | "u32" | "u64" | "from_be_bytes" | "from_le_bytes"
            ) || name.starts_with("read_")
                || name.starts_with("le_")
                || name.starts_with("be_"))
        {
            return true;
        }
        if buffers.contains(name) && punct(code, i + 1) == Some('[') {
            return true;
        }
    }
    false
}

/// Fixpoint taint: names whose value derives from the wire without an
/// intervening sanitizer. Seeds are defs that read a wire value; taint
/// propagates through defs that mention a tainted name.
pub fn tainted_names(code: &[Tok], flow: &FnFlow) -> BTreeSet<String> {
    if flow.buffers.is_empty() && !flow.io_reads {
        return BTreeSet::new();
    }
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut grew = false;
        for (name, defs) in &flow.defs {
            if tainted.contains(name) {
                continue;
            }
            let hit = defs.iter().any(|d| {
                d.expr.0 < d.expr.1
                    && !sanitized_range(code, d.expr.0, d.expr.1)
                    && (reads_wire_value(code, d.expr, &flow.buffers)
                        || mentions(code, d.expr, &tainted))
            });
            if hit {
                tainted.insert(name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    tainted
}

/// Is `name` compared (`<`/`>`/`<=`/`>=`) anywhere in `[start, before)`?
/// A bounds check ahead of the sink counts as sanitization even when the
/// clamped value is not rebound (`if n > MAX { return Err(…) }`).
fn guarded_before(code: &[Tok], start: usize, before: usize, name: &str) -> bool {
    for i in start..before.min(code.len()) {
        if ident(code, i) == Some(name) {
            for j in i + 1..(i + 6).min(before) {
                match punct(code, j) {
                    Some('<') | Some('>') => return true,
                    Some(';') | Some('{') => break,
                    _ => {}
                }
            }
        }
    }
    false
}

/// One dataflow finding: a line plus a rendered message.
#[derive(Debug)]
pub struct FlowFinding {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// The capacity/index sinks a tainted length must not reach unclamped.
/// Returns `(sink token index, arg range, sink label)`.
fn len_sinks(code: &[Tok], start: usize, end: usize) -> Vec<(usize, (usize, usize), String)> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if ident(code, i) == Some("with_capacity") && punct(code, i + 1) == Some('(') {
            let close = match_close(code, i + 1, end, '(', ')');
            out.push((i, (i + 2, close), "with_capacity".to_string()));
            i = close;
            continue;
        }
        if ident(code, i) == Some("vec")
            && punct(code, i + 1) == Some('!')
            && punct(code, i + 2) == Some('[')
        {
            let close = match_close(code, i + 2, end, '[', ']');
            // Only the `vec![elem; len]` form sizes from a value: the
            // len part follows the top-level `;`.
            let mut depth = 0i32;
            for j in i + 3..close {
                match punct(code, j) {
                    Some('(') | Some('[') | Some('{') => depth += 1,
                    Some(')') | Some(']') | Some('}') => depth -= 1,
                    Some(';') if depth == 0 => {
                        out.push((i, (j + 1, close), "vec![_; …]".to_string()));
                        break;
                    }
                    _ => {}
                }
            }
            i = close;
            continue;
        }
        // Direct slice index `buf[expr]`: `[` in index position (preceded
        // by a non-keyword ident or a close bracket — `let [a, b] = …`
        // and `if let [x] = …` are patterns, not indexing).
        if punct(code, i) == Some('[')
            && (ident(code, i.wrapping_sub(1))
                .is_some_and(|n| !crate::rules::NON_INDEX_KEYWORDS.contains(&n))
                || matches!(punct(code, i.wrapping_sub(1)), Some(')') | Some(']')))
            && ident(code, i.wrapping_sub(1)) != Some("vec")
        {
            let close = match_close(code, i, end, '[', ']');
            out.push((i, (i + 1, close), "slice index".to_string()));
            i += 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Matching close bracket for the opener at `open` (which must hold
/// `open_c`); returns `end` when unbalanced.
fn match_close(code: &[Tok], open: usize, end: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0i32;
    for i in open..end {
        let p = punct(code, i);
        if p == Some(open_c) {
            depth += 1;
        } else if p == Some(close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    end
}

/// `untrusted-len-alloc` over one parsed function.
pub fn untrusted_len_findings(code: &[Tok], f: &FnDef, flow: &FnFlow) -> Vec<FlowFinding> {
    let tainted = tainted_names(code, flow);
    if tainted.is_empty() {
        return Vec::new();
    }
    let (start, end) = f.body;
    let mut out = Vec::new();
    for (sink_pos, arg, label) in len_sinks(code, start, end) {
        if sanitized_range(code, arg.0, arg.1) {
            continue;
        }
        let Some(name) = (arg.0..arg.1)
            .filter_map(|i| ident(code, i))
            .find(|n| tainted.contains(*n))
        else {
            continue;
        };
        if guarded_before(code, start, sink_pos, name) {
            continue;
        }
        out.push(FlowFinding {
            line: line(code, sink_pos),
            message: format!(
                "wire-derived length `{name}` flows into {label} without a clamp/`min`/bounds check"
            ),
        });
    }
    out
}

/// Whole-file fail-closed variant of `untrusted-len-alloc`: with no
/// parsed bodies to prove otherwise, every capacity sink sized by a
/// non-literal is flagged. (Index sinks are left to the `index` rule's
/// own fail-closed path — without use-def evidence every subscript in
/// the file would fire.)
pub fn untrusted_len_fail_closed(code: &[Tok]) -> Vec<FlowFinding> {
    let mut out = Vec::new();
    for (sink_pos, arg, label) in len_sinks(code, 0, code.len()) {
        if label == "slice index" || sanitized_range(code, arg.0, arg.1) {
            continue;
        }
        let Some(name) = (arg.0..arg.1)
            .filter_map(|i| ident(code, i))
            .find(|n| bindable(n))
        else {
            continue;
        };
        out.push(FlowFinding {
            line: line(code, sink_pos),
            message: format!(
                "capacity sink {label} sized by `{name}` in a file the parser lost sync on \
                 (fail closed)"
            ),
        });
    }
    out
}

/// `cast-truncation` over one token range. `flow` supplies def-chain
/// sanitizer evidence when the body parsed; `None` fails closed.
pub fn cast_findings(
    code: &[Tok],
    start: usize,
    end: usize,
    flow: Option<&FnFlow>,
) -> Vec<FlowFinding> {
    let mut out = Vec::new();
    for i in start..end {
        if ident(code, i) != Some("as") {
            continue;
        }
        let Some(target) = ident(code, i + 1) else {
            continue;
        };
        if !NARROW_TYPES.contains(&target) {
            continue;
        }
        // Candidate length/sequence values feeding the cast.
        let mut cands: Vec<&str> = Vec::new();
        let mut group = None;
        if let Some(prev) = ident(code, i.wrapping_sub(1)) {
            if is_len_seq_ident(prev) {
                cands.push(prev);
            }
        } else if punct(code, i.wrapping_sub(1)) == Some(')') {
            let open = match_open(code, start, i - 1);
            group = Some((open, i - 1));
            for j in open..i - 1 {
                if let Some(name) = ident(code, j) {
                    // A method *name* is not a value — `name.len()` feeds
                    // the receiver through, handled just below.
                    let is_method_name = punct(code, j.wrapping_sub(1)) == Some('.')
                        && punct(code, j + 1) == Some('(');
                    if is_len_seq_ident(name) && !is_method_name {
                        cands.push(name);
                    }
                    // `x.len()` inside the group: the receiver's length.
                    if punct(code, j + 1) == Some('.')
                        && ident(code, j + 2) == Some("len")
                        && punct(code, j + 3) == Some('(')
                    {
                        cands.push(name);
                    }
                }
            }
            // The call the `)` closes: `recv.method(args) as u16` puts the
            // receiver *outside* the group.
            if let Some(m) = ident(code, open.wrapping_sub(1)) {
                if SANITIZERS.contains(&m) {
                    // `x.min(1500) as u16` — already clamped.
                    continue;
                }
                let dotted = punct(code, open.wrapping_sub(2)) == Some('.');
                if let Some(recv) = dotted.then(|| ident(code, open.wrapping_sub(3))).flatten() {
                    // `segment.len() as u16` counts for any receiver; other
                    // methods only when the receiver is length/seq-named.
                    if m == "len" || is_len_seq_ident(recv) {
                        cands.push(recv);
                    }
                } else if !dotted && is_len_seq_ident(m) {
                    // Free call whose *name* is length-like: `header_len(x)`.
                    cands.push(m);
                }
            }
        }
        cands.sort_unstable();
        cands.dedup();
        if cands.is_empty() {
            continue;
        }
        if let Some((g0, g1)) = group {
            if sanitized_range(code, g0, g1) {
                continue;
            }
        }
        let all_clean = cands.iter().all(|name| {
            let def_sanitized = flow.is_some_and(|fl| {
                fl.defs.get(*name).is_some_and(|defs| {
                    defs.iter()
                        .any(|d| d.expr.0 < d.expr.1 && sanitized_range(code, d.expr.0, d.expr.1))
                })
            });
            def_sanitized || (flow.is_some() && guarded_before(code, start, i, name))
        });
        if all_clean {
            continue;
        }
        out.push(FlowFinding {
            line: line(code, i),
            message: format!(
                "`{} as {target}` may silently truncate; clamp or `try_from` first",
                cands.join("`/`")
            ),
        });
    }
    out
}

/// Matching open paren for the `)` at `close`, scanning back no further
/// than `floor`.
fn match_open(code: &[Tok], floor: usize, close: usize) -> usize {
    let mut depth = 0i32;
    let mut i = close;
    loop {
        match punct(code, i) {
            Some(')') => depth += 1,
            Some('(') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        if i == floor {
            return floor;
        }
        i -= 1;
    }
}

/// One fresh-allocation site.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// 1-based source line.
    pub line: u32,
    /// What allocates, as rendered in the finding (`vec![…]`,
    /// `Vec::with_capacity`, `.collect()`, …).
    pub what: String,
}

/// Every fresh-allocation constructor in `[start, end)`. `flow` enables
/// the `.clone()`-on-declared-heap-type check; without it clones are
/// skipped (receiver types unknown).
pub fn alloc_sites(
    code: &[Tok],
    start: usize,
    end: usize,
    flow: Option<&FnFlow>,
) -> Vec<AllocSite> {
    let mut out = Vec::new();
    for i in start..end {
        let Some(name) = ident(code, i) else { continue };
        // Macros: `vec![…]`, `format!(…)`.
        if punct(code, i + 1) == Some('!') && (name == "vec" || name == "format") {
            let open = punct(code, i + 2);
            if open == Some('[') || open == Some('(') {
                out.push(AllocSite {
                    line: line(code, i),
                    what: if name == "vec" {
                        "vec![…]"
                    } else {
                        "format!(…)"
                    }
                    .to_string(),
                });
            }
            continue;
        }
        // Skip turbofish between the name and its `(`.
        let mut after = i + 1;
        if punct(code, after) == Some(':')
            && punct(code, after + 1) == Some(':')
            && punct(code, after + 2) == Some('<')
        {
            let mut depth = 0i32;
            let mut j = after + 2;
            while j < end {
                match punct(code, j) {
                    Some('<') => depth += 1,
                    Some('>') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            after = j + 1;
        }
        if punct(code, after) != Some('(') {
            continue;
        }
        // Qualified constructors: `Vec::new(…)`, `Bytes::copy_from_slice(…)`.
        if punct(code, i.wrapping_sub(1)) == Some(':')
            && punct(code, i.wrapping_sub(2)) == Some(':')
        {
            if let Some(q) = ident(code, i.wrapping_sub(3)) {
                if CTOR_PATHS.contains(&(q, name)) {
                    out.push(AllocSite {
                        line: line(code, i),
                        what: format!("{q}::{name}"),
                    });
                }
            }
            continue;
        }
        // Allocating methods: `.collect()`, `.to_vec()`, `.to_owned()`, …
        if punct(code, i.wrapping_sub(1)) == Some('.') {
            if ALLOC_METHODS.contains(&name) {
                out.push(AllocSite {
                    line: line(code, i),
                    what: format!(".{name}()"),
                });
            } else if name == "clone" {
                // `.clone()` only when the receiver is a local/param with a
                // declared heap-owning type.
                if let Some(recv) = ident(code, i.wrapping_sub(2)) {
                    let heap = flow
                        .and_then(|fl| fl.types.get(recv))
                        .is_some_and(|ty| HEAP_TYPES.iter().any(|h| ty.contains(h)));
                    if heap {
                        out.push(AllocSite {
                            line: line(code, i),
                            what: format!("`{recv}`.clone() (declared heap type)"),
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::{lex, strip_test_modules};

    fn prep(src: &str) -> (Vec<Tok>, crate::ast::ParsedFile) {
        let code: Vec<Tok> = strip_test_modules(lex(src))
            .into_iter()
            .filter(|t| !t.kind.is_comment())
            .collect();
        let parsed = parse(&code);
        (code, parsed)
    }

    #[test]
    fn defs_and_types_are_tracked() {
        let (code, p) = prep(
            "fn f(data: &[u8]) -> usize {
                 let mut n: usize = 0;
                 n = data.len();
                 let v: Vec<u8> = Vec::new();
                 n + v.len()
             }",
        );
        let flow = flow_of(&code, &p.fns[0]);
        assert!(flow.buffers.contains("data"));
        assert_eq!(flow.defs["n"].len(), 2, "{:?}", flow.defs);
        assert!(flow.types["v"].contains("Vec"));
    }

    #[test]
    fn taint_flows_and_sanitizers_stop_it() {
        let (code, p) = prep(
            "fn f(r: &mut Reader) -> Vec<u8> {
                 let n = r.u16()? as usize;
                 let m = n + 4;
                 let k = m.min(64);
                 let a = Vec::with_capacity(m);
                 let b = Vec::with_capacity(k);
                 a
             }",
        );
        let flow = flow_of(&code, &p.fns[0]);
        let tainted = tainted_names(&code, &flow);
        assert!(
            tainted.contains("n") && tainted.contains("m"),
            "{tainted:?}"
        );
        assert!(!tainted.contains("k"), "{tainted:?}");
        let findings = untrusted_len_findings(&code, &p.fns[0], &flow);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains('m'), "{}", findings[0].message);
    }

    #[test]
    fn guard_comparison_counts_as_bounds_check() {
        let (code, p) = prep(
            "fn f(r: &mut Reader) -> Result<Vec<u8>> {
                 let n = r.u32()?;
                 if n > MAX_LEN { return Err(Error::TooBig); }
                 let mut v = vec![0u8; n as usize];
                 Ok(v)
             }",
        );
        let flow = flow_of(&code, &p.fns[0]);
        let findings = untrusted_len_findings(&code, &p.fns[0], &flow);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cast_rule_fires_and_respects_sanitizers() {
        let (code, p) = prep(
            "fn f(payload_len: usize, seq: u32) -> (u16, u8, u16) {
                 let a = payload_len as u16;
                 let b = (seq.min(255)) as u8;
                 let c = payload_len.min(1500) as u16;
                 (a, b, c as u16)
             }",
        );
        let flow = flow_of(&code, &p.fns[0]);
        let findings = cast_findings(&code, p.fns[0].body.0, p.fns[0].body.1, Some(&flow));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("payload_len"));
    }

    #[test]
    fn len_call_feeds_cast_rule() {
        let (code, p) = prep("fn f(segment: &[u8]) -> u16 { (segment.len()) as u16 }");
        let flow = flow_of(&code, &p.fns[0]);
        let findings = cast_findings(&code, p.fns[0].body.0, p.fns[0].body.1, Some(&flow));
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn alloc_sites_cover_ctors_macros_methods_and_heap_clones() {
        let (code, p) = prep(
            "fn f(xs: &[u32]) -> Vec<u32> {
                 let buf: Vec<u32> = Vec::with_capacity(4);
                 let s = format!(\"x\");
                 let t = s.to_owned();
                 let c = buf.clone();
                 let bits = xs.iter().copied().collect::<Vec<u32>>();
                 let n = xs.len();
                 bits
             }",
        );
        let flow = flow_of(&code, &p.fns[0]);
        let sites = alloc_sites(&code, p.fns[0].body.0, p.fns[0].body.1, Some(&flow));
        let whats: Vec<&str> = sites.iter().map(|s| s.what.as_str()).collect();
        assert!(whats.contains(&"Vec::with_capacity"), "{whats:?}");
        assert!(whats.contains(&"format!(…)"), "{whats:?}");
        assert!(whats.contains(&".to_owned()"), "{whats:?}");
        assert!(whats.contains(&".collect()"), "{whats:?}");
        assert!(whats.iter().any(|w| w.contains("clone")), "{whats:?}");
        // `.len()` and `.iter()` are not allocations.
        assert_eq!(whats.len(), 5, "{whats:?}");
    }

    #[test]
    fn refcounted_bytes_clone_is_not_flagged() {
        let (code, p) =
            prep("fn f(payload: &Bytes) -> Bytes { let b: Bytes = payload.clone(); b.clone() }");
        let flow = flow_of(&code, &p.fns[0]);
        let sites = alloc_sites(&code, p.fns[0].body.0, p.fns[0].body.1, Some(&flow));
        assert!(sites.is_empty(), "{sites:?}");
    }
}
