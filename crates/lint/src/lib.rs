//! tamperlint — the repo-native static-analysis gate.
//!
//! The reproduction's headline guarantee is determinism: the same capture
//! bytes must produce the same report bytes, on any machine, in any thread
//! interleaving. Two whole classes of Rust code silently break that promise
//! (`HashMap` iteration order, ambient clocks/randomness), and a third class
//! — panicking parse paths — turns malformed capture bytes into a crashed
//! pipeline. tamperlint enforces all three properties at the source level
//! with its own lightweight lexer ([`lexer`]): no rustc plugin, no network,
//! no nightly.
//!
//! Rule families (see [`rules`]):
//!
//! | rule           | scope                               | forbids |
//! |----------------|-------------------------------------|---------|
//! | `map-iter`     | `crates/analysis`, `crates/core`    | `HashMap`/`HashSet` |
//! | `ambient-clock`| all pipeline crates                 | `SystemTime::now`, `Instant::now` |
//! | `clock-containment` | all pipeline crates (obs exempt) | any other `Instant`/`SystemTime` mention; clocks only via `tamper-obs` |
//! | `ambient-rng`  | all pipeline crates                 | `thread_rng`, `from_entropy`, `OsRng`, `rand::random` |
//! | `thread-containment` | all pipeline crates (engine exempt) | `crossbeam`, `thread::spawn`, `thread::scope`; sharding only via `capture::engine` |
//! | `panic`        | `wire/*`, capture parse surface     | `.unwrap()`, `.expect()`, `panic!`, `unreachable!` |
//! | `index`        | `wire/*`, capture parse surface     | direct slice indexing |
//! | `taxonomy`     | signature.rs / golden / DESIGN.md   | drift between the three |
//!
//! A finding is waived in source with
//! `// tamperlint: allow(<rule>) — <reason>`; unused or malformed waivers
//! are findings themselves. Run it as `cargo xtask analyze [--json]`; it is
//! part of `cargo xtask ci`.

pub mod lexer;
pub mod rules;
pub mod taxonomy;

pub use rules::{lint_file, parse_waiver, scope_for, FileLint, Finding, RULES};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The outcome of a whole-repo analysis.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unwaived findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by source waivers.
    pub waived: Vec<Finding>,
    /// Number of `.rs` files lexed and linted.
    pub files_scanned: usize,
    /// Wall-clock runtime of the analysis.
    pub runtime_ms: u64,
}

impl Analysis {
    /// True when the gate passes: zero unwaived findings.
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// Per-rule counters: `(rule, findings, waived)` for every rule.
    pub fn rule_counts(&self) -> Vec<(&'static str, usize, usize)> {
        let mut fired: BTreeMap<&str, usize> = BTreeMap::new();
        let mut waived: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &self.findings {
            *fired.entry(f.rule).or_default() += 1;
        }
        for f in &self.waived {
            *waived.entry(f.rule).or_default() += 1;
        }
        RULES
            .iter()
            .map(|r| {
                (
                    *r,
                    fired.get(r).copied().unwrap_or(0),
                    waived.get(r).copied().unwrap_or(0),
                )
            })
            .collect()
    }

    /// Human-readable report, one finding per line plus a summary block.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "tamperlint: {} file(s), {} finding(s), {} waived, {} ms\n",
            self.files_scanned,
            self.findings.len(),
            self.waived.len(),
            self.runtime_ms
        ));
        for (rule, fired, waived) in self.rule_counts() {
            if fired > 0 || waived > 0 {
                out.push_str(&format!("  {rule}: {fired} finding(s), {waived} waived\n"));
            }
        }
        out.push_str(if self.ok() {
            "tamperlint: PASS\n"
        } else {
            "tamperlint: FAIL\n"
        });
        out
    }

    /// Machine-readable report (hand-rolled JSON; the workspace is offline
    /// and vendors no JSON crate).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"ok\":{},", self.ok()));
        out.push_str(&format!("\"runtime_ms\":{},", self.runtime_ms));
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!("\"waived\":{},", self.waived.len()));
        out.push_str("\"rules\":[");
        let rules: Vec<String> = self
            .rule_counts()
            .into_iter()
            .map(|(rule, fired, waived)| {
                format!(
                    "{{\"rule\":{},\"findings\":{fired},\"waived\":{waived}}}",
                    json_escape(rule)
                )
            })
            .collect();
        out.push_str(&rules.join(","));
        out.push_str("],\"findings\":[");
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
                    json_escape(f.rule),
                    json_escape(&f.file),
                    f.line,
                    json_escape(&f.message)
                )
            })
            .collect();
        out.push_str(&findings.join(","));
        out.push_str("]}");
        out
    }
}

/// Escape a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lint one source string under the scope its path would get in the repo.
/// This is the entry point the fixture tests use.
pub fn lint_source(repo_rel_path: &str, src: &str) -> FileLint {
    rules::lint_file(repo_rel_path, src, rules::scope_for(repo_rel_path))
}

/// Run the full gate against a repo checkout.
pub fn analyze(root: &Path) -> Analysis {
    let t0 = Instant::now();
    let mut analysis = Analysis::default();
    for rel in source_files(root) {
        let scope = rules::scope_for(&rel);
        if scope.is_empty() {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let lint = rules::lint_file(&rel, &src, scope);
        analysis.findings.extend(lint.findings);
        analysis.waived.extend(lint.waived);
        analysis.files_scanned += 1;
    }
    analysis.findings.extend(taxonomy::check(root));
    analysis.findings.sort();
    analysis.runtime_ms = t0.elapsed().as_millis() as u64;
    analysis
}

/// All `.rs` files under the repo's first-party trees, repo-relative with
/// forward slashes, in sorted (deterministic) order.
fn source_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.join("crates"), root.join("src")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != ".git" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_escape("⟨SYN → ∅⟩"), "\"⟨SYN → ∅⟩\"");
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let mut a = Analysis::default();
        a.findings.push(Finding {
            file: "crates/wire/src/x.rs".into(),
            line: 3,
            rule: "index",
            message: "direct slice indexing \"quoted\"".into(),
        });
        a.files_scanned = 1;
        let json = a.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"rule\":\"index\",\"findings\":1,\"waived\":0"));
        assert!(json.contains("\\\"quoted\\\""));
    }

    #[test]
    fn rule_counts_cover_every_rule() {
        let counts = Analysis::default().rule_counts();
        assert_eq!(counts.len(), RULES.len());
        assert!(counts.iter().all(|(_, f, w)| *f == 0 && *w == 0));
    }
}
