//! tamperlint — the repo-native static-analysis gate.
//!
//! The reproduction's headline guarantee is determinism: the same capture
//! bytes must produce the same report bytes, on any machine, in any thread
//! interleaving. Several classes of Rust code silently break that promise
//! (`HashMap` iteration order, ambient clocks/randomness, raw u32
//! sequence-space arithmetic), and panicking parse paths turn malformed
//! capture bytes into a crashed pipeline. tamperlint enforces these
//! properties at the source level with its own lexer ([`lexer`]), a
//! lightweight recursive-descent parser ([`ast`]), a workspace symbol
//! table ([`symbols`]) and an intra-workspace call graph ([`callgraph`]):
//! no rustc plugin, no network, no nightly.
//!
//! Rule families (see [`rules`]):
//!
//! | rule           | scope                               | forbids |
//! |----------------|-------------------------------------|---------|
//! | `map-iter`     | `crates/analysis`, `crates/core`, `crates/lint` | `HashMap`/`HashSet` |
//! | `ambient-clock`| all pipeline crates                 | `SystemTime::now`, `Instant::now` — textual *or reached transitively through the call graph* |
//! | `clock-containment` | all pipeline crates (obs exempt) | any other `Instant`/`SystemTime` mention; clocks only via `tamper-obs` |
//! | `ambient-rng`  | all pipeline crates                 | `thread_rng`, `from_entropy`, `OsRng`, `rand::random` — textual or transitive |
//! | `thread-containment` | all pipeline crates (engine exempt) | `crossbeam`, `thread::spawn`, `thread::scope` — textual or transitive |
//! | `panic`        | untrusted-reachable fns on the parse surface | `.unwrap()`, `.expect()`, `panic!`, `unreachable!` |
//! | `index`        | untrusted-reachable fns on the parse surface | direct slice indexing |
//! | `wraparound-arithmetic` | `wire/*`, `core/*`         | raw `+`/`-`/`*` on seq/ack/offset-named values |
//! | `exhaustive-signature-match` | all pipeline crates   | `_` wildcards / catch-all bindings in a `match` over `Signature` |
//! | `discarded-wire-error` | all pipeline crates         | `let _ =` / `.ok()` swallowing a `Result<_, WireError>` |
//! | `hot-path-alloc` | all pipeline crates             | fresh allocations ([`dataflow::alloc_sites`]) on functions call-graph-reachable from the [`HOT_ROOTS`] registry |
//! | `untrusted-len-alloc` | untrusted-reachable parse surface | wire-derived lengths flowing into `with_capacity`/`vec![_; n]`/index sinks unclamped |
//! | `cast-truncation` | `wire/*`, `core/*`             | raw `as` narrowing of seq/ack/len/off-named values |
//! | `taxonomy`     | signature.rs / golden / DESIGN.md   | drift between the three |
//!
//! The pipeline runs in two phases. Phase 1 scans each file alone
//! (waivers, token-window rules, AST rules). Phase 2 builds the symbol
//! table and call graph, then (a) adds *transitive* containment findings —
//! a pipeline function whose call chain reaches `Instant::now` two crates
//! away is flagged at its call site, with the chain in the message; (b)
//! runs the discarded-wire-error rule against the workspace-wide
//! return-type table; (c) builds per-function use-def chains ([`dataflow`])
//! and runs the three dataflow rule families — `untrusted-len-alloc` and
//! `cast-truncation` per file, `hot-path-alloc` over the forward closure
//! of the [`HOT_ROOTS`] registry with the discovery chain in the message;
//! (d) restricts `panic`/`index` findings to functions
//! reachable from untrusted-input roots (parse/read/run/…-named functions
//! or those taking `&[u8]`/`Reader` parameters), so emit-side code on the
//! parse surface no longer needs waivers. Files the parser loses sync on
//! fail closed: every finding in them is kept, and the dataflow rules
//! treat every site as live and every value as unsanitized.
//!
//! A finding is waived in source with
//! `// tamperlint: allow(<rule>) — <reason>`; unused or malformed waivers
//! are findings themselves. Every finding carries a stable
//! line-number-independent [`fingerprint`]; `cargo xtask analyze` checks
//! them against the committed [`baseline`] (`tamperlint.baseline`) in
//! `--deny-new` mode, which is how `cargo xtask ci` runs the gate.

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod fingerprint;
pub mod lexer;
pub mod rules;
pub mod symbols;
pub mod taxonomy;

pub use rules::{parse_waiver, scope_for, FileLint, Finding, Scope, RULES};

use crate::ast::ParsedFile;
use crate::callgraph::{CallGraph, SinkKind};
use crate::rules::{FileScan, ScanCtx};
use crate::symbols::SymbolTable;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The declared hot roots of the per-flow pipeline: `(owner, fn)` pairs
/// matched against a function's `impl` owner *or* the trait an
/// `impl Trait for Type` block implements. Everything the call graph can
/// reach from these runs once per packet or per flow at line rate, so
/// `hot-path-alloc` bans fresh allocations on the whole closure.
pub const HOT_ROOTS: [(&str, &str); 7] = [
    ("FlowMachine", "process"),
    ("FlowMachine", "analyze"),
    ("FlowSource", "fill"),
    ("SourceShard", "fill"),
    ("SourceShard", "absorb"),
    ("EndpointMachine", "process"),
    ("BatchClassifier", "classify_batch"),
];

/// The outcome of a whole-repo analysis.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unwaived findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by source waivers.
    pub waived: Vec<Finding>,
    /// Number of `.rs` files lexed and linted.
    pub files_scanned: usize,
    /// Wall-clock runtime of the analysis.
    pub runtime_ms: u64,
    /// Per-stage dataflow timings, microseconds (build + one entry per
    /// dataflow rule family).
    pub rule_timings: Vec<(&'static str, u64)>,
}

impl Analysis {
    /// True when the gate passes: zero unwaived findings.
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// Per-rule counters: `(rule, findings, waived)` for every rule.
    pub fn rule_counts(&self) -> Vec<(&'static str, usize, usize)> {
        let mut fired: BTreeMap<&str, usize> = BTreeMap::new();
        let mut waived: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &self.findings {
            *fired.entry(f.rule).or_default() += 1;
        }
        for f in &self.waived {
            *waived.entry(f.rule).or_default() += 1;
        }
        RULES
            .iter()
            .map(|r| {
                (
                    *r,
                    fired.get(r).copied().unwrap_or(0),
                    waived.get(r).copied().unwrap_or(0),
                )
            })
            .collect()
    }

    /// Human-readable report, one finding per line plus a summary block.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "tamperlint: {} file(s), {} finding(s), {} waived, {} ms\n",
            self.files_scanned,
            self.findings.len(),
            self.waived.len(),
            self.runtime_ms
        ));
        for (rule, fired, waived) in self.rule_counts() {
            if fired > 0 || waived > 0 {
                out.push_str(&format!("  {rule}: {fired} finding(s), {waived} waived\n"));
            }
        }
        if !self.rule_timings.is_empty() {
            let parts: Vec<String> = self
                .rule_timings
                .iter()
                .map(|(stage, us)| format!("{stage} {us}µs"))
                .collect();
            out.push_str(&format!("  dataflow: {}\n", parts.join(", ")));
        }
        out.push_str(if self.ok() {
            "tamperlint: PASS\n"
        } else {
            "tamperlint: FAIL\n"
        });
        out
    }

    /// SARIF-shaped machine-readable report (hand-rolled JSON; the
    /// workspace is offline and vendors no JSON crate). One run, one
    /// result per finding, fingerprints under `tamperlint/v1`, and the
    /// gate counters in the run's `properties` bag.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"version\":\"2.1.0\",");
        out.push_str("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
        out.push_str("\"runs\":[{\"tool\":{\"driver\":{\"name\":\"tamperlint\",\"rules\":[");
        let rules: Vec<String> = RULES
            .iter()
            .map(|r| format!("{{\"id\":{}}}", json_escape(r)))
            .collect();
        out.push_str(&rules.join(","));
        out.push_str("]}},\"results\":[");
        let results: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
                     \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                     {{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}],\
                     \"fingerprints\":{{\"tamperlint/v1\":{}}}}}",
                    json_escape(f.rule),
                    json_escape(&f.message),
                    json_escape(&f.file),
                    f.line.max(1),
                    json_escape(&f.fingerprint)
                )
            })
            .collect();
        out.push_str(&results.join(","));
        out.push_str("],\"properties\":{");
        out.push_str(&format!("\"ok\":{},", self.ok()));
        out.push_str(&format!("\"runtime_ms\":{},", self.runtime_ms));
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!("\"waived\":{},", self.waived.len()));
        out.push_str("\"dataflow_timing_us\":{");
        let timings: Vec<String> = self
            .rule_timings
            .iter()
            .map(|(stage, us)| format!("{}:{us}", json_escape(stage)))
            .collect();
        out.push_str(&timings.join(","));
        out.push_str("},");
        out.push_str("\"rule_counts\":{");
        let counts: Vec<String> = self
            .rule_counts()
            .into_iter()
            .map(|(rule, fired, waived)| {
                format!(
                    "{}:{{\"findings\":{fired},\"waived\":{waived}}}",
                    json_escape(rule)
                )
            })
            .collect();
        out.push_str(&counts.join(","));
        out.push_str("}}}]}");
        out
    }
}

/// Escape a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Function-name prefixes that mark untrusted-input roots on the parse
/// surface (entry points that receive bytes off the wire or drive them).
const ROOT_PREFIXES: [&str; 9] = [
    "parse",
    "read",
    "run",
    "next",
    "fill",
    "absorb",
    "finish",
    "route",
    "flows_from",
];

/// Parameter-type fragments that mark a function as an untrusted root.
const ROOT_PARAM_MARKERS: [&str; 2] = ["[u8]", "Reader"];

/// Build the scan context for a file set: the `Signature` variant names
/// come from whichever input is a `signature.rs`.
fn scan_ctx(files: &[(&str, &str)]) -> ScanCtx {
    let mut ctx = ScanCtx::default();
    for (path, src) in files {
        if *path == "signature.rs" || path.ends_with("/signature.rs") {
            ctx.signature_variants = taxonomy::signature_variant_names(src);
        }
    }
    ctx
}

/// Phase 2: the cross-file analyses over per-file scans, then waiver
/// application. Returns one [`FileLint`] per scan, in order, plus the
/// per-stage dataflow timings (microseconds).
fn run_pipeline(scans: &mut [FileScan]) -> (Vec<FileLint>, Vec<(&'static str, u64)>) {
    // The linter's own sources are scanned (map-iter self-lint) but stay
    // out of the graph: the lint crate measures wall-clock by design and
    // must not become a phantom ambient sink for its callers.
    let graph_files: Vec<(String, ParsedFile)> = scans
        .iter()
        .filter(|s| !s.path.starts_with("crates/lint/"))
        .map(|s| (s.path.clone(), s.parsed.clone()))
        .collect();
    let sym = SymbolTable::build(&graph_files);
    let graph = CallGraph::build(&sym);
    let scan_idx: BTreeMap<String, usize> = scans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.path.clone(), i))
        .collect();

    // --- Ambient sinks per function. ---
    let mut fn_sinks: Vec<Vec<callgraph::Sink>> = vec![Vec::new(); sym.fns.len()];
    let mut seeds: BTreeMap<SinkKind, BTreeSet<usize>> = BTreeMap::new();
    for (path, _) in &graph_files {
        let scan = &scans[scan_idx[path.as_str()]];
        for (local, id) in sym.file_fns(path).iter().enumerate() {
            let (b0, b1) = scan.parsed.fns[local].body;
            let sinks = callgraph::find_sinks(&scan.code, b0, b1);
            for s in &sinks {
                // Sanctioned homes do not taint: tamper-obs owns the
                // clock/rng reads, capture::engine owns the thread
                // topology.
                let sanctioned = match s.kind {
                    SinkKind::Clock | SinkKind::Rng => path.starts_with("crates/obs/"),
                    SinkKind::Thread => path == "crates/capture/src/engine.rs",
                };
                if !sanctioned {
                    seeds.entry(s.kind).or_default().insert(*id);
                }
            }
            fn_sinks[*id] = sinks;
        }
    }

    // --- Transitive containment findings. ---
    let mut extra: Vec<(usize, Finding)> = Vec::new();
    for (&kind, kind_seeds) in &seeds {
        let taint = graph.taint(kind_seeds);
        for (&fid, hop) in &taint {
            let fsym = &sym.fns[fid];
            let Some(&si) = scan_idx.get(fsym.file.as_str()) else {
                continue;
            };
            let scope = scans[si].scope;
            let applies = match kind {
                SinkKind::Clock | SinkKind::Rng => scope.ambient,
                SinkKind::Thread => scope.thread_containment,
            };
            // A function with its own direct sink already carries the
            // textual finding; don't double-report it transitively.
            if !applies || fn_sinks[fid].iter().any(|s| s.kind == kind) {
                continue;
            }
            // Follow the hop chain down to the sink for the message.
            let mut chain: Vec<String> = Vec::new();
            let mut cur = hop.callee;
            loop {
                chain.push(sym.fns[cur].def.name.clone());
                if kind_seeds.contains(&cur) {
                    break;
                }
                match taint.get(&cur) {
                    Some(next) => cur = next.callee,
                    None => break,
                }
            }
            let sink = fn_sinks[cur]
                .iter()
                .find(|s| s.kind == kind)
                .map_or_else(|| "ambient sink".to_string(), |s| s.what.clone());
            extra.push((
                si,
                Finding::new(
                    &fsym.file,
                    hop.line,
                    kind.rule(),
                    format!(
                        "{}() transitively reaches {} (in {}) via {}",
                        fsym.def.name,
                        sink,
                        sym.fns[cur].file,
                        chain.join(" → ")
                    ),
                ),
            ));
        }
    }
    for (si, f) in extra {
        scans[si].raw.push(f);
    }

    // --- Discarded-wire-error over the workspace return-type table. ---
    let wire_fns = sym.wire_error_fns();
    for scan in scans.iter_mut() {
        if scan.scope.discard {
            scan.raw
                .extend(rules::discard_findings(&scan.path, &scan.code, &wire_fns));
        }
    }

    // --- Dataflow: per-function use-def chains, then the three rule
    // families built on them. Unparsed files fail closed inside each
    // rule's whole-file variant.
    let mut timings: Vec<(&'static str, u64)> = Vec::new();
    let t = Instant::now();
    let flows: Vec<Vec<dataflow::FnFlow>> = scans
        .iter()
        .map(|s| {
            let wanted = s.scope.hot_alloc || s.scope.taint_len || s.scope.cast_trunc;
            if wanted && s.parsed.parsed_ok {
                s.parsed
                    .fns
                    .iter()
                    .map(|f| dataflow::flow_of(&s.code, f))
                    .collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    timings.push(("dataflow-build", t.elapsed().as_micros() as u64));

    // untrusted-len-alloc: wire-derived lengths must be clamped before
    // sizing an allocation or indexing.
    let t = Instant::now();
    let mut extra: Vec<(usize, Finding)> = Vec::new();
    for (si, scan) in scans.iter().enumerate() {
        if !scan.scope.taint_len {
            continue;
        }
        if scan.parsed.parsed_ok {
            for (local, f) in scan.parsed.fns.iter().enumerate() {
                for ff in dataflow::untrusted_len_findings(&scan.code, f, &flows[si][local]) {
                    extra.push((
                        si,
                        Finding::new(&scan.path, ff.line, "untrusted-len-alloc", ff.message),
                    ));
                }
            }
        } else {
            for ff in dataflow::untrusted_len_fail_closed(&scan.code) {
                extra.push((
                    si,
                    Finding::new(&scan.path, ff.line, "untrusted-len-alloc", ff.message),
                ));
            }
        }
    }
    for (si, f) in extra {
        scans[si].raw.push(f);
    }
    timings.push(("untrusted-len-alloc", t.elapsed().as_micros() as u64));

    // cast-truncation: raw `as` narrowing on seq/ack/len-named values.
    let t = Instant::now();
    let mut extra: Vec<(usize, Finding)> = Vec::new();
    for (si, scan) in scans.iter().enumerate() {
        if !scan.scope.cast_trunc {
            continue;
        }
        if scan.parsed.parsed_ok {
            for (local, f) in scan.parsed.fns.iter().enumerate() {
                let (b0, b1) = f.body;
                for ff in dataflow::cast_findings(&scan.code, b0, b1, Some(&flows[si][local])) {
                    extra.push((
                        si,
                        Finding::new(&scan.path, ff.line, "cast-truncation", ff.message),
                    ));
                }
            }
        } else {
            for ff in dataflow::cast_findings(&scan.code, 0, scan.code.len(), None) {
                extra.push((
                    si,
                    Finding::new(&scan.path, ff.line, "cast-truncation", ff.message),
                ));
            }
        }
    }
    for (si, f) in extra {
        scans[si].raw.push(f);
    }
    timings.push(("cast-truncation", t.elapsed().as_micros() as u64));

    // hot-path-alloc: fresh allocations on the forward closure of the
    // HOT_ROOTS registry, with the BFS discovery chain in the message.
    let t = Instant::now();
    let mut fn_home: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
    let mut hot_fns: BTreeSet<usize> = BTreeSet::new();
    let mut roots: Vec<usize> = Vec::new();
    for (path, _) in &graph_files {
        let si = scan_idx[path.as_str()];
        for (local, id) in sym.file_fns(path).iter().enumerate() {
            fn_home.insert(*id, (si, local));
            if scans[si].scope.hot_alloc {
                hot_fns.insert(*id);
            }
        }
    }
    for &id in &hot_fns {
        let d = &sym.fns[id].def;
        let is_root = HOT_ROOTS.iter().any(|(owner, name)| {
            d.name == *name
                && (d.owner.as_deref() == Some(*owner) || d.trait_of.as_deref() == Some(*owner))
        });
        if is_root {
            roots.push(id);
        }
    }
    let tree = graph.reachable_with_parents(roots.iter().copied(), &hot_fns);
    let label = |id: usize| {
        let d = &sym.fns[id].def;
        match &d.owner {
            Some(o) => format!("{o}::{}", d.name),
            None => format!("{}()", d.name),
        }
    };
    let mut extra: Vec<(usize, Finding)> = Vec::new();
    for &fid in tree.keys() {
        let (si, local) = fn_home[&fid];
        let scan = &scans[si];
        if !scan.parsed.parsed_ok {
            continue; // handled by the whole-file fail-closed pass below
        }
        let (b0, b1) = scan.parsed.fns[local].body;
        let flow = flows[si].get(local);
        for site in dataflow::alloc_sites(&scan.code, b0, b1, flow) {
            let mut chain = vec![label(fid)];
            let mut cur = fid;
            while let Some(Some(parent)) = tree.get(&cur) {
                cur = *parent;
                chain.push(label(cur));
            }
            chain.reverse();
            let message = if chain.len() == 1 {
                format!("fresh allocation {} in hot root {}", site.what, chain[0])
            } else {
                format!(
                    "fresh allocation {} on a hot path: reached from {} via {}",
                    site.what,
                    chain[0],
                    chain[1..].join(" → ")
                )
            };
            extra.push((
                si,
                Finding::new(&scan.path, site.line, "hot-path-alloc", message),
            ));
        }
    }
    // Fail closed: a hot-scope file the parser lost sync on could hide
    // hot-reachable functions, so every allocation site in it is flagged.
    for (si, scan) in scans.iter().enumerate() {
        if scan.scope.hot_alloc && !scan.parsed.parsed_ok {
            for site in dataflow::alloc_sites(&scan.code, 0, scan.code.len(), None) {
                extra.push((
                    si,
                    Finding::new(
                        &scan.path,
                        site.line,
                        "hot-path-alloc",
                        format!(
                            "fresh allocation {} in a file the parser lost sync on (fail closed)",
                            site.what
                        ),
                    ),
                ));
            }
        }
    }
    for (si, f) in extra {
        scans[si].raw.push(f);
    }
    timings.push(("hot-path-alloc", t.elapsed().as_micros() as u64));

    // --- Untrusted-reachability scoping for panic/index. ---
    let mut surface: BTreeSet<usize> = BTreeSet::new();
    for (path, _) in &graph_files {
        if scans[scan_idx[path.as_str()]].scope.panic_index {
            surface.extend(sym.file_fns(path).iter().copied());
        }
    }
    let roots: Vec<usize> = surface
        .iter()
        .copied()
        .filter(|&id| {
            let f = &sym.fns[id];
            ROOT_PREFIXES.iter().any(|p| f.def.name.starts_with(p))
                || f.def
                    .params
                    .iter()
                    .any(|p| ROOT_PARAM_MARKERS.iter().any(|m| p.contains(m)))
        })
        .collect();
    let reachable = graph.reachable(roots, &surface);
    for scan in scans.iter_mut() {
        // Fail closed: if the parser lost sync, keep every finding.
        if !scan.scope.panic_index || !scan.parsed.parsed_ok {
            continue;
        }
        let ids = sym.file_fns(&scan.path);
        let parsed = &scan.parsed;
        scan.raw.retain(|f| {
            if f.rule != "panic" && f.rule != "index" {
                return true;
            }
            match parsed.fn_at_line(f.line) {
                // Findings outside any parsed fn are kept (fail closed).
                None => true,
                Some(local) => ids.get(local).is_none_or(|id| reachable.contains(id)),
            }
        });
    }

    // --- Waivers last, so retired findings surface stale waivers. ---
    let lints = scans
        .iter_mut()
        .map(|scan| rules::apply_waivers(&scan.path, std::mem::take(&mut scan.raw), &scan.waivers))
        .collect();
    (lints, timings)
}

/// Analyze a set of in-memory sources as one workspace: the full
/// two-phase pipeline (call graph included), no filesystem, no taxonomy
/// cross-check. This is the entry point for multi-file fixture tests.
pub fn analyze_sources(files: &[(&str, &str)]) -> Analysis {
    let t0 = Instant::now();
    let ctx = scan_ctx(files);
    let mut scans: Vec<FileScan> = files
        .iter()
        .map(|(path, src)| rules::scan_file(path, src, rules::scope_for(path), &ctx))
        .collect();
    let (lints, timings) = run_pipeline(&mut scans);
    let mut analysis = Analysis {
        files_scanned: scans.len(),
        rule_timings: timings,
        ..Analysis::default()
    };
    for lint in lints {
        analysis.findings.extend(lint.findings);
        analysis.waived.extend(lint.waived);
    }
    finish(&mut analysis, &scans, t0);
    analysis
}

/// Lint one source string under an explicit scope. Single-file pipeline:
/// the call graph sees only this file.
pub fn lint_file(path: &str, src: &str, scope: Scope) -> FileLint {
    let ctx = scan_ctx(&[(path, src)]);
    let mut scans = vec![rules::scan_file(path, src, scope, &ctx)];
    run_pipeline(&mut scans).0.pop().unwrap_or_default()
}

/// Lint one source string under the scope its path would get in the repo.
/// This is the entry point the fixture tests use.
pub fn lint_source(repo_rel_path: &str, src: &str) -> FileLint {
    lint_file(repo_rel_path, src, rules::scope_for(repo_rel_path))
}

/// Run the full gate against a repo checkout.
pub fn analyze(root: &Path) -> Analysis {
    let t0 = Instant::now();
    let mut inputs: Vec<(String, String)> = Vec::new();
    for rel in source_files(root) {
        if rules::scope_for(&rel).is_empty() {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        inputs.push((rel, src));
    }
    let borrowed: Vec<(&str, &str)> = inputs
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    let ctx = scan_ctx(&borrowed);
    let mut scans: Vec<FileScan> = borrowed
        .iter()
        .map(|(path, src)| rules::scan_file(path, src, rules::scope_for(path), &ctx))
        .collect();
    let (lints, timings) = run_pipeline(&mut scans);
    let mut analysis = Analysis {
        files_scanned: scans.len(),
        rule_timings: timings,
        ..Analysis::default()
    };
    for lint in lints {
        analysis.findings.extend(lint.findings);
        analysis.waived.extend(lint.waived);
    }
    analysis.findings.extend(taxonomy::check(root));
    finish(&mut analysis, &scans, t0);
    analysis
}

/// Sort, fingerprint, and stamp the runtime.
fn finish(analysis: &mut Analysis, scans: &[FileScan], t0: Instant) {
    analysis.findings.sort();
    analysis.waived.sort();
    let by_path: BTreeMap<&str, &FileScan> = scans.iter().map(|s| (s.path.as_str(), s)).collect();
    let line_text = |file: &str, line: u32| {
        by_path
            .get(file)
            .and_then(|s| fingerprint::normalize_line(&s.code, line))
    };
    fingerprint::assign(&mut analysis.findings, &line_text);
    analysis.runtime_ms = t0.elapsed().as_millis() as u64;
}

/// All `.rs` files under the repo's first-party trees, repo-relative with
/// forward slashes, in sorted (deterministic) order.
fn source_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.join("crates"), root.join("src")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != ".git" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_escape("⟨SYN → ∅⟩"), "\"⟨SYN → ∅⟩\"");
    }

    #[test]
    fn json_output_is_sarif_shaped() {
        let mut a = Analysis::default();
        a.findings.push(Finding {
            file: "crates/wire/src/x.rs".into(),
            line: 3,
            rule: "index",
            message: "direct slice indexing \"quoted\"".into(),
            fingerprint: "00aa11bb22cc33dd".into(),
        });
        a.files_scanned = 1;
        let json = a.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"version\":\"2.1.0\""));
        assert!(json.contains("\"name\":\"tamperlint\""));
        assert!(json.contains("\"ruleId\":\"index\""));
        assert!(json.contains("\"uri\":\"crates/wire/src/x.rs\""));
        assert!(json.contains("\"startLine\":3"));
        assert!(json.contains("\"tamperlint/v1\":\"00aa11bb22cc33dd\""));
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"index\":{\"findings\":1,\"waived\":0}"));
        assert!(json.contains("\\\"quoted\\\""));
        // Every rule is declared in the driver block.
        for rule in RULES {
            assert!(json.contains(&format!("{{\"id\":\"{rule}\"}}")), "{rule}");
        }
    }

    #[test]
    fn rule_counts_cover_every_rule() {
        let counts = Analysis::default().rule_counts();
        assert_eq!(counts.len(), RULES.len());
        assert!(counts.iter().all(|(_, f, w)| *f == 0 && *w == 0));
    }

    #[test]
    fn transitive_containment_crosses_files() {
        // entry → relay → sink: the ambient clock read lives two hops from
        // the entry point, in a sibling module.
        let files = [
            (
                "crates/analysis/src/entry.rs",
                "pub fn summarize(n: u64) -> u64 { relay::stamp_all(n) }",
            ),
            (
                "crates/analysis/src/relay.rs",
                "pub fn stamp_all(n: u64) -> u64 { n + sink::now_ns() }",
            ),
            (
                "crates/analysis/src/sink.rs",
                "use std::time::Instant;\n\
                 pub fn now_ns() -> u64 { Instant::now().elapsed().as_nanos() as u64 }",
            ),
        ];
        let analysis = analyze_sources(&files);
        let fired: Vec<(&str, &str, u32)> = analysis
            .findings
            .iter()
            .map(|f| (f.file.as_str(), f.rule, f.line))
            .collect();
        // Textual findings at the sink…
        assert!(fired.contains(&("crates/analysis/src/sink.rs", "clock-containment", 1)));
        assert!(fired.contains(&("crates/analysis/src/sink.rs", "ambient-clock", 2)));
        // …and transitive findings at both callers.
        assert!(fired.contains(&("crates/analysis/src/relay.rs", "ambient-clock", 1)));
        assert!(fired.contains(&("crates/analysis/src/entry.rs", "ambient-clock", 1)));
        let entry = analysis
            .findings
            .iter()
            .find(|f| f.file.ends_with("entry.rs"))
            .unwrap();
        assert!(
            entry.message.contains("stamp_all → now_ns"),
            "{}",
            entry.message
        );
    }
}
