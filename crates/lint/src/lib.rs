//! tamperlint — the repo-native static-analysis gate.
//!
//! The reproduction's headline guarantee is determinism: the same capture
//! bytes must produce the same report bytes, on any machine, in any thread
//! interleaving. Several classes of Rust code silently break that promise
//! (`HashMap` iteration order, ambient clocks/randomness, raw u32
//! sequence-space arithmetic), and panicking parse paths turn malformed
//! capture bytes into a crashed pipeline. tamperlint enforces these
//! properties at the source level with its own lexer ([`lexer`]), a
//! lightweight recursive-descent parser ([`ast`]), a workspace symbol
//! table ([`symbols`]), an intra-workspace call graph ([`callgraph`]) and
//! a bottom-up interprocedural effect fixpoint ([`effects`]): no rustc
//! plugin, no network, no nightly.
//!
//! Rule families (see [`rules`]; `cargo xtask analyze --explain <rule>`
//! prints the full paragraph for any of them):
//!
//! | rule           | scope                               | forbids |
//! |----------------|-------------------------------------|---------|
//! | `map-iter`     | `crates/analysis`, `crates/core`, `crates/lint` | `HashMap`/`HashSet` |
//! | `ambient-clock`| all pipeline crates                 | `SystemTime::now`, `Instant::now` — textual *or reached transitively through the effect summaries* |
//! | `clock-containment` | all pipeline crates (obs exempt) | any other `Instant`/`SystemTime` mention; clocks only via `tamper-obs` |
//! | `ambient-rng`  | all pipeline crates                 | `thread_rng`, `from_entropy`, `OsRng`, `rand::random` — textual or transitive |
//! | `thread-containment` | all pipeline crates (engine exempt) | `crossbeam`, `thread::spawn`, `thread::scope` — textual or transitive |
//! | `panic`        | untrusted-reachable fns on the parse surface | `.unwrap()`, `.expect()`, `panic!`, `unreachable!` |
//! | `index`        | untrusted-reachable fns on the parse surface | direct slice indexing |
//! | `wraparound-arithmetic` | `wire/*`, `core/*`         | raw `+`/`-`/`*` on seq/ack/offset-named values |
//! | `exhaustive-signature-match` | all pipeline crates   | `_` wildcards / catch-all bindings in a `match` over `Signature` |
//! | `discarded-wire-error` | all pipeline crates         | `let _ =` / `.ok()` swallowing a `Result<_, WireError>` |
//! | `hot-path-alloc` | all pipeline crates             | fresh allocations ([`dataflow::alloc_sites`]) on functions call-graph-reachable from the [`HOT_ROOTS`] registry |
//! | `untrusted-len-alloc` | untrusted-reachable parse surface | wire-derived lengths flowing into `with_capacity`/`vec![_; n]`/index sinks unclamped |
//! | `cast-truncation` | `wire/*`, `core/*`             | raw `as` narrowing of seq/ack/len/off-named values |
//! | `purity-audit` | all pipeline crates                 | any non-empty determinism-relevant effect set on a [`PURE_ROOTS`] entry |
//! | `unbounded-growth` | all pipeline crates             | insertions into long-lived collection fields with no eviction/clear/cap on the same field |
//! | `root-registry` | registries in this crate            | `HOT_ROOTS`/`PURE_ROOTS` entries that resolve to no function |
//! | `taxonomy`     | signature.rs / golden / DESIGN.md   | drift between the three |
//!
//! The pipeline runs in five stages: lex, AST + symbols, call graph,
//! per-function dataflow, and the interprocedural effect fixpoint. The
//! first four are *per-file* and their artifacts are cached
//! content-hash-keyed ([`cache`]) so a warm `cargo xtask analyze` touches
//! only changed files; the fifpoint and the cross-file rules re-run every
//! time (they are cheap: one SCC condensation and one pass in
//! reverse-topological order). Per-function effect summaries power the
//! containment rules (membership is a bitset test; witness chains are
//! materialized on demand), the purity audit over [`PURE_ROOTS`], and the
//! unbounded-growth rule. Files the parser loses sync on fail closed:
//! every finding in them is kept, their functions carry the `Unknown`
//! effect, and the dataflow rules treat every site as live.
//!
//! A finding is waived in source with
//! `// tamperlint: allow(<rule>) — <reason>`; unused or malformed waivers
//! are findings themselves. Every finding carries a stable
//! line-number-independent [`fingerprint`]; `cargo xtask analyze` checks
//! them against the committed [`baseline`] (`tamperlint.baseline`) in
//! `--deny-new` mode, which is how `cargo xtask ci` runs the gate.

pub mod ast;
pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod dataflow;
pub mod effects;
pub mod fingerprint;
pub mod lexer;
pub mod rules;
pub mod symbols;
pub mod taxonomy;

pub use rules::{parse_waiver, scope_for, FileLint, Finding, Scope, RULES};

use crate::ast::ParsedFile;
use crate::callgraph::{CallGraph, SinkKind};
use crate::effects::{Effect, EffectSet, EffectSite};
use crate::rules::{FileScan, ScanCtx};
use crate::symbols::SymbolTable;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The declared hot roots of the per-flow pipeline: `(owner, fn)` pairs
/// matched against a function's `impl` owner *or* the trait an
/// `impl Trait for Type` block implements. Everything the call graph can
/// reach from these runs once per packet or per flow at line rate, so
/// `hot-path-alloc` bans fresh allocations on the whole closure.
pub const HOT_ROOTS: [(&str, &str); 6] = [
    ("FlowMachine", "process"),
    ("FlowMachine", "analyze"),
    ("FlowSource", "fill"),
    ("SourceShard", "absorb"),
    ("EndpointMachine", "process"),
    ("BatchClassifier", "classify_batch"),
];

/// The declared pure roots of the classify→aggregate→report path:
/// `(owner, fn)` pairs (free functions match by file stem) whose
/// *transitive* effect set must be empty under
/// [`EffectSet::purity_mask`] — no clock, rng, thread, unordered-map
/// iteration, IO, global mutation, or `Unknown` anywhere in the closure.
/// This is the static proof behind the engine-determinism byte-identity
/// tests: the same inputs must produce the same bytes because nothing on
/// the path can observe anything else.
pub const PURE_ROOTS: [(&str, &str); 6] = [
    ("FlowMachine", "analyze"),
    ("PartialAggregate", "record"),
    ("PartialAggregate", "merge"),
    ("Collector", "observe"),
    ("Collector", "merge"),
    ("report", "full_report"),
];

/// The outcome of a whole-repo analysis.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unwaived findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by source waivers.
    pub waived: Vec<Finding>,
    /// Number of `.rs` files lexed and linted.
    pub files_scanned: usize,
    /// Wall-clock runtime of the analysis.
    pub runtime_ms: u64,
    /// Per-stage timings, microseconds (dataflow stages plus the effect
    /// fixpoint).
    pub rule_timings: Vec<(&'static str, u64)>,
    /// Files whose per-file artifacts came from the incremental cache.
    pub cache_hits: usize,
    /// Files whose artifacts were (re)computed this run.
    pub cache_misses: usize,
}

impl Analysis {
    /// True when the gate passes: zero unwaived findings.
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// Per-rule counters: `(rule, findings, waived)` for every rule.
    pub fn rule_counts(&self) -> Vec<(&'static str, usize, usize)> {
        let mut fired: BTreeMap<&str, usize> = BTreeMap::new();
        let mut waived: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &self.findings {
            *fired.entry(f.rule).or_default() += 1;
        }
        for f in &self.waived {
            *waived.entry(f.rule).or_default() += 1;
        }
        RULES
            .iter()
            .map(|r| {
                (
                    *r,
                    fired.get(r).copied().unwrap_or(0),
                    waived.get(r).copied().unwrap_or(0),
                )
            })
            .collect()
    }

    /// Human-readable report, one finding per line plus a summary block.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "tamperlint: {} file(s), {} finding(s), {} waived, {} ms\n",
            self.files_scanned,
            self.findings.len(),
            self.waived.len(),
            self.runtime_ms
        ));
        if self.cache_hits + self.cache_misses > 0 {
            out.push_str(&format!(
                "  cache: {} hit(s), {} miss(es)\n",
                self.cache_hits, self.cache_misses
            ));
        }
        for (rule, fired, waived) in self.rule_counts() {
            if fired > 0 || waived > 0 {
                out.push_str(&format!("  {rule}: {fired} finding(s), {waived} waived\n"));
            }
        }
        if !self.rule_timings.is_empty() {
            let parts: Vec<String> = self
                .rule_timings
                .iter()
                .map(|(stage, us)| format!("{stage} {us}µs"))
                .collect();
            out.push_str(&format!("  stages: {}\n", parts.join(", ")));
        }
        out.push_str(if self.ok() {
            "tamperlint: PASS\n"
        } else {
            "tamperlint: FAIL\n"
        });
        out
    }

    /// SARIF-shaped machine-readable report (hand-rolled JSON; the
    /// workspace is offline and vendors no JSON crate). One run, one
    /// result per finding, fingerprints under `tamperlint/v1`, and the
    /// gate counters — including per-stage timings (`effect-fixpoint`
    /// alongside the dataflow stages) and the incremental-cache hit/miss
    /// counters — in the run's `properties` bag.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"version\":\"2.1.0\",");
        out.push_str("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
        out.push_str("\"runs\":[{\"tool\":{\"driver\":{\"name\":\"tamperlint\",\"rules\":[");
        let rules: Vec<String> = RULES
            .iter()
            .map(|r| format!("{{\"id\":{}}}", json_escape(r)))
            .collect();
        out.push_str(&rules.join(","));
        out.push_str("]}},\"results\":[");
        let results: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
                     \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                     {{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}],\
                     \"fingerprints\":{{\"tamperlint/v1\":{}}}}}",
                    json_escape(f.rule),
                    json_escape(&f.message),
                    json_escape(&f.file),
                    f.line.max(1),
                    json_escape(&f.fingerprint)
                )
            })
            .collect();
        out.push_str(&results.join(","));
        out.push_str("],\"properties\":{");
        out.push_str(&format!("\"ok\":{},", self.ok()));
        out.push_str(&format!("\"runtime_ms\":{},", self.runtime_ms));
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!("\"waived\":{},", self.waived.len()));
        out.push_str(&format!(
            "\"cache\":{{\"hits\":{},\"misses\":{}}},",
            self.cache_hits, self.cache_misses
        ));
        out.push_str("\"dataflow_timing_us\":{");
        let timings: Vec<String> = self
            .rule_timings
            .iter()
            .map(|(stage, us)| format!("{}:{us}", json_escape(stage)))
            .collect();
        out.push_str(&timings.join(","));
        out.push_str("},");
        out.push_str("\"rule_counts\":{");
        let counts: Vec<String> = self
            .rule_counts()
            .into_iter()
            .map(|(rule, fired, waived)| {
                format!(
                    "{}:{{\"findings\":{fired},\"waived\":{waived}}}",
                    json_escape(rule)
                )
            })
            .collect();
        out.push_str(&counts.join(","));
        out.push_str("}}}]}");
        out
    }
}

/// Escape a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Function-name prefixes that mark untrusted-input roots on the parse
/// surface (entry points that receive bytes off the wire or drive them).
const ROOT_PREFIXES: [&str; 9] = [
    "parse",
    "read",
    "run",
    "next",
    "fill",
    "absorb",
    "finish",
    "route",
    "flows_from",
];

/// Parameter-type fragments that mark a function as an untrusted root.
const ROOT_PARAM_MARKERS: [&str; 2] = ["[u8]", "Reader"];

/// Build the scan context for a file set: the `Signature` variant names
/// come from whichever input is a `signature.rs`.
fn scan_ctx(files: &[(&str, &str)]) -> ScanCtx {
    let mut ctx = ScanCtx::default();
    for (path, src) in files {
        if *path == "signature.rs" || path.ends_with("/signature.rs") {
            ctx.signature_variants = taxonomy::signature_variant_names(src);
        }
    }
    ctx
}

/// Is a sink at this path effect-transparent? tamper-obs owns the
/// clock/rng reads, `capture::engine` owns the thread topology; sinks in
/// the sanctioned home neither seed containment taint nor count as
/// direct effects.
fn sanctioned_sink(path: &str, kind: SinkKind) -> bool {
    match kind {
        SinkKind::Clock | SinkKind::Rng => path.starts_with("crates/obs/"),
        SinkKind::Thread => path == "crates/capture/src/engine.rs",
    }
}

/// Accumulated per-stage build time, microseconds. Cached files
/// contribute nothing (their stages never run), so a warm run's stage
/// timings reflect only the changed files.
#[derive(Debug, Default, Clone, Copy)]
pub struct StageAcc {
    /// Use-def chain construction.
    pub dataflow_build: u64,
    /// untrusted-len-alloc extraction.
    pub untrusted_len: u64,
    /// cast-truncation extraction.
    pub cast: u64,
    /// Allocation-site extraction (the graph walk is timed separately
    /// and added in the pipeline).
    pub alloc: u64,
    /// Direct-effect and growth-site extraction (the fixpoint itself is
    /// timed in the pipeline).
    pub effect: u64,
}

/// Everything derived from one file in isolation — the unit the
/// incremental cache stores. Phase 2 (symbols, call graph, effect
/// fixpoint, cross-file rules) consumes artifacts only, never the source
/// text, so a cache hit skips lexing, parsing, and every per-file rule.
/// `scan.code` is empty for artifacts restored from the cache; the
/// pre-normalized `norm_lines` map stands in for it at fingerprint time.
pub struct FileArtifacts {
    /// The per-file scan: raw findings, waivers, tokens, parsed items.
    pub scan: FileScan,
    /// Ambient sinks per function (aligned with `scan.parsed.fns`).
    pub fn_sinks: Vec<Vec<callgraph::Sink>>,
    /// Direct effect set per function.
    pub fn_effects: Vec<EffectSet>,
    /// Direct effect sites per function, for witness messages.
    pub fn_sites: Vec<Vec<EffectSite>>,
    /// Allocation sites per function (hot-path scope only).
    pub fn_allocs: Vec<Vec<dataflow::AllocSite>>,
    /// Long-lived-collection operations per function.
    pub fn_growth: Vec<Vec<effects::GrowthSite>>,
    /// Whole-file allocation sites for unparsed hot-scope files (fail
    /// closed).
    pub fail_closed_allocs: Vec<dataflow::AllocSite>,
    /// Per-file dataflow findings (untrusted-len-alloc, cast-truncation).
    pub dataflow_findings: Vec<Finding>,
    /// Discarded-result candidates, filtered against the workspace
    /// wire-error set in phase 2.
    pub discard_cands: Vec<rules::DiscardCand>,
    /// Normalized text for every line a finding could land on, so cached
    /// (token-free) artifacts still fingerprint identically.
    pub norm_lines: BTreeMap<u32, String>,
}

/// Run every per-file stage over one source file.
pub fn build_artifacts(
    path: &str,
    src: &str,
    scope: Scope,
    ctx: &ScanCtx,
    acc: &mut StageAcc,
) -> FileArtifacts {
    let scan = rules::scan_file(path, src, scope, ctx);
    let nfns = scan.parsed.fns.len();

    // --- Dataflow: per-function use-def chains. ---
    let t = Instant::now();
    let wanted = scope.hot_alloc || scope.taint_len || scope.cast_trunc;
    let flows: Vec<dataflow::FnFlow> = if wanted && scan.parsed.parsed_ok {
        scan.parsed
            .fns
            .iter()
            .map(|f| dataflow::flow_of(&scan.code, f))
            .collect()
    } else {
        Vec::new()
    };
    acc.dataflow_build += t.elapsed().as_micros() as u64;

    let mut dataflow_findings: Vec<Finding> = Vec::new();

    // untrusted-len-alloc: wire-derived lengths must be clamped before
    // sizing an allocation or indexing. Unparsed files fail closed.
    let t = Instant::now();
    if scope.taint_len {
        if scan.parsed.parsed_ok {
            for (local, f) in scan.parsed.fns.iter().enumerate() {
                for ff in dataflow::untrusted_len_findings(&scan.code, f, &flows[local]) {
                    dataflow_findings.push(Finding::new(
                        path,
                        ff.line,
                        "untrusted-len-alloc",
                        ff.message,
                    ));
                }
            }
        } else {
            for ff in dataflow::untrusted_len_fail_closed(&scan.code) {
                dataflow_findings.push(Finding::new(
                    path,
                    ff.line,
                    "untrusted-len-alloc",
                    ff.message,
                ));
            }
        }
    }
    acc.untrusted_len += t.elapsed().as_micros() as u64;

    // cast-truncation: raw `as` narrowing on seq/ack/len-named values.
    let t = Instant::now();
    if scope.cast_trunc {
        if scan.parsed.parsed_ok {
            for (local, f) in scan.parsed.fns.iter().enumerate() {
                let (b0, b1) = f.body;
                for ff in dataflow::cast_findings(&scan.code, b0, b1, Some(&flows[local])) {
                    dataflow_findings.push(Finding::new(
                        path,
                        ff.line,
                        "cast-truncation",
                        ff.message,
                    ));
                }
            }
        } else {
            for ff in dataflow::cast_findings(&scan.code, 0, scan.code.len(), None) {
                dataflow_findings.push(Finding::new(path, ff.line, "cast-truncation", ff.message));
            }
        }
    }
    acc.cast += t.elapsed().as_micros() as u64;

    // Allocation sites, for hot-path-alloc and the Allocates effect.
    let t = Instant::now();
    let (fn_allocs, fail_closed_allocs) = if scope.hot_alloc {
        if scan.parsed.parsed_ok {
            (
                scan.parsed
                    .fns
                    .iter()
                    .enumerate()
                    .map(|(local, f)| {
                        let (b0, b1) = f.body;
                        dataflow::alloc_sites(&scan.code, b0, b1, flows.get(local))
                    })
                    .collect(),
                Vec::new(),
            )
        } else {
            (
                vec![Vec::new(); nfns],
                dataflow::alloc_sites(&scan.code, 0, scan.code.len(), None),
            )
        }
    } else {
        (vec![Vec::new(); nfns], Vec::new())
    };
    acc.alloc += t.elapsed().as_micros() as u64;

    // Direct effects (sinks + panics/IO/global/map idents + allocations)
    // and growth sites, per function.
    let t = Instant::now();
    let mut fn_sinks: Vec<Vec<callgraph::Sink>> = Vec::with_capacity(nfns);
    let mut fn_effects: Vec<EffectSet> = Vec::with_capacity(nfns);
    let mut fn_sites: Vec<Vec<EffectSite>> = Vec::with_capacity(nfns);
    let mut fn_growth: Vec<Vec<effects::GrowthSite>> = Vec::with_capacity(nfns);
    for (local, f) in scan.parsed.fns.iter().enumerate() {
        let (b0, b1) = f.body;
        let sinks = callgraph::find_sinks(&scan.code, b0, b1);
        let mut eff = EffectSet::EMPTY;
        let mut sites: Vec<EffectSite> = Vec::new();
        for s in &sinks {
            if !sanctioned_sink(path, s.kind) {
                let e = match s.kind {
                    SinkKind::Clock => Effect::ReadsClock,
                    SinkKind::Rng => Effect::ReadsRng,
                    SinkKind::Thread => Effect::SpawnsThread,
                };
                eff.insert(e);
                sites.push(EffectSite {
                    effect: e,
                    line: s.line,
                    what: s.what.clone(),
                });
            }
        }
        if let Some(site) = fn_allocs[local].first() {
            eff.insert(Effect::Allocates);
            sites.push(EffectSite {
                effect: Effect::Allocates,
                line: site.line,
                what: site.what.clone(),
            });
        }
        for s in effects::direct_effect_sites(&scan.code, b0, b1) {
            eff.insert(s.effect);
            sites.push(s);
        }
        fn_growth.push(effects::growth_sites(&scan.code, b0, b1));
        fn_sinks.push(sinks);
        fn_effects.push(eff);
        fn_sites.push(sites);
    }
    acc.effect += t.elapsed().as_micros() as u64;

    let discard_cands = if scope.discard {
        rules::discard_candidates(&scan.code)
    } else {
        Vec::new()
    };

    // Pre-normalize every line a finding could anchor to, so a cached
    // artifact (tokens dropped) fingerprints byte-identically.
    let mut lines: BTreeSet<u32> = BTreeSet::new();
    lines.extend(scan.raw.iter().map(|f| f.line));
    lines.extend(dataflow_findings.iter().map(|f| f.line));
    lines.extend(scan.waivers.iter().map(|(w, _)| w.line));
    for f in &scan.parsed.fns {
        lines.insert(f.start_line);
        lines.extend(f.calls.iter().map(|c| c.line));
    }
    for v in &fn_sinks {
        lines.extend(v.iter().map(|s| s.line));
    }
    for v in &fn_sites {
        lines.extend(v.iter().map(|s| s.line));
    }
    for v in &fn_allocs {
        lines.extend(v.iter().map(|s| s.line));
    }
    for v in &fn_growth {
        lines.extend(v.iter().map(|s| s.line));
    }
    lines.extend(fail_closed_allocs.iter().map(|s| s.line));
    lines.extend(discard_cands.iter().map(|c| c.line));
    let norm_lines: BTreeMap<u32, String> = lines
        .into_iter()
        .filter_map(|l| fingerprint::normalize_line(&scan.code, l).map(|t| (l, t)))
        .collect();

    FileArtifacts {
        scan,
        fn_sinks,
        fn_effects,
        fn_sites,
        fn_allocs,
        fn_growth,
        fail_closed_allocs,
        dataflow_findings,
        discard_cands,
        norm_lines,
    }
}

/// Phase 2: the cross-file analyses over per-file artifacts, then waiver
/// application. Returns one [`FileLint`] per artifact in order, the
/// per-stage timings (microseconds), and — when `check_registry` is set
/// (the whole-repo entry point) — any root-registry drift findings.
fn run_pipeline(
    arts: &mut [FileArtifacts],
    acc: StageAcc,
    check_registry: bool,
) -> (Vec<FileLint>, Vec<(&'static str, u64)>, Vec<Finding>) {
    // The linter's own sources are scanned (map-iter self-lint) but stay
    // out of the graph: the lint crate measures wall-clock by design and
    // must not become a phantom ambient sink for its callers.
    let graph_files: Vec<(String, ParsedFile)> = arts
        .iter()
        .filter(|a| !a.scan.path.starts_with("crates/lint/"))
        .map(|a| (a.scan.path.clone(), a.scan.parsed.clone()))
        .collect();
    let sym = SymbolTable::build(&graph_files);
    let graph = CallGraph::build(&sym);
    let scan_idx: BTreeMap<String, usize> = arts
        .iter()
        .enumerate()
        .map(|(i, a)| (a.scan.path.clone(), i))
        .collect();

    // --- Gather per-function facts into symbol-table order. ---
    let n = sym.fns.len();
    let mut direct: Vec<EffectSet> = vec![EffectSet::EMPTY; n];
    let mut sites: Vec<Vec<EffectSite>> = vec![Vec::new(); n];
    let mut fn_sinks: Vec<Vec<callgraph::Sink>> = vec![Vec::new(); n];
    let mut fn_growth: Vec<Vec<effects::GrowthSite>> = vec![Vec::new(); n];
    let mut fn_home: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
    for (path, _) in &graph_files {
        let si = scan_idx[path.as_str()];
        let a = &arts[si];
        for (local, id) in sym.file_fns(path).iter().enumerate() {
            fn_home.insert(*id, (si, local));
            direct[*id] = a.fn_effects[local];
            sites[*id] = a.fn_sites[local].clone();
            fn_sinks[*id] = a.fn_sinks[local].clone();
            fn_growth[*id] = a.fn_growth[local].clone();
            if !a.scan.parsed.parsed_ok {
                // Fail closed: a body in a lost-sync file could do
                // anything.
                direct[*id].insert(Effect::Unknown);
                sites[*id].push(EffectSite {
                    effect: Effect::Unknown,
                    line: a.scan.parsed.fns[local].start_line,
                    what: "body in a file the parser lost sync on".to_string(),
                });
            }
        }
    }

    // --- The interprocedural effect fixpoint. ---
    let t = Instant::now();
    for (fid, dropped) in graph.dropped.iter().enumerate() {
        for (line, call) in dropped {
            // Fail closed: a workspace-qualified call the resolver lost
            // could reach anything.
            direct[fid].insert(Effect::Unknown);
            sites[fid].push(EffectSite {
                effect: Effect::Unknown,
                line: *line,
                what: format!("unresolved workspace call `{call}`"),
            });
        }
    }
    let sums = effects::Summaries::compute(&graph, direct, sites);
    let fixpoint_us = acc.effect + t.elapsed().as_micros() as u64;

    // --- Transitive containment findings, as summary queries. ---
    // Membership (does this fn reach an unsanctioned sink?) is a bitset
    // test on the totals; the caller-ward next-hop map is materialized
    // only for kinds that actually have hits, purely to render the chain.
    let mut extra: Vec<(usize, Finding)> = Vec::new();
    for (kind, effect) in [
        (SinkKind::Clock, Effect::ReadsClock),
        (SinkKind::Rng, Effect::ReadsRng),
        (SinkKind::Thread, Effect::SpawnsThread),
    ] {
        let hits: Vec<usize> = (0..n)
            .filter(|&fid| {
                if !sums.total[fid].contains(effect) || sums.direct[fid].contains(effect) {
                    return false;
                }
                let fsym = &sym.fns[fid];
                let Some(&si) = scan_idx.get(fsym.file.as_str()) else {
                    return false;
                };
                let scope = arts[si].scan.scope;
                let applies = match kind {
                    SinkKind::Clock | SinkKind::Rng => scope.ambient,
                    SinkKind::Thread => scope.thread_containment,
                };
                // A function with its own direct sink already carries the
                // textual finding; don't double-report it transitively.
                applies && !fn_sinks[fid].iter().any(|s| s.kind == kind)
            })
            .collect();
        if hits.is_empty() {
            continue;
        }
        let seeds: BTreeSet<usize> = (0..n)
            .filter(|&fid| sums.direct[fid].contains(effect))
            .collect();
        let taint = graph.taint(&seeds);
        for fid in hits {
            let fsym = &sym.fns[fid];
            let si = scan_idx[fsym.file.as_str()];
            let Some(hop) = taint.get(&fid) else {
                continue;
            };
            // Follow the hop chain down to the sink for the message.
            let mut chain: Vec<String> = Vec::new();
            let mut cur = hop.callee;
            loop {
                chain.push(sym.fns[cur].def.name.clone());
                if seeds.contains(&cur) {
                    break;
                }
                match taint.get(&cur) {
                    Some(next) => cur = next.callee,
                    None => break,
                }
            }
            let sink = fn_sinks[cur]
                .iter()
                .find(|s| s.kind == kind)
                .map_or_else(|| "ambient sink".to_string(), |s| s.what.clone());
            extra.push((
                si,
                Finding::new(
                    &fsym.file,
                    hop.line,
                    kind.rule(),
                    format!(
                        "{}() transitively reaches {} (in {}) via {}",
                        fsym.def.name,
                        sink,
                        sym.fns[cur].file,
                        chain.join(" → ")
                    ),
                ),
            ));
        }
    }
    for (si, f) in extra {
        arts[si].scan.raw.push(f);
    }

    // --- Discarded-wire-error over the workspace return-type table. ---
    let wire_fns = sym.wire_error_fns();
    for a in arts.iter_mut() {
        if a.scan.scope.discard {
            let extra = rules::discard_filter(&a.scan.path, &a.discard_cands, &wire_fns);
            a.scan.raw.extend(extra);
        }
    }

    // --- Per-file dataflow findings (computed at artifact build). ---
    for a in arts.iter_mut() {
        let extra = a.dataflow_findings.clone();
        a.scan.raw.extend(extra);
    }

    // hot-path-alloc: fresh allocations on the forward closure of the
    // HOT_ROOTS registry, with the BFS discovery chain in the message.
    // The summaries gate the walk: if no hot root's total carries
    // Allocates, no reachable function has a site and the walk is skipped.
    let t = Instant::now();
    let mut hot_fns: BTreeSet<usize> = BTreeSet::new();
    for (&id, &(si, _)) in &fn_home {
        if arts[si].scan.scope.hot_alloc {
            hot_fns.insert(id);
        }
    }
    let hot_roots: Vec<usize> = hot_fns
        .iter()
        .copied()
        .filter(|&id| {
            let d = &sym.fns[id].def;
            HOT_ROOTS.iter().any(|(owner, name)| {
                d.name == *name
                    && (d.owner.as_deref() == Some(*owner) || d.trait_of.as_deref() == Some(*owner))
            })
        })
        .collect();
    let mut extra: Vec<(usize, Finding)> = Vec::new();
    if hot_roots
        .iter()
        .any(|&r| sums.total[r].contains(Effect::Allocates))
    {
        let tree = graph.reachable_with_parents(hot_roots.iter().copied(), &hot_fns);
        let label = |id: usize| {
            let d = &sym.fns[id].def;
            match &d.owner {
                Some(o) => format!("{o}::{}", d.name),
                None => format!("{}()", d.name),
            }
        };
        for &fid in tree.keys() {
            let (si, local) = fn_home[&fid];
            let a = &arts[si];
            if !a.scan.parsed.parsed_ok {
                continue; // handled by the whole-file fail-closed pass below
            }
            for site in &a.fn_allocs[local] {
                let mut chain = vec![label(fid)];
                let mut cur = fid;
                while let Some(Some(parent)) = tree.get(&cur) {
                    cur = *parent;
                    chain.push(label(cur));
                }
                chain.reverse();
                let message = if chain.len() == 1 {
                    format!("fresh allocation {} in hot root {}", site.what, chain[0])
                } else {
                    format!(
                        "fresh allocation {} on a hot path: reached from {} via {}",
                        site.what,
                        chain[0],
                        chain[1..].join(" → ")
                    )
                };
                extra.push((
                    si,
                    Finding::new(&a.scan.path, site.line, "hot-path-alloc", message),
                ));
            }
        }
    }
    // Fail closed: a hot-scope file the parser lost sync on could hide
    // hot-reachable functions, so every allocation site in it is flagged.
    for (si, a) in arts.iter().enumerate() {
        if a.scan.scope.hot_alloc && !a.scan.parsed.parsed_ok {
            for site in &a.fail_closed_allocs {
                extra.push((
                    si,
                    Finding::new(
                        &a.scan.path,
                        site.line,
                        "hot-path-alloc",
                        format!(
                            "fresh allocation {} in a file the parser lost sync on (fail closed)",
                            site.what
                        ),
                    ),
                ));
            }
        }
    }
    for (si, f) in extra {
        arts[si].scan.raw.push(f);
    }
    let hot_us = acc.alloc + t.elapsed().as_micros() as u64;

    // --- purity-audit: PURE_ROOTS must have empty effect sets. ---
    let purity = {
        let in_scope = |file: &str| {
            scan_idx
                .get(file)
                .is_some_and(|&si| arts[si].scan.scope.purity)
        };
        effects::purity_findings(&sym, &graph, &sums, &PURE_ROOTS, &in_scope)
    };
    for f in purity {
        if let Some(&si) = scan_idx.get(f.file.as_str()) {
            arts[si].scan.raw.push(f);
        }
    }

    // --- unbounded-growth: long-lived fields need eviction evidence. ---
    let growth = {
        let in_scope = |file: &str| {
            scan_idx
                .get(file)
                .is_some_and(|&si| arts[si].scan.scope.growth)
        };
        effects::growth_findings(&sym, &fn_growth, &in_scope)
    };
    for f in growth {
        if let Some(&si) = scan_idx.get(f.file.as_str()) {
            arts[si].scan.raw.push(f);
        }
    }

    // --- root-registry drift (whole-repo runs only). ---
    let registry = if check_registry {
        effects::registry_findings(
            &sym,
            &[("HOT_ROOTS", &HOT_ROOTS), ("PURE_ROOTS", &PURE_ROOTS)],
        )
    } else {
        Vec::new()
    };

    // --- Untrusted-reachability scoping for panic/index. ---
    let mut surface: BTreeSet<usize> = BTreeSet::new();
    for (path, _) in &graph_files {
        if arts[scan_idx[path.as_str()]].scan.scope.panic_index {
            surface.extend(sym.file_fns(path).iter().copied());
        }
    }
    let roots: Vec<usize> = surface
        .iter()
        .copied()
        .filter(|&id| {
            let f = &sym.fns[id];
            ROOT_PREFIXES.iter().any(|p| f.def.name.starts_with(p))
                || f.def
                    .params
                    .iter()
                    .any(|p| ROOT_PARAM_MARKERS.iter().any(|m| p.contains(m)))
        })
        .collect();
    let reachable = graph.reachable(roots, &surface);
    for a in arts.iter_mut() {
        // Fail closed: if the parser lost sync, keep every finding.
        if !a.scan.scope.panic_index || !a.scan.parsed.parsed_ok {
            continue;
        }
        let ids = sym.file_fns(&a.scan.path);
        let parsed = &a.scan.parsed;
        a.scan.raw.retain(|f| {
            if f.rule != "panic" && f.rule != "index" {
                return true;
            }
            match parsed.fn_at_line(f.line) {
                // Findings outside any parsed fn are kept (fail closed).
                None => true,
                Some(local) => ids.get(local).is_none_or(|id| reachable.contains(id)),
            }
        });
    }

    // --- Waivers last, so retired findings surface stale waivers. ---
    let lints = arts
        .iter_mut()
        .map(|a| {
            rules::apply_waivers(
                &a.scan.path,
                std::mem::take(&mut a.scan.raw),
                &a.scan.waivers,
            )
        })
        .collect();
    let timings = vec![
        ("dataflow-build", acc.dataflow_build),
        ("untrusted-len-alloc", acc.untrusted_len),
        ("cast-truncation", acc.cast),
        ("hot-path-alloc", hot_us),
        ("effect-fixpoint", fixpoint_us),
    ];
    (lints, timings, registry)
}

/// Analyze a set of in-memory sources as one workspace: the full
/// two-phase pipeline (call graph and effect fixpoint included), no
/// filesystem, no cache, no taxonomy or registry cross-checks. This is
/// the entry point for multi-file fixture tests.
pub fn analyze_sources(files: &[(&str, &str)]) -> Analysis {
    let t0 = Instant::now();
    let ctx = scan_ctx(files);
    let mut acc = StageAcc::default();
    let mut arts: Vec<FileArtifacts> = files
        .iter()
        .map(|(path, src)| build_artifacts(path, src, rules::scope_for(path), &ctx, &mut acc))
        .collect();
    let (lints, timings, _) = run_pipeline(&mut arts, acc, false);
    let mut analysis = Analysis {
        files_scanned: arts.len(),
        rule_timings: timings,
        ..Analysis::default()
    };
    for lint in lints {
        analysis.findings.extend(lint.findings);
        analysis.waived.extend(lint.waived);
    }
    finish(&mut analysis, &arts, t0);
    analysis
}

/// Lint one source string under an explicit scope. Single-file pipeline:
/// the call graph sees only this file.
pub fn lint_file(path: &str, src: &str, scope: Scope) -> FileLint {
    let ctx = scan_ctx(&[(path, src)]);
    let mut acc = StageAcc::default();
    let mut arts = vec![build_artifacts(path, src, scope, &ctx, &mut acc)];
    run_pipeline(&mut arts, acc, false)
        .0
        .pop()
        .unwrap_or_default()
}

/// Lint one source string under the scope its path would get in the repo.
/// This is the entry point the fixture tests use.
pub fn lint_source(repo_rel_path: &str, src: &str) -> FileLint {
    lint_file(repo_rel_path, src, rules::scope_for(repo_rel_path))
}

/// Run the full gate against a repo checkout, without the incremental
/// cache.
pub fn analyze(root: &Path) -> Analysis {
    analyze_with(root, None)
}

/// Run the full gate against a repo checkout. With `cache_path` set, the
/// per-file artifacts are restored from / persisted to that file, keyed
/// by content hash under a version+registry salt ([`cache`]); a stale,
/// corrupt, or version-mismatched entry is a miss (fail closed), never a
/// wrong answer.
pub fn analyze_with(root: &Path, cache_path: Option<&Path>) -> Analysis {
    let t0 = Instant::now();
    let mut inputs: Vec<(String, String)> = Vec::new();
    for rel in source_files(root) {
        if rules::scope_for(&rel).is_empty() {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        inputs.push((rel, src));
    }
    let borrowed: Vec<(&str, &str)> = inputs
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    let ctx = scan_ctx(&borrowed);
    let salt = cache::salt(&ctx);
    let mut store = match cache_path {
        Some(p) => cache::Store::load(p, salt),
        None => cache::Store::empty(salt),
    };
    let mut acc = StageAcc::default();
    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut arts: Vec<FileArtifacts> = Vec::with_capacity(borrowed.len());
    for (path, src) in &borrowed {
        let hash = fingerprint::fnv1a64(src.as_bytes());
        if cache_path.is_some() {
            if let Some(art) = store.take_hit(path, hash) {
                hits += 1;
                arts.push(art);
                continue;
            }
        }
        let art = build_artifacts(path, src, rules::scope_for(path), &ctx, &mut acc);
        if cache_path.is_some() {
            store.record(path, hash, &art);
        }
        misses += 1;
        arts.push(art);
    }
    let (lints, timings, registry) = run_pipeline(&mut arts, acc, true);
    let mut analysis = Analysis {
        files_scanned: arts.len(),
        rule_timings: timings,
        cache_hits: hits,
        cache_misses: misses,
        ..Analysis::default()
    };
    for lint in lints {
        analysis.findings.extend(lint.findings);
        analysis.waived.extend(lint.waived);
    }
    analysis.findings.extend(registry);
    analysis.findings.extend(taxonomy::check(root));
    finish(&mut analysis, &arts, t0);
    if let Some(p) = cache_path {
        store.save(p);
    }
    analysis
}

/// Sort, fingerprint, and stamp the runtime. Fingerprint line text comes
/// from the tokens when present (cold path) and from the pre-normalized
/// `norm_lines` map for cached artifacts.
fn finish(analysis: &mut Analysis, arts: &[FileArtifacts], t0: Instant) {
    analysis.findings.sort();
    analysis.waived.sort();
    let by_path: BTreeMap<&str, &FileArtifacts> =
        arts.iter().map(|a| (a.scan.path.as_str(), a)).collect();
    let line_text = |file: &str, line: u32| {
        by_path.get(file).and_then(|a| {
            if a.scan.code.is_empty() {
                a.norm_lines.get(&line).cloned()
            } else {
                fingerprint::normalize_line(&a.scan.code, line)
            }
        })
    };
    fingerprint::assign(&mut analysis.findings, &line_text);
    analysis.runtime_ms = t0.elapsed().as_millis() as u64;
}

/// All `.rs` files under the repo's first-party trees, repo-relative with
/// forward slashes, in sorted (deterministic) order.
fn source_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.join("crates"), root.join("src")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != ".git" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_escape("⟨SYN → ∅⟩"), "\"⟨SYN → ∅⟩\"");
    }

    #[test]
    fn json_output_is_sarif_shaped() {
        let mut a = Analysis::default();
        a.findings.push(Finding {
            file: "crates/wire/src/x.rs".into(),
            line: 3,
            rule: "index",
            message: "direct slice indexing \"quoted\"".into(),
            fingerprint: "00aa11bb22cc33dd".into(),
        });
        a.files_scanned = 1;
        a.cache_hits = 2;
        a.cache_misses = 1;
        let json = a.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"version\":\"2.1.0\""));
        assert!(json.contains("\"name\":\"tamperlint\""));
        assert!(json.contains("\"ruleId\":\"index\""));
        assert!(json.contains("\"uri\":\"crates/wire/src/x.rs\""));
        assert!(json.contains("\"startLine\":3"));
        assert!(json.contains("\"tamperlint/v1\":\"00aa11bb22cc33dd\""));
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"cache\":{\"hits\":2,\"misses\":1}"));
        assert!(json.contains("\"index\":{\"findings\":1,\"waived\":0}"));
        assert!(json.contains("\\\"quoted\\\""));
        // Every rule is declared in the driver block.
        for rule in RULES {
            assert!(json.contains(&format!("{{\"id\":\"{rule}\"}}")), "{rule}");
        }
    }

    #[test]
    fn rule_counts_cover_every_rule() {
        let counts = Analysis::default().rule_counts();
        assert_eq!(counts.len(), RULES.len());
        assert!(counts.iter().all(|(_, f, w)| *f == 0 && *w == 0));
    }

    #[test]
    fn transitive_containment_crosses_files() {
        // entry → relay → sink: the ambient clock read lives two hops from
        // the entry point, in a sibling module.
        let files = [
            (
                "crates/analysis/src/entry.rs",
                "pub fn summarize(n: u64) -> u64 { relay::stamp_all(n) }",
            ),
            (
                "crates/analysis/src/relay.rs",
                "pub fn stamp_all(n: u64) -> u64 { n + sink::now_ns() }",
            ),
            (
                "crates/analysis/src/sink.rs",
                "use std::time::Instant;\n\
                 pub fn now_ns() -> u64 { Instant::now().elapsed().as_nanos() as u64 }",
            ),
        ];
        let analysis = analyze_sources(&files);
        let fired: Vec<(&str, &str, u32)> = analysis
            .findings
            .iter()
            .map(|f| (f.file.as_str(), f.rule, f.line))
            .collect();
        // Textual findings at the sink…
        assert!(fired.contains(&("crates/analysis/src/sink.rs", "clock-containment", 1)));
        assert!(fired.contains(&("crates/analysis/src/sink.rs", "ambient-clock", 2)));
        // …and transitive findings at both callers.
        assert!(fired.contains(&("crates/analysis/src/relay.rs", "ambient-clock", 1)));
        assert!(fired.contains(&("crates/analysis/src/entry.rs", "ambient-clock", 1)));
        let entry = analysis
            .findings
            .iter()
            .find(|f| f.file.ends_with("entry.rs"))
            .unwrap();
        assert!(
            entry.message.contains("stamp_all → now_ns"),
            "{}",
            entry.message
        );
    }
}
