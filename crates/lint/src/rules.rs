//! The lint rules and the waiver grammar.
//!
//! Rules are scoped by repo-relative path (forward slashes). A finding can
//! be waived in source with
//!
//! ```text
//! // tamperlint: allow(<rule>) — <reason>
//! ```
//!
//! (`--` is accepted in place of the em-dash). A waiver covers its own line
//! and the next line that carries code, and the reason is mandatory. Unused
//! and malformed waivers are themselves findings — a waiver must never
//! outlive the code it excuses.
//!
//! This module owns the per-file scan: waiver collection, the token-window
//! rules, and the AST-backed wraparound-arithmetic and exhaustive-
//! signature-match rules. Cross-file analyses (call-graph containment, the
//! discarded-wire-error rule, untrusted-reachability scoping of
//! panic/index) run in the [`crate`] pipeline over the retained
//! [`FileScan`]s, and waivers are applied only after those phases so a
//! waiver whose finding the call graph retires turns into an
//! `unused waiver` finding instead of silently rotting.

use crate::ast::{self, ParsedFile};
use crate::lexer::{lex, strip_test_modules, Tok, TokKind};
use std::collections::BTreeSet;

/// All lint rules, in reporting order.
pub const RULES: [&str; 18] = [
    "map-iter",
    "ambient-clock",
    "clock-containment",
    "ambient-rng",
    "thread-containment",
    "panic",
    "index",
    "wraparound-arithmetic",
    "exhaustive-signature-match",
    "discarded-wire-error",
    "hot-path-alloc",
    "untrusted-len-alloc",
    "cast-truncation",
    "purity-audit",
    "unbounded-growth",
    "root-registry",
    "taxonomy",
    "waiver",
];

/// One paragraph of documentation per rule, for `cargo xtask analyze
/// --explain <rule>`. Every entry of [`RULES`] must have one (enforced by
/// a test), so a rule can never ship undocumented.
pub const EXPLANATIONS: [(&str, &str); 18] = [
    (
        "map-iter",
        "HashMap/HashSet iteration order varies per process (SipHash keys are \
         randomized), so any output derived from iterating one is \
         nondeterministic. The paper's pipeline promises byte-identical reports \
         for identical captures; output-producing crates (analysis, core) and \
         the linter itself must use BTreeMap/BTreeSet instead.",
    ),
    (
        "ambient-clock",
        "Instant::now()/SystemTime::now() read the wall clock, so classification \
         that touches them depends on when the pipeline ran, not just on the \
         packets. Fires textually at the call site and transitively — via the \
         effect summaries — at every pipeline function whose call chain reaches \
         one, with the chain in the message. tamper-obs is the sole sanctioned \
         home for clock reads.",
    ),
    (
        "clock-containment",
        "Any other mention of Instant/SystemTime in a pipeline crate (use \
         statements, struct fields, signatures) smuggles a clock handle toward \
         the deterministic core. Timing belongs in tamper-obs (Stopwatch, \
         ScopeMetrics), which is guaranteed never to perturb verdict bytes.",
    ),
    (
        "ambient-rng",
        "thread_rng/from_entropy/OsRng/getrandom/rand::random draw operating- \
         system entropy, making runs irreproducible. Simulation and sampling \
         must use seeded generators so a reported number can be regenerated \
         bit-for-bit. Fires textually and transitively like ambient-clock.",
    ),
    (
        "thread-containment",
        "capture::engine owns the one reader/shard/merge thread topology, and \
         engine_determinism proves it merges deterministically at any thread \
         count. A bespoke thread::spawn/crossbeam pool elsewhere would be a \
         second interleaving source with no such proof; plug in through a \
         FlowSource instead.",
    ),
    (
        "panic",
        ".unwrap()/.expect()/panic! on the untrusted-input parse surface turns \
         malformed capture bytes into a crashed pipeline — the opposite of the \
         paper's fail-open measurement posture. Scoped to functions the call \
         graph proves reachable from untrusted-input roots; return a typed \
         WireError instead.",
    ),
    (
        "index",
        "Direct slice indexing panics on short input, and tampered traffic is \
         precisely where truncated packets live. On the untrusted-reachable \
         parse surface, use .get(…) or the bounds-checked wire::Reader.",
    ),
    (
        "wraparound-arithmetic",
        "TCP sequence space is mod 2^32: raw +/-/* on seq/ack/isn/offset-named \
         u32 values silently corrupts relative positions when a flow straddles \
         the wrap. Use wrapping_*/checked_* so the intent (and the gate) is \
         explicit. PR 3 fixed a real wrap bug in core::reorder; this keeps the \
         next one out.",
    ),
    (
        "exhaustive-signature-match",
        "A `_` wildcard or catch-all binding in a match over the paper's \
         Signature taxonomy means adding a 20th signature silently misroutes \
         flows instead of failing the build. Enumerate every variant; \
         `name @ (V1 | V2 | …)` keeps a binding while staying exhaustive.",
    ),
    (
        "discarded-wire-error",
        "`let _ = …` or `.ok()` on a Result<_, WireError> silently swallows a \
         parse failure, deflating the tamper counts the paper reports. Handle \
         the error, thread it into the evidence stream, or waive with a reason \
         stating why dropping it is sound.",
    ),
    (
        "hot-path-alloc",
        "Functions call-graph-reachable from the HOT_ROOTS registry \
         (FlowMachine::process, SourceShard::absorb, …) run once per packet or \
         per flow at line rate; a fresh Vec/format!/clone there is the \
         difference between 535k and 2M flows/s. Reuse caller-owned scratch \
         buffers instead. The discovery chain from the root is in the message.",
    ),
    (
        "untrusted-len-alloc",
        "A length read off the wire that flows unclamped into with_capacity / \
         vec![_; n] / an index lets one crafted packet allocate gigabytes or \
         panic. Clamp (.min), bounds-check, or validate against the remaining \
         buffer before sizing anything with it.",
    ),
    (
        "cast-truncation",
        "`seq as u16` silently drops the high bits of sequence-space and length \
         values, corrupting relative math exactly like wraparound does. Use \
         try_from or clamp first so narrowing is explicit and checked.",
    ),
    (
        "purity-audit",
        "Every entry in the PURE_ROOTS registry — the classify→aggregate→report \
         path (FlowMachine::analyze, PartialAggregate::record/merge, \
         Collector::observe/merge, report::full_report) — must have an empty \
         transitive effect set: no clock, no rng, no thread, no unordered-map \
         iteration, no IO, no global mutation, and no Unknown (unparsed body or \
         unresolved workspace call) anywhere in its call closure. This turns \
         the runtime byte-identity tests into a static proof; the witness call \
         chain to the offending effect is in the message.",
    ),
    (
        "unbounded-growth",
        "An insertion (push/insert/entry/extend/…) into a collection field of a \
         long-lived type — one with process/absorb/observe/record/merge-style \
         methods, i.e. state that survives across per-packet calls — with no \
         eviction, clear, reassignment, or len-cap on the same field anywhere \
         in the workspace. A long-running ingest daemon accumulates such a \
         field forever; bound it (cap, sweep, ring buffer) or waive with the \
         reason the key space is finite.",
    ),
    (
        "root-registry",
        "HOT_ROOTS and PURE_ROOTS entries are matched against the symbol table \
         by (owner, name). An entry that resolves to no function is rename rot: \
         the gate it anchors has silently stopped firing. Update the registry \
         entry or restore the function it names.",
    ),
    (
        "taxonomy",
        "The 19-signature taxonomy must agree across its three homes: the \
         Signature enum in core, the golden corpus labels, and the DESIGN.md \
         table. Drift between them means the code classifies a signature the \
         docs don't define (or vice versa); this cross-check fails on any \
         mismatch in either direction.",
    ),
    (
        "waiver",
        "Waivers are `// tamperlint: allow(<rule>) — <reason>` and cover their \
         own line plus the next code line. A malformed waiver (bad grammar, \
         unknown rule, missing reason) or an unused one (no matching finding \
         left) is itself a finding: a waiver must never outlive the code it \
         excuses, and a typo must never silently disable a gate.",
    ),
];

/// The `--explain` text for one rule, if it is registered.
pub fn explain(rule: &str) -> Option<&'static str> {
    EXPLANATIONS
        .iter()
        .find(|(r, _)| *r == rule)
        .map(|(_, text)| *text)
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule code (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Stable line-number-independent fingerprint (assigned by the
    /// analysis pipeline; empty in per-file scan results).
    pub fingerprint: String,
}

impl Finding {
    /// A finding with no fingerprint yet.
    pub fn new(file: &str, line: u32, rule: &'static str, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message,
            fingerprint: String::new(),
        }
    }
}

/// A parsed source waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule the waiver excuses.
    pub rule: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// Mandatory justification text.
    pub reason: String,
}

/// Outcome of linting one file: surviving findings plus waiver bookkeeping.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Findings not covered by any waiver.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a matching waiver (kept for counters).
    pub waived: Vec<Finding>,
}

/// Parse a waiver out of one `//` comment body, if it claims to be one.
///
/// Returns `Ok(None)` when the comment is not a tamperlint directive at all,
/// `Ok(Some(waiver))` on success, and `Err(description)` when the comment
/// starts with `tamperlint:` but the grammar is wrong — those surface as
/// `waiver` findings so typos cannot silently disable a gate.
pub fn parse_waiver(comment: &str) -> Result<Option<(String, String)>, String> {
    let text = comment.trim();
    let Some(rest) = text.strip_prefix("tamperlint:") else {
        return Ok(None);
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(<rule>)` after `tamperlint:`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(` in waiver".to_string());
    };
    let rule = rest[..close].trim();
    if !RULES.contains(&rule) {
        return Err(format!("unknown rule {rule:?} in waiver"));
    }
    let after = rest[close + 1..].trim_start();
    let reason = if let Some(r) = after.strip_prefix('—') {
        r.trim()
    } else if let Some(r) = after.strip_prefix("--") {
        r.trim()
    } else {
        return Err("expected `— <reason>` (or `-- <reason>`) after `allow(…)`".to_string());
    };
    if reason.is_empty() {
        return Err("waiver reason must not be empty".to_string());
    }
    Ok(Some((rule.to_string(), reason.to_string())))
}

/// Which rule families apply to a repo-relative path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// `map-iter`: output-producing crates (and the linter itself) must
    /// not use HashMap/HashSet.
    pub map_iter: bool,
    /// `ambient-clock` / `ambient-rng`: the deterministic pipeline.
    pub ambient: bool,
    /// `thread-containment`: pipeline crates that must route parallel
    /// work through `capture::engine` instead of spawning their own
    /// threads.
    pub thread_containment: bool,
    /// `panic` / `index`: the untrusted-input parsing surface.
    pub panic_index: bool,
    /// `wraparound-arithmetic`: sequence-space math in `wire`/`core`.
    pub wraparound: bool,
    /// `exhaustive-signature-match`: pipeline crates matching on the
    /// paper's `Signature` taxonomy.
    pub sig_match: bool,
    /// `discarded-wire-error`: pipeline crates must not silently swallow
    /// `Result<_, WireError>`.
    pub discard: bool,
    /// `hot-path-alloc`: fresh allocations reachable from the declared
    /// hot roots (see `HOT_ROOTS` in the crate root).
    pub hot_alloc: bool,
    /// `untrusted-len-alloc`: wire-derived lengths must be clamped before
    /// sizing an allocation or indexing.
    pub taint_len: bool,
    /// `cast-truncation`: raw `as` narrowing of seq/ack/len/off-named
    /// values in sequence-space code.
    pub cast_trunc: bool,
    /// `purity-audit`: the PURE_ROOTS registry's transitive effect sets
    /// must be empty (see `effects` in the crate root).
    pub purity: bool,
    /// `unbounded-growth`: long-lived collection fields must have
    /// reachable eviction/clear/cap evidence.
    pub growth: bool,
}

impl Scope {
    /// True if no rule family applies (the file can be skipped entirely).
    pub fn is_empty(self) -> bool {
        !(self.map_iter
            || self.ambient
            || self.thread_containment
            || self.panic_index
            || self.wraparound
            || self.sig_match
            || self.discard
            || self.hot_alloc
            || self.taint_len
            || self.cast_trunc
            || self.purity
            || self.growth)
    }
}

/// Compute the rule scope for one repo-relative path.
pub fn scope_for(path: &str) -> Scope {
    // Ambient time/randomness: every first-party pipeline crate. Benchmarks,
    // repo automation, and the linter itself measure wall-clock by design;
    // tamper-obs is the one sanctioned home for wall-clock reads (the
    // `clock-containment` rule routes everyone else through it).
    let first_party =
        (path.starts_with("crates/") && path.contains("/src/")) || path.starts_with("src/");
    let exempt = path.starts_with("crates/bench/")
        || path.starts_with("crates/xtask/")
        || path.starts_with("crates/lint/")
        || path.starts_with("crates/obs/");
    let pipeline = first_party && !exempt;
    Scope {
        // Determinism: anything that feeds report bytes — plus the linter
        // itself, which must render findings in a stable order.
        map_iter: path.starts_with("crates/analysis/src/")
            || path.starts_with("crates/core/src/")
            || path.starts_with("crates/lint/src/"),
        ambient: pipeline,
        // One sharding implementation: `capture::engine` owns the reader/
        // shard/merge thread topology; everything else plugs in through a
        // FlowSource. The worldgen driver once carried a second crossbeam
        // shard loop — this rule keeps it from coming back.
        thread_containment: pipeline && path != "crates/capture/src/engine.rs",
        // Panic-safety: bytes-off-the-wire parsing surface — including
        // the partial-aggregate decoder, which reads untrusted .agg files.
        panic_index: path.starts_with("crates/wire/src/")
            || matches!(
                path,
                "crates/capture/src/pcap.rs"
                    | "crates/capture/src/offline.rs"
                    | "crates/capture/src/engine.rs"
                    | "crates/capture/src/source.rs"
                    | "crates/analysis/src/aggfile.rs"
            ),
        // Sequence-space arithmetic lives in the wire parsers and the core
        // classifier; PR 3 fixed a real u32-wraparound bug in
        // `core::reorder`, and this rule keeps the next one out.
        wraparound: path.starts_with("crates/wire/src/") || path.starts_with("crates/core/src/"),
        sig_match: pipeline,
        discard: pipeline,
        // The hot-root closure can cross any pipeline crate, so every one
        // of them is in scope; findings only materialize on functions the
        // call graph proves reachable from a hot root.
        hot_alloc: pipeline,
        // Untrusted lengths are read exactly where untrusted bytes are
        // parsed: the same surface the panic/index rules police.
        taint_len: path.starts_with("crates/wire/src/")
            || matches!(
                path,
                "crates/capture/src/pcap.rs"
                    | "crates/capture/src/offline.rs"
                    | "crates/capture/src/engine.rs"
                    | "crates/capture/src/source.rs"
                    | "crates/analysis/src/aggfile.rs"
            ),
        // Narrowing casts on sequence-space values: same home as the
        // wraparound rule.
        cast_trunc: path.starts_with("crates/wire/src/") || path.starts_with("crates/core/src/"),
        // The pure classify→aggregate→report roots and the long-lived
        // state the serve daemon will keep both live in pipeline crates.
        purity: pipeline,
        growth: pipeline,
    }
}

/// Keywords that may directly precede `[` without it being an index
/// expression (patterns, array types, expression starts).
pub(crate) const NON_INDEX_KEYWORDS: [&str; 14] = [
    "let", "mut", "ref", "in", "if", "else", "match", "return", "as", "const", "static", "move",
    "box", "dyn",
];

/// Keywords after which `+`/`-`/`*` cannot be a binary operator (the
/// preceding "operand" is not an expression result).
const NON_OPERAND_KEYWORDS: [&str; 16] = [
    "return", "as", "in", "if", "else", "match", "let", "mut", "move", "while", "loop", "break",
    "continue", "ref", "use", "where",
];

/// Identifier last-segments the wraparound rule treats as sequence-space
/// values: `seq`, `rel_seq`, `data_offset`, … all end in one of these.
const SEQ_SPACE_SEGMENTS: [&str; 5] = ["seq", "ack", "isn", "off", "offset"];

/// Pattern idents that never count as catch-all bindings.
const NON_BINDING_PATTERN_IDENTS: [&str; 5] = ["ref", "mut", "true", "false", "box"];

/// Everything retained from one file's scan, for the cross-file phases.
pub struct FileScan {
    /// Repo-relative path.
    pub path: String,
    /// Rule scope the file was scanned under.
    pub scope: Scope,
    /// Raw findings (waivers not yet applied).
    pub raw: Vec<Finding>,
    /// Waivers with the line set each covers.
    pub waivers: Vec<(Waiver, BTreeSet<u32>)>,
    /// Code tokens (comments and `#[cfg(test)]` modules stripped).
    pub code: Vec<Tok>,
    /// Parsed item structure.
    pub parsed: ParsedFile,
}

/// Cross-file context the per-file scan needs up front.
#[derive(Debug, Default)]
pub struct ScanCtx {
    /// The `Signature` enum's variant names (from
    /// `crates/core/src/signature.rs` when present in the file set), so
    /// `use Signature::*`-style matches are still recognized.
    pub signature_variants: BTreeSet<String>,
}

/// True for `seq`/`ack`/`isn`/`off`/`offset`-suffixed identifiers.
fn is_seq_space_ident(name: &str) -> bool {
    let last = name.rsplit('_').next().unwrap_or(name);
    SEQ_SPACE_SEGMENTS.contains(&last.to_ascii_lowercase().as_str())
}

/// Scan one file: collect waivers, run every single-file rule, parse the
/// AST. Waivers are NOT applied here — the pipeline does that after the
/// cross-file phases.
pub fn scan_file(path: &str, src: &str, scope: Scope, ctx: &ScanCtx) -> FileScan {
    let toks = strip_test_modules(lex(src));
    let mut raw: Vec<Finding> = Vec::new();

    // --- Waivers (and waiver-grammar findings) come from the comments. ---
    let mut waivers: Vec<(Waiver, BTreeSet<u32>)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let TokKind::LineComment(text) = &t.kind else {
            continue;
        };
        match parse_waiver(text) {
            Ok(None) => {}
            Ok(Some((rule, reason))) => {
                // A waiver covers its own line plus the next code line.
                let mut covered: BTreeSet<u32> = BTreeSet::new();
                covered.insert(t.line);
                if let Some(next) = toks[i + 1..]
                    .iter()
                    .find(|n| !n.kind.is_comment() && n.line > t.line)
                {
                    covered.insert(next.line);
                }
                waivers.push((
                    Waiver {
                        rule,
                        reason,
                        line: t.line,
                    },
                    covered,
                ));
            }
            Err(why) => raw.push(Finding::new(
                path,
                t.line,
                "waiver",
                format!("malformed waiver: {why}"),
            )),
        }
    }

    // --- Token-window rules over code tokens only. ---
    let code: Vec<Tok> = toks.into_iter().filter(|t| !t.kind.is_comment()).collect();
    let ident = |i: usize| match code.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize| match code.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    };
    // `A :: B` at position i?
    let path_pair = |i: usize, a: &str, b: &str| {
        ident(i) == Some(a)
            && punct(i + 1) == Some(':')
            && punct(i + 2) == Some(':')
            && ident(i + 3) == Some(b)
    };

    for i in 0..code.len() {
        let line = code[i].line;
        let mut push_at = |line: u32, rule: &'static str, message: String| {
            raw.push(Finding::new(path, line, rule, message))
        };

        if scope.map_iter {
            if let Some(name @ ("HashMap" | "HashSet")) = ident(i) {
                push_at(
                    line,
                    "map-iter",
                    format!(
                        "{name} in an output-producing crate: iteration order is \
                         nondeterministic per process; use BTreeMap/BTreeSet"
                    ),
                );
            }
        }

        if scope.ambient {
            if path_pair(i, "SystemTime", "now") || path_pair(i, "Instant", "now") {
                push_at(
                    line,
                    "ambient-clock",
                    format!(
                        "{}::now() reads the ambient clock; thread timestamps through \
                         the simulated clock instead",
                        ident(i).unwrap_or_default()
                    ),
                );
            } else if let Some(name @ ("Instant" | "SystemTime")) = ident(i) {
                // Any other mention of the clock types (use statements,
                // struct fields, signatures) smuggles a clock handle into
                // a pipeline crate. `tamper-obs` is the one sanctioned
                // home for wall-clock reads; the `::now` form above is
                // already the ambient-clock rule's finding.
                push_at(
                    line,
                    "clock-containment",
                    format!(
                        "{name} in a pipeline crate; reach clocks only through \
                         tamper_obs (Stopwatch / ScopeMetrics timers)"
                    ),
                );
            }
            if let Some(name @ ("thread_rng" | "from_entropy" | "OsRng" | "getrandom")) = ident(i) {
                push_at(
                    line,
                    "ambient-rng",
                    format!("{name} draws ambient randomness; use a seeded generator"),
                );
            }
            if path_pair(i, "rand", "random") {
                push_at(
                    line,
                    "ambient-rng",
                    "rand::random draws ambient randomness; use a seeded generator".to_string(),
                );
            }
        }

        if scope.thread_containment {
            if ident(i) == Some("crossbeam") {
                push_at(
                    line,
                    "thread-containment",
                    "crossbeam outside capture::engine: the engine owns the only \
                     shard/merge thread topology; plug in through a FlowSource"
                        .to_string(),
                );
            }
            if path_pair(i, "thread", "spawn") || path_pair(i, "thread", "scope") {
                push_at(
                    line,
                    "thread-containment",
                    "thread spawning outside capture::engine: route parallel work \
                     through the unified engine instead of a bespoke pool"
                        .to_string(),
                );
            }
        }

        if scope.panic_index {
            if punct(i) == Some('.') {
                if let Some(name @ ("unwrap" | "expect")) = ident(i + 1) {
                    push_at(
                        code[i + 1].line,
                        "panic",
                        format!(
                            ".{name}() on the untrusted-input surface; return a typed \
                             WireError instead"
                        ),
                    );
                }
            }
            if let Some(name @ ("panic" | "unreachable" | "todo" | "unimplemented")) = ident(i) {
                if punct(i + 1) == Some('!') {
                    push_at(
                        line,
                        "panic",
                        format!(
                            "{name}! on the untrusted-input surface; malformed capture \
                             bytes must not abort the process"
                        ),
                    );
                }
            }
            if punct(i) == Some('[') && i > 0 {
                let indexes = match &code[i - 1].kind {
                    TokKind::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
                    TokKind::Punct(')') | TokKind::Punct(']') => true,
                    _ => false,
                };
                if indexes {
                    push_at(
                        line,
                        "index",
                        "direct slice indexing can panic on short input; use .get(…) or \
                         a bounds-checked Reader"
                            .to_string(),
                    );
                }
            }
        }

        if scope.wraparound {
            if let Some(op @ ('+' | '-' | '*')) = punct(i) {
                // `->` is an arrow, not a subtraction.
                let arrow = op == '-' && punct(i + 1) == Some('>');
                // Binary iff the previous token can end an operand.
                let binary = i > 0
                    && match &code[i - 1].kind {
                        TokKind::Ident(s) => !NON_OPERAND_KEYWORDS.contains(&s.as_str()),
                        TokKind::Lit(_) => true,
                        TokKind::Punct(')') | TokKind::Punct(']') => true,
                        _ => false,
                    };
                if binary && !arrow {
                    // Operand after the operator (skip the `=` of a
                    // compound assignment).
                    let rhs = if punct(i + 1) == Some('=') {
                        i + 2
                    } else {
                        i + 1
                    };
                    let lhs_name = ident(i - 1).filter(|n| is_seq_space_ident(n));
                    let rhs_name = ident(rhs).filter(|n| is_seq_space_ident(n));
                    if let Some(name) = lhs_name.or(rhs_name) {
                        push_at(
                            line,
                            "wraparound-arithmetic",
                            format!(
                                "raw `{op}` on sequence-space value `{name}`; u32 \
                                 seq/ack/offset math must use wrapping_*/checked_* to \
                                 survive wraparound"
                            ),
                        );
                    }
                }
            }
        }
    }

    // --- AST-backed rules. ---
    let parsed = ast::parse(&code);
    if scope.sig_match {
        for f in &parsed.fns {
            for m in &f.matches {
                sig_match_findings(path, m, ctx, &mut raw);
            }
        }
    }

    FileScan {
        path: path.to_string(),
        scope,
        raw,
        waivers,
        code,
        parsed,
    }
}

/// The exhaustive-signature-match rule for one `match` expression: if any
/// arm pattern names the `Signature` type or one of its variants, the
/// match is "on Signature" and may use neither `_` wildcards nor catch-all
/// bindings — adding a 20th signature must fail this gate, not silently
/// fall into a bucket. `name @ (V1 | V2 | …)` keeps a binding while
/// staying exhaustive.
fn sig_match_findings(path: &str, m: &ast::MatchExpr, ctx: &ScanCtx, raw: &mut Vec<Finding>) {
    // Evidence that the match is over `Signature`: the type name itself,
    // or a bare (un-path-qualified) variant name — `Vendor::SynRst` is
    // another enum that happens to share a variant name, and must not
    // count; `Signature::SynRst` already counts via the `Signature` ident.
    let on_signature = m.arms.iter().any(|arm| {
        arm.pat.iter().enumerate().any(|(k, t)| {
            if !t.ident {
                return false;
            }
            if t.text == "Signature" {
                return true;
            }
            let path_qualified = k >= 2 && arm.pat[k - 1].text == ":" && arm.pat[k - 2].text == ":";
            ctx.signature_variants.contains(&t.text) && !path_qualified
        })
    });
    if !on_signature {
        return;
    }
    for arm in &m.arms {
        for (k, t) in arm.pat.iter().enumerate() {
            if !t.ident {
                continue;
            }
            if t.text == "_" {
                raw.push(Finding::new(
                    path,
                    t.line,
                    "exhaustive-signature-match",
                    "`_` wildcard in a match over Signature; enumerate every variant so \
                     a new signature fails the gate instead of silently misclassifying"
                        .to_string(),
                ));
                continue;
            }
            // A lowercase bare ident that is not a path segment and not an
            // `@`-binding is a catch-all binding.
            let lowercase_start = t
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase());
            if !lowercase_start || NON_BINDING_PATTERN_IDENTS.contains(&t.text.as_str()) {
                continue;
            }
            let at_binding = arm
                .pat
                .get(k + 1)
                .is_some_and(|n| !n.ident && n.text == "@");
            let path_segment = k >= 2 && arm.pat[k - 1].text == ":" && arm.pat[k - 2].text == ":";
            if !at_binding && !path_segment {
                raw.push(Finding::new(
                    path,
                    t.line,
                    "exhaustive-signature-match",
                    format!(
                        "catch-all binding `{}` in a match over Signature; enumerate \
                         every variant (`{} @ (V1 | V2 | …)` keeps the binding)",
                        t.text, t.text
                    ),
                ));
            }
        }
    }
}

/// Method names shared with std/core (`text.parse()`, `iter.next()`, …).
/// The discard rule skips *method-form* matches on these — a name-based
/// symbol table cannot tell `str::parse` from `Packet::parse` — but
/// qualified-path and bare calls stay eligible.
const STD_AMBIGUOUS_METHODS: [&str; 9] = [
    "parse",
    "take",
    "next",
    "skip",
    "get",
    "read",
    "ok",
    "from_utf8",
    "position",
];

/// One discarded-result candidate site, extracted per file (cacheable)
/// and filtered against the workspace-wide wire-error function set in
/// phase 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscardCand {
    /// Line the finding would report on (the `let` or the `.ok()`).
    pub line: u32,
    /// True for the `let _ = …;` form, false for the `.ok()` chain.
    pub let_form: bool,
    /// Eligible callee names at the site, in source order. The let form
    /// fires on the *first* name that is a wire-error function; the
    /// `.ok()` form carries exactly one name (the receiver's callee).
    pub names: Vec<String>,
}

/// Extract the discarded-result candidates from one file's tokens:
/// `let _ = …;` statements and `.ok()` chains, with every eligible callee
/// name recorded. Method-form matches on std-ambiguous names are skipped
/// at extraction time (a name-based symbol table cannot tell `str::parse`
/// from `Packet::parse`); the wire-error filter happens in
/// [`discard_filter`], which has the workspace return-type table.
pub fn discard_candidates(code: &[Tok]) -> Vec<DiscardCand> {
    let ident = |i: usize| match code.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize| match code.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    };
    // Is the call at name-index `k` eligible? Method form is skipped for
    // std-ambiguous names; qualified and bare forms always count.
    let eligible = |k: usize, name: &str| {
        let method = k >= 1 && punct(k - 1) == Some('.');
        !(method && STD_AMBIGUOUS_METHODS.contains(&name))
    };
    let mut out = Vec::new();
    for i in 0..code.len() {
        // `let _ = <expr>;` — record every eligible call name in order.
        if ident(i) == Some("let") && ident(i + 1) == Some("_") && punct(i + 2) == Some('=') {
            let mut depth = 0i32;
            let mut end = i + 3;
            while end < code.len() {
                match punct(end) {
                    Some('(') | Some('[') | Some('{') => depth += 1,
                    Some(')') | Some(']') | Some('}') => depth -= 1,
                    Some(';') if depth == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            let mut names = Vec::new();
            for k in i + 3..end {
                let Some(name) = ident(k) else { continue };
                if punct(k + 1) == Some('(') && eligible(k, name) {
                    names.push(name.to_string());
                }
            }
            if !names.is_empty() {
                out.push(DiscardCand {
                    line: code[i].line,
                    let_form: true,
                    names,
                });
            }
        }
        // `<call>(…).ok()` — record the receiver's callee.
        if punct(i) == Some('.')
            && ident(i + 1) == Some("ok")
            && punct(i + 2) == Some('(')
            && punct(i + 3) == Some(')')
            && i >= 1
            && punct(i - 1) == Some(')')
        {
            // Back-match the receiver's argument parens to its callee.
            let mut depth = 0i32;
            let mut j = i - 1;
            loop {
                match punct(j) {
                    Some(')') | Some(']') => depth += 1,
                    Some('(') | Some('[') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if j >= 1 {
                if let Some(name) = ident(j - 1) {
                    if eligible(j - 1, name) {
                        out.push(DiscardCand {
                            line: code[i + 1].line,
                            let_form: false,
                            names: vec![name.to_string()],
                        });
                    }
                }
            }
        }
    }
    out
}

/// Filter discard candidates against the workspace wire-error function
/// set, producing the discarded-wire-error findings.
pub fn discard_filter(
    path: &str,
    cands: &[DiscardCand],
    wire_fns: &BTreeSet<String>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for c in cands {
        if c.let_form {
            if let Some(name) = c.names.iter().find(|n| wire_fns.contains(n.as_str())) {
                out.push(Finding::new(
                    path,
                    c.line,
                    "discarded-wire-error",
                    format!(
                        "`let _ =` discards the Result<_, WireError> from `{name}`; \
                         handle the error or waive with a reason"
                    ),
                ));
            }
        } else if let Some(name) = c.names.first().filter(|n| wire_fns.contains(n.as_str())) {
            out.push(Finding::new(
                path,
                c.line,
                "discarded-wire-error",
                format!(
                    ".ok() swallows the WireError from `{name}`; propagate \
                     it or waive with a reason"
                ),
            ));
        }
    }
    out
}

/// The discarded-wire-error rule for one file, in one step (extraction +
/// filter). Kept for single-shot callers; the pipeline caches
/// [`discard_candidates`] per file and runs [`discard_filter`] per run.
pub fn discard_findings(path: &str, code: &[Tok], wire_fns: &BTreeSet<String>) -> Vec<Finding> {
    discard_filter(path, &discard_candidates(code), wire_fns)
}

/// Apply a file's waivers to its surviving raw findings. Called by the
/// pipeline after the cross-file phases have added transitive findings
/// and retired unreachable ones, so unused waivers surface accurately.
pub fn apply_waivers(
    path: &str,
    raw: Vec<Finding>,
    waivers: &[(Waiver, BTreeSet<u32>)],
) -> FileLint {
    let mut used = vec![false; waivers.len()];
    let mut out = FileLint::default();
    for f in raw {
        let w = waivers
            .iter()
            .position(|(w, covered)| w.rule == f.rule && covered.contains(&f.line));
        match w {
            Some(idx) => {
                used[idx] = true;
                out.waived.push(f);
            }
            None => out.findings.push(f),
        }
    }
    for (idx, (w, _)) in waivers.iter().enumerate() {
        if !used[idx] {
            out.findings.push(Finding::new(
                path,
                w.line,
                "waiver",
                format!(
                    "unused waiver for `{}`: no matching finding on this or the next \
                     code line — delete it",
                    w.rule
                ),
            ));
        }
    }
    out.findings.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_file;

    const WIRE: &str = "crates/wire/src/example.rs";

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        lint_file(path, src, scope_for(path))
            .findings
            .iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn waiver_grammar_accepts_both_separators() {
        assert_eq!(
            parse_waiver(" tamperlint: allow(index) — checked above").unwrap(),
            Some(("index".into(), "checked above".into()))
        );
        assert_eq!(
            parse_waiver(" tamperlint: allow(panic) -- join propagates").unwrap(),
            Some(("panic".into(), "join propagates".into()))
        );
        assert_eq!(
            parse_waiver(" tamperlint: allow(discarded-wire-error) — best effort").unwrap(),
            Some(("discarded-wire-error".into(), "best effort".into()))
        );
        assert_eq!(parse_waiver(" ordinary comment").unwrap(), None);
    }

    #[test]
    fn waiver_grammar_rejects_missing_reason_and_unknown_rule() {
        assert!(parse_waiver("tamperlint: allow(index)").is_err());
        assert!(parse_waiver("tamperlint: allow(index) —  ").is_err());
        assert!(parse_waiver("tamperlint: allow(no-such-rule) — x").is_err());
        assert!(parse_waiver("tamperlint: allow(index — x").is_err());
        assert!(parse_waiver("tamperlint: deny(index) — x").is_err());
    }

    #[test]
    fn waiver_suppresses_next_code_line_only() {
        let src = "
            fn f(b: &[u8]) -> u8 {
                // tamperlint: allow(index) — caller guarantees length
                b[0]
            }
            fn g(b: &[u8]) -> u8 { b[1] }
        ";
        let lint = lint_file(WIRE, src, scope_for(WIRE));
        assert_eq!(lint.waived.len(), 1);
        assert_eq!(lint.findings.len(), 1);
        assert_eq!(lint.findings[0].rule, "index");
        assert_eq!(lint.findings[0].line, 6);
    }

    #[test]
    fn unused_waiver_is_a_finding() {
        let src = "
            // tamperlint: allow(panic) — stale excuse
            fn f() {}
        ";
        let lint = lint_file(WIRE, src, scope_for(WIRE));
        assert_eq!(lint.findings.len(), 1);
        assert_eq!(lint.findings[0].rule, "waiver");
        assert!(lint.findings[0].message.contains("unused waiver"));
    }

    #[test]
    fn index_rule_ignores_patterns_types_and_macros() {
        let src = "
            fn f(c: &[u8]) -> u32 {
                if let &[a, b] = c { return u32::from(a) + u32::from(b); }
                let [x] = [0u8; 1];
                let v: Vec<u8> = vec![1, 2];
                u32::from(x) + v.len() as u32
            }
        ";
        assert!(rules_fired(WIRE, src).is_empty());
    }

    #[test]
    fn thread_containment_flags_pipeline_crates_but_not_the_engine() {
        let src = "fn f() { crossbeam::thread::scope(|s| { s.spawn(|_| {}); }); }";
        assert!(rules_fired("crates/worldgen/src/driver.rs", src).contains(&"thread-containment"));
        let std_src = "fn f() { std::thread::spawn(|| {}); }";
        assert!(rules_fired("crates/analysis/src/x.rs", std_src).contains(&"thread-containment"));
        // The engine is the one sanctioned home for the thread topology.
        assert!(!rules_fired("crates/capture/src/engine.rs", src).contains(&"thread-containment"));
        // Reading the core count is not spawning.
        let par = "fn f() { let _ = std::thread::available_parallelism(); }";
        assert!(!rules_fired("crates/worldgen/src/driver.rs", par).contains(&"thread-containment"));
    }

    #[test]
    fn scopes_are_path_sensitive() {
        let src = "fn f(b: &[u8]) -> u8 { b[0] }";
        assert!(!rules_fired(WIRE, src).is_empty());
        // Same code outside the untrusted-input surface: no finding.
        assert!(rules_fired("crates/analysis/src/x.rs", src).is_empty());
    }

    #[test]
    fn wraparound_flags_raw_seq_space_ops_only() {
        let src = "
            fn f(seq: u32, isn: u32, len: u32) -> u32 {
                let rel = seq - isn;
                let next_seq = seq.wrapping_add(len);
                let total = len + 4;
                next_seq + rel
            }
        ";
        let lint = lint_file(WIRE, src, scope_for(WIRE));
        let wraps: Vec<u32> = lint
            .findings
            .iter()
            .filter(|f| f.rule == "wraparound-arithmetic")
            .map(|f| f.line)
            .collect();
        // `seq - isn` and `next_seq + rel`; the wrapping_add and the
        // len-only arithmetic are fine.
        assert_eq!(wraps, vec![3, 6]);
    }

    #[test]
    fn wraparound_ignores_unary_arrows_and_non_seq_names() {
        let src = "
            fn g(count: u32) -> i32 { -1 }
            fn h(seq_len: usize, n: usize) -> usize { seq_len * n }
        ";
        // `-1` is unary; `seq_len` ends in `len`, not a tracked segment.
        assert!(rules_fired(WIRE, src).is_empty());
        // Outside wire/core the rule does not apply at all.
        let raw = "fn f(seq: u32) -> u32 { seq + 1 }";
        assert!(rules_fired("crates/worldgen/src/x.rs", raw).is_empty());
    }

    #[test]
    fn wraparound_flags_compound_assignment() {
        let src = "fn f(len: u32, st: &mut St) { st.next_seq += len; }";
        let lint = lint_file(
            "crates/core/src/x.rs",
            src,
            scope_for("crates/core/src/x.rs"),
        );
        assert_eq!(lint.findings.len(), 1);
        assert_eq!(lint.findings[0].rule, "wraparound-arithmetic");
    }

    #[test]
    fn sig_match_flags_wildcards_and_bindings_but_not_at_bindings() {
        let src = "
            fn f(sig: Signature) -> u8 {
                match sig {
                    Signature::SynRst => 1,
                    s @ (Signature::AckRst | Signature::PshRst) => 2,
                    other => 0,
                }
            }
            fn g(sig: Option<Signature>) -> u8 {
                match sig {
                    Some(Signature::SynRst) => 1,
                    Some(_) => 2,
                    None => 0,
                }
            }
            fn unrelated(n: Option<u32>) -> u32 {
                match n { Some(v) => v, _ => 0 }
            }
        ";
        let path = "crates/core/src/x.rs";
        let lint = lint_file(path, src, scope_for(path));
        let fired: Vec<(u32, &str)> = lint
            .findings
            .iter()
            .filter(|f| f.rule == "exhaustive-signature-match")
            .map(|f| (f.line, f.rule))
            .collect();
        // `other` (line 6) and `Some(_)` (line 12); the `s @ (…)` binding
        // and the non-Signature match are fine.
        assert_eq!(
            fired,
            vec![
                (6, "exhaustive-signature-match"),
                (12, "exhaustive-signature-match"),
            ]
        );
    }
}
