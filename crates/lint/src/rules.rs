//! The token-level lint rules and the waiver grammar.
//!
//! Rules are scoped by repo-relative path (forward slashes). A finding can
//! be waived in source with
//!
//! ```text
//! // tamperlint: allow(<rule>) — <reason>
//! ```
//!
//! (`--` is accepted in place of the em-dash). A waiver covers its own line
//! and the next line that carries code, and the reason is mandatory. Unused
//! and malformed waivers are themselves findings — a waiver must never
//! outlive the code it excuses.

use crate::lexer::{lex, strip_test_modules, Tok, TokKind};
use std::collections::BTreeSet;

/// All lint rules, in reporting order.
pub const RULES: [&str; 9] = [
    "map-iter",
    "ambient-clock",
    "clock-containment",
    "ambient-rng",
    "thread-containment",
    "panic",
    "index",
    "taxonomy",
    "waiver",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule code (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// A parsed source waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule the waiver excuses.
    pub rule: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// Mandatory justification text.
    pub reason: String,
}

/// Outcome of linting one file: surviving findings plus waiver bookkeeping.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Findings not covered by any waiver.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a matching waiver (kept for counters).
    pub waived: Vec<Finding>,
}

/// Parse a waiver out of one `//` comment body, if it claims to be one.
///
/// Returns `Ok(None)` when the comment is not a tamperlint directive at all,
/// `Ok(Some(waiver))` on success, and `Err(description)` when the comment
/// starts with `tamperlint:` but the grammar is wrong — those surface as
/// `waiver` findings so typos cannot silently disable a gate.
pub fn parse_waiver(comment: &str) -> Result<Option<(String, String)>, String> {
    let text = comment.trim();
    let Some(rest) = text.strip_prefix("tamperlint:") else {
        return Ok(None);
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(<rule>)` after `tamperlint:`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(` in waiver".to_string());
    };
    let rule = rest[..close].trim();
    if !RULES.contains(&rule) {
        return Err(format!("unknown rule {rule:?} in waiver"));
    }
    let after = rest[close + 1..].trim_start();
    let reason = if let Some(r) = after.strip_prefix('—') {
        r.trim()
    } else if let Some(r) = after.strip_prefix("--") {
        r.trim()
    } else {
        return Err("expected `— <reason>` (or `-- <reason>`) after `allow(…)`".to_string());
    };
    if reason.is_empty() {
        return Err("waiver reason must not be empty".to_string());
    }
    Ok(Some((rule.to_string(), reason.to_string())))
}

/// Which rule families apply to a repo-relative path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// `map-iter`: output-producing crates must not use HashMap/HashSet.
    pub map_iter: bool,
    /// `ambient-clock` / `ambient-rng`: the deterministic pipeline.
    pub ambient: bool,
    /// `thread-containment`: pipeline crates that must route parallel
    /// work through `capture::engine` instead of spawning their own
    /// threads.
    pub thread_containment: bool,
    /// `panic` / `index`: the untrusted-input parsing surface.
    pub panic_index: bool,
}

impl Scope {
    /// True if no rule family applies (the file can be skipped entirely).
    pub fn is_empty(self) -> bool {
        !(self.map_iter || self.ambient || self.thread_containment || self.panic_index)
    }
}

/// Compute the rule scope for one repo-relative path.
pub fn scope_for(path: &str) -> Scope {
    // Ambient time/randomness: every first-party pipeline crate. Benchmarks,
    // repo automation, and the linter itself measure wall-clock by design;
    // tamper-obs is the one sanctioned home for wall-clock reads (the
    // `clock-containment` rule routes everyone else through it).
    let first_party =
        (path.starts_with("crates/") && path.contains("/src/")) || path.starts_with("src/");
    let exempt = path.starts_with("crates/bench/")
        || path.starts_with("crates/xtask/")
        || path.starts_with("crates/lint/")
        || path.starts_with("crates/obs/");
    Scope {
        // Determinism: anything that feeds report bytes.
        map_iter: path.starts_with("crates/analysis/src/") || path.starts_with("crates/core/src/"),
        ambient: first_party && !exempt,
        // One sharding implementation: `capture::engine` owns the reader/
        // shard/merge thread topology; everything else plugs in through a
        // FlowSource. The worldgen driver once carried a second crossbeam
        // shard loop — this rule keeps it from coming back.
        thread_containment: first_party && !exempt && path != "crates/capture/src/engine.rs",
        // Panic-safety: bytes-off-the-wire parsing surface.
        panic_index: path.starts_with("crates/wire/src/")
            || matches!(
                path,
                "crates/capture/src/pcap.rs"
                    | "crates/capture/src/offline.rs"
                    | "crates/capture/src/engine.rs"
                    | "crates/capture/src/source.rs"
            ),
    }
}

/// Keywords that may directly precede `[` without it being an index
/// expression (patterns, array types, expression starts).
const NON_INDEX_KEYWORDS: [&str; 14] = [
    "let", "mut", "ref", "in", "if", "else", "match", "return", "as", "const", "static", "move",
    "box", "dyn",
];

/// Lint one file's source text under the given scope.
pub fn lint_file(path: &str, src: &str, scope: Scope) -> FileLint {
    let toks = strip_test_modules(lex(src));
    let mut raw: Vec<Finding> = Vec::new();

    // --- Waivers (and waiver-grammar findings) come from the comments. ---
    let mut waivers: Vec<(Waiver, BTreeSet<u32>)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let TokKind::LineComment(text) = &t.kind else {
            continue;
        };
        match parse_waiver(text) {
            Ok(None) => {}
            Ok(Some((rule, reason))) => {
                // A waiver covers its own line plus the next code line.
                let mut covered: BTreeSet<u32> = BTreeSet::new();
                covered.insert(t.line);
                if let Some(next) = toks[i + 1..]
                    .iter()
                    .find(|n| !n.kind.is_comment() && n.line > t.line)
                {
                    covered.insert(next.line);
                }
                waivers.push((
                    Waiver {
                        rule,
                        reason,
                        line: t.line,
                    },
                    covered,
                ));
            }
            Err(why) => raw.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "waiver",
                message: format!("malformed waiver: {why}"),
            }),
        }
    }

    // --- Token-window rules over code tokens only. ---
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.kind.is_comment()).collect();
    let ident = |i: usize| match code.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize| match code.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    };
    // `A :: B` at position i?
    let path_pair = |i: usize, a: &str, b: &str| {
        ident(i) == Some(a)
            && punct(i + 1) == Some(':')
            && punct(i + 2) == Some(':')
            && ident(i + 3) == Some(b)
    };

    for i in 0..code.len() {
        let line = code[i].line;
        let mut push_at = |line: u32, rule: &'static str, message: String| {
            raw.push(Finding {
                file: path.to_string(),
                line,
                rule,
                message,
            });
        };

        if scope.map_iter {
            if let Some(name @ ("HashMap" | "HashSet")) = ident(i) {
                push_at(
                    line,
                    "map-iter",
                    format!(
                        "{name} in an output-producing crate: iteration order is \
                         nondeterministic per process; use BTreeMap/BTreeSet"
                    ),
                );
            }
        }

        if scope.ambient {
            if path_pair(i, "SystemTime", "now") || path_pair(i, "Instant", "now") {
                push_at(
                    line,
                    "ambient-clock",
                    format!(
                        "{}::now() reads the ambient clock; thread timestamps through \
                         the simulated clock instead",
                        ident(i).unwrap_or_default()
                    ),
                );
            } else if let Some(name @ ("Instant" | "SystemTime")) = ident(i) {
                // Any other mention of the clock types (use statements,
                // struct fields, signatures) smuggles a clock handle into
                // a pipeline crate. `tamper-obs` is the one sanctioned
                // home for wall-clock reads; the `::now` form above is
                // already the ambient-clock rule's finding.
                push_at(
                    line,
                    "clock-containment",
                    format!(
                        "{name} in a pipeline crate; reach clocks only through \
                         tamper_obs (Stopwatch / ScopeMetrics timers)"
                    ),
                );
            }
            if let Some(name @ ("thread_rng" | "from_entropy" | "OsRng" | "getrandom")) = ident(i) {
                push_at(
                    line,
                    "ambient-rng",
                    format!("{name} draws ambient randomness; use a seeded generator"),
                );
            }
            if path_pair(i, "rand", "random") {
                push_at(
                    line,
                    "ambient-rng",
                    "rand::random draws ambient randomness; use a seeded generator".to_string(),
                );
            }
        }

        if scope.thread_containment {
            if ident(i) == Some("crossbeam") {
                push_at(
                    line,
                    "thread-containment",
                    "crossbeam outside capture::engine: the engine owns the only \
                     shard/merge thread topology; plug in through a FlowSource"
                        .to_string(),
                );
            }
            if path_pair(i, "thread", "spawn") || path_pair(i, "thread", "scope") {
                push_at(
                    line,
                    "thread-containment",
                    "thread spawning outside capture::engine: route parallel work \
                     through the unified engine instead of a bespoke pool"
                        .to_string(),
                );
            }
        }

        if scope.panic_index {
            if punct(i) == Some('.') {
                if let Some(name @ ("unwrap" | "expect")) = ident(i + 1) {
                    push_at(
                        code[i + 1].line,
                        "panic",
                        format!(
                            ".{name}() on the untrusted-input surface; return a typed \
                             WireError instead"
                        ),
                    );
                }
            }
            if let Some(name @ ("panic" | "unreachable" | "todo" | "unimplemented")) = ident(i) {
                if punct(i + 1) == Some('!') {
                    push_at(
                        line,
                        "panic",
                        format!(
                            "{name}! on the untrusted-input surface; malformed capture \
                             bytes must not abort the process"
                        ),
                    );
                }
            }
            if punct(i) == Some('[') && i > 0 {
                let indexes = match &code[i - 1].kind {
                    TokKind::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
                    TokKind::Punct(')') | TokKind::Punct(']') => true,
                    _ => false,
                };
                if indexes {
                    push_at(
                        line,
                        "index",
                        "direct slice indexing can panic on short input; use .get(…) or \
                         a bounds-checked Reader"
                            .to_string(),
                    );
                }
            }
        }
    }

    // --- Apply waivers. ---
    let mut used = vec![false; waivers.len()];
    let mut out = FileLint::default();
    for f in raw {
        let w = waivers
            .iter()
            .position(|(w, covered)| w.rule == f.rule && covered.contains(&f.line));
        match w {
            Some(idx) => {
                used[idx] = true;
                out.waived.push(f);
            }
            None => out.findings.push(f),
        }
    }
    for (idx, (w, _)) in waivers.iter().enumerate() {
        if !used[idx] {
            out.findings.push(Finding {
                file: path.to_string(),
                line: w.line,
                rule: "waiver",
                message: format!(
                    "unused waiver for `{}`: no matching finding on this or the next \
                     code line — delete it",
                    w.rule
                ),
            });
        }
    }
    out.findings.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIRE: &str = "crates/wire/src/example.rs";

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        lint_file(path, src, scope_for(path))
            .findings
            .iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn waiver_grammar_accepts_both_separators() {
        assert_eq!(
            parse_waiver(" tamperlint: allow(index) — checked above").unwrap(),
            Some(("index".into(), "checked above".into()))
        );
        assert_eq!(
            parse_waiver(" tamperlint: allow(panic) -- join propagates").unwrap(),
            Some(("panic".into(), "join propagates".into()))
        );
        assert_eq!(parse_waiver(" ordinary comment").unwrap(), None);
    }

    #[test]
    fn waiver_grammar_rejects_missing_reason_and_unknown_rule() {
        assert!(parse_waiver("tamperlint: allow(index)").is_err());
        assert!(parse_waiver("tamperlint: allow(index) —  ").is_err());
        assert!(parse_waiver("tamperlint: allow(no-such-rule) — x").is_err());
        assert!(parse_waiver("tamperlint: allow(index — x").is_err());
        assert!(parse_waiver("tamperlint: deny(index) — x").is_err());
    }

    #[test]
    fn waiver_suppresses_next_code_line_only() {
        let src = "
            fn f(b: &[u8]) -> u8 {
                // tamperlint: allow(index) — caller guarantees length
                b[0]
            }
            fn g(b: &[u8]) -> u8 { b[1] }
        ";
        let lint = lint_file(WIRE, src, scope_for(WIRE));
        assert_eq!(lint.waived.len(), 1);
        assert_eq!(lint.findings.len(), 1);
        assert_eq!(lint.findings[0].rule, "index");
        assert_eq!(lint.findings[0].line, 6);
    }

    #[test]
    fn unused_waiver_is_a_finding() {
        let src = "
            // tamperlint: allow(panic) — stale excuse
            fn f() {}
        ";
        let lint = lint_file(WIRE, src, scope_for(WIRE));
        assert_eq!(lint.findings.len(), 1);
        assert_eq!(lint.findings[0].rule, "waiver");
        assert!(lint.findings[0].message.contains("unused waiver"));
    }

    #[test]
    fn index_rule_ignores_patterns_types_and_macros() {
        let src = "
            fn f(c: &[u8]) -> u32 {
                if let &[a, b] = c { return u32::from(a) + u32::from(b); }
                let [x] = [0u8; 1];
                let v: Vec<u8> = vec![1, 2];
                u32::from(x) + v.len() as u32
            }
        ";
        assert!(rules_fired(WIRE, src).is_empty());
    }

    #[test]
    fn thread_containment_flags_pipeline_crates_but_not_the_engine() {
        let src = "fn f() { crossbeam::thread::scope(|s| { s.spawn(|_| {}); }); }";
        assert!(rules_fired("crates/worldgen/src/driver.rs", src).contains(&"thread-containment"));
        let std_src = "fn f() { std::thread::spawn(|| {}); }";
        assert!(rules_fired("crates/analysis/src/x.rs", std_src).contains(&"thread-containment"));
        // The engine is the one sanctioned home for the thread topology.
        assert!(!rules_fired("crates/capture/src/engine.rs", src).contains(&"thread-containment"));
        // Reading the core count is not spawning.
        let par = "fn f() { let _ = std::thread::available_parallelism(); }";
        assert!(!rules_fired("crates/worldgen/src/driver.rs", par).contains(&"thread-containment"));
    }

    #[test]
    fn scopes_are_path_sensitive() {
        let src = "fn f(b: &[u8]) -> u8 { b[0] }";
        assert!(!rules_fired(WIRE, src).is_empty());
        // Same code outside the untrusted-input surface: no finding.
        assert!(rules_fired("crates/analysis/src/x.rs", src).is_empty());
    }
}
