//! A lightweight Rust lexer: just enough tokenisation to drive source-level
//! lints without rustc. It understands line/block comments (nested), string
//! and raw-string literals, byte strings, char literals vs lifetimes, and
//! numeric literals, and records a 1-based line number per token. It does
//! NOT build an AST — rules pattern-match short token windows instead.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Token payload.
    pub kind: TokKind,
}

/// Token payload kinds. Only the distinctions the lints need are kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`[`, `.`, `!`, `:`, …).
    Punct(char),
    /// String literal with its decoded contents.
    Str(String),
    /// Any other literal (number, char, byte, lifetime), raw source text.
    Lit(String),
    /// `// …` comment, with the text after the slashes (doc comments too).
    LineComment(String),
    /// `/* … */` comment (possibly nested).
    BlockComment,
}

impl TokKind {
    /// True for comment tokens.
    pub fn is_comment(&self) -> bool {
        matches!(self, TokKind::LineComment(_) | TokKind::BlockComment)
    }
}

/// Lex a whole source file into tokens.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        let mut out = Vec::new();
        while let Some(&b) = self.src.get(self.pos) {
            let line = self.line;
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    let text = self.line_comment();
                    out.push(Tok {
                        line,
                        kind: TokKind::LineComment(text),
                    });
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    out.push(Tok {
                        line,
                        kind: TokKind::BlockComment,
                    });
                }
                b'"' => {
                    let s = self.string();
                    out.push(Tok {
                        line,
                        kind: TokKind::Str(s),
                    });
                }
                b'\'' => {
                    let start = self.pos;
                    self.char_or_lifetime();
                    out.push(Tok {
                        line,
                        kind: TokKind::Lit(self.slice(start)),
                    });
                }
                c if c.is_ascii_digit() => {
                    let start = self.pos;
                    self.number();
                    out.push(Tok {
                        line,
                        kind: TokKind::Lit(self.slice(start)),
                    });
                }
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                    let ident = self.ident();
                    // Raw / byte string prefixes attach to the literal.
                    if matches!(ident.as_str(), "r" | "br") && self.at_raw_string() {
                        let s = self.raw_string();
                        out.push(Tok {
                            line,
                            kind: TokKind::Str(s),
                        });
                    } else if matches!(ident.as_str(), "b") && self.peek(0) == Some(b'"') {
                        let s = self.string();
                        out.push(Tok {
                            line,
                            kind: TokKind::Str(s),
                        });
                    } else if matches!(ident.as_str(), "b") && self.peek(0) == Some(b'\'') {
                        let start = self.pos;
                        self.char_or_lifetime();
                        out.push(Tok {
                            line,
                            kind: TokKind::Lit(self.slice(start)),
                        });
                    } else {
                        out.push(Tok {
                            line,
                            kind: TokKind::Ident(ident),
                        });
                    }
                }
                c => {
                    self.pos += 1;
                    out.push(Tok {
                        line,
                        kind: TokKind::Punct(c as char),
                    });
                }
            }
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn slice(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn line_comment(&mut self) -> String {
        let start = self.pos + 2;
        let mut end = start;
        while end < self.src.len() && self.src[end] != b'\n' {
            end += 1;
        }
        self.pos = end;
        String::from_utf8_lossy(&self.src[start..end]).into_owned()
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(b'\n'), _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => break,
            }
        }
    }

    fn string(&mut self) -> String {
        self.pos += 1; // opening quote
        let mut out = String::new();
        while let Some(b) = self.peek(0) {
            match b {
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek(0) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'0') => out.push('\0'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'"') => out.push('"'),
                        Some(b'\'') => out.push('\''),
                        Some(b'\n') => {
                            // Line-continuation escape: swallow the newline.
                            self.line += 1;
                        }
                        Some(other) => {
                            // \u{…}, \xNN and friends: keep the raw text; the
                            // taxonomy sources use literal UTF-8, not escapes.
                            out.push('\\');
                            out.push(other as char);
                        }
                        None => break,
                    }
                    self.pos += 1;
                }
                b'\n' => {
                    self.line += 1;
                    out.push('\n');
                    self.pos += 1;
                }
                _ => {
                    let start = self.pos;
                    // Copy one UTF-8 scalar (1–4 bytes).
                    self.pos += 1;
                    while self.peek(0).is_some_and(|c| (0x80..0xC0).contains(&c)) {
                        self.pos += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(&self.src[start..self.pos]));
                }
            }
        }
        out
    }

    fn at_raw_string(&self) -> bool {
        let mut i = 0;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    fn raw_string(&mut self) -> String {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        let start = self.pos;
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    let mut ok = true;
                    for j in 0..hashes {
                        if self.peek(1 + j) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        let body = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                        self.pos += 1 + hashes;
                        return body;
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn char_or_lifetime(&mut self) {
        self.pos += 1; // opening quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: skip escape, then to closing quote.
                self.pos += 2;
                while let Some(b) = self.peek(0) {
                    self.pos += 1;
                    if b == b'\'' {
                        break;
                    }
                }
            }
            Some(_) if self.peek(1) == Some(b'\'') && self.peek(0) != Some(b'\'') => {
                // 'x'
                self.pos += 2;
            }
            _ => {
                // Lifetime ('a, 'static) or multibyte char literal: consume
                // the identifier-ish run and a closing quote if present.
                while self
                    .peek(0)
                    .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
                {
                    self.pos += 1;
                }
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) {
        while let Some(b) = self.peek(0) {
            let in_number = b == b'_'
                || b.is_ascii_alphanumeric()
                || (b == b'.' && self.peek(1).is_some_and(|c| c.is_ascii_digit()));
            if !in_number {
                break;
            }
            self.pos += 1;
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

/// Drop token ranges belonging to `#[cfg(test)] mod … { … }` blocks so the
/// lints only see shipping code. Doc comments are comments and never reach
/// the rules either, so doctests are implicitly exempt.
pub fn strip_test_modules(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(&toks, i) {
            // Skip to the `{` that opens the annotated item, then past its
            // matching `}`. If no brace follows (e.g. `mod x;`), skip the
            // attribute only.
            let mut j = i;
            let mut found_brace = None;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('{') => {
                        found_brace = Some(j);
                        break;
                    }
                    TokKind::Punct(';') => break,
                    _ => j += 1,
                }
            }
            if let Some(open) = found_brace {
                let mut depth = 0usize;
                let mut k = open;
                while k < toks.len() {
                    match &toks[k].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                i = k + 1;
            } else {
                i = j + 1;
            }
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Does a `#[cfg(test)]` attribute start at token `at`?
fn is_cfg_test_attr(toks: &[Tok], at: usize) -> bool {
    let want: [&dyn Fn(&TokKind) -> bool; 7] = [
        &|k| matches!(k, TokKind::Punct('#')),
        &|k| matches!(k, TokKind::Punct('[')),
        &|k| matches!(k, TokKind::Ident(s) if s == "cfg"),
        &|k| matches!(k, TokKind::Punct('(')),
        &|k| matches!(k, TokKind::Ident(s) if s == "test"),
        &|k| matches!(k, TokKind::Punct(')')),
        &|k| matches!(k, TokKind::Punct(']')),
    ];
    let mut j = at;
    for check in want {
        // Comments may be interleaved anywhere.
        while toks.get(j).is_some_and(|t| t.kind.is_comment()) {
            j += 1;
        }
        match toks.get(j) {
            Some(t) if check(&t.kind) => j += 1,
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" body"#;
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<(String, u32)> = toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some((s, t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 3)]
        );
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // The lifetime name must not leak as a separate identifier.
        assert_eq!(ids.iter().filter(|s| *s == "a").count(), 0);
    }

    #[test]
    fn string_contents_are_decoded() {
        let toks = lex(r#"let l = "⟨SYN → ∅⟩";"#);
        let strs: Vec<String> = toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Str(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["⟨SYN → ∅⟩".to_string()]);
    }

    #[test]
    fn cfg_test_modules_are_stripped() {
        let src = "
            fn real() { a.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { b.unwrap(); }
            }
            fn after() { c.unwrap(); }
        ";
        let toks = strip_test_modules(lex(src));
        let ids: Vec<String> = toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&"real".to_string()));
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"tests".to_string()));
        assert!(!ids.contains(&"b".to_string()));
    }
}
