//! The workspace symbol table: every parsed function, indexed by name,
//! with its crate and file stem retained for the call graph's qualified-
//! path resolution (`pcap::read_all` resolves via the file stem,
//! `Packet::parse` via the impl owner).

use crate::ast::{FnDef, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// One function in the workspace.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// Crate name (`crates/<name>/…` → `name`; top-level `src/` → `bin`).
    pub krate: String,
    /// File stem (`crates/capture/src/pcap.rs` → `pcap`), for module-
    /// qualified call resolution.
    pub stem: String,
    /// The parsed definition.
    pub def: FnDef,
}

/// All functions across the analyzed file set.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Flat function list; indices are the ids the call graph uses.
    pub fns: Vec<FnSym>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_file: BTreeMap<String, Vec<usize>>,
}

/// Crate name for a repo-relative path.
pub fn krate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("bin")
}

/// File stem for a repo-relative path.
pub fn file_stem(path: &str) -> &str {
    let name = path.rsplit('/').next().unwrap_or(path);
    name.strip_suffix(".rs").unwrap_or(name)
}

impl SymbolTable {
    /// Build the table from parsed files, in the given (sorted) order.
    pub fn build(files: &[(String, ParsedFile)]) -> SymbolTable {
        let mut tab = SymbolTable::default();
        for (path, parsed) in files {
            let mut ids = Vec::with_capacity(parsed.fns.len());
            for def in &parsed.fns {
                let id = tab.fns.len();
                ids.push(id);
                tab.by_name.entry(def.name.clone()).or_default().push(id);
                tab.fns.push(FnSym {
                    file: path.clone(),
                    krate: krate_of(path).to_string(),
                    stem: file_stem(path).to_string(),
                    def: def.clone(),
                });
            }
            tab.by_file.insert(path.clone(), ids);
        }
        tab
    }

    /// Ids of every function with this bare name.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Ids of this file's functions, in source order (parallel to the
    /// file's `ParsedFile::fns`).
    pub fn file_fns(&self, file: &str) -> &[usize] {
        self.by_file.get(file).map_or(&[], Vec::as_slice)
    }

    /// Names of functions whose return type carries a `WireError`: an
    /// explicit `WireError` in the return text, or any `Result` returned
    /// from `crates/wire/src/` (the crate-local alias
    /// `wire::Result<T> = Result<T, WireError>`).
    pub fn wire_error_fns(&self) -> BTreeSet<String> {
        self.fns
            .iter()
            .filter(|f| {
                f.def.ret.contains("WireError")
                    || (f.file.starts_with("crates/wire/src/") && f.def.ret.starts_with("Result"))
            })
            .map(|f| f.def.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::lexer::{lex, strip_test_modules};

    fn parsed(src: &str) -> ParsedFile {
        let code: Vec<_> = strip_test_modules(lex(src))
            .into_iter()
            .filter(|t| !t.kind.is_comment())
            .collect();
        ast::parse(&code)
    }

    #[test]
    fn crate_and_stem_extraction() {
        assert_eq!(krate_of("crates/capture/src/pcap.rs"), "capture");
        assert_eq!(krate_of("src/main.rs"), "bin");
        assert_eq!(file_stem("crates/capture/src/pcap.rs"), "pcap");
    }

    #[test]
    fn wire_error_set_uses_alias_and_explicit_forms() {
        let files = vec![
            (
                "crates/wire/src/tls.rs".to_string(),
                parsed("pub fn parse_sni(p: &[u8]) -> Result<Option<String>> { todo() }"),
            ),
            (
                "crates/core/src/x.rs".to_string(),
                parsed(
                    "pub fn explicit() -> Result<u8, WireError> { todo() }\n\
                     pub fn plain() -> Result<u8, String> { todo() }",
                ),
            ),
        ];
        let tab = SymbolTable::build(&files);
        let w = tab.wire_error_fns();
        assert!(w.contains("parse_sni"));
        assert!(w.contains("explicit"));
        assert!(!w.contains("plain"));
    }
}
