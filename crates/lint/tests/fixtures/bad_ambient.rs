// Fixture: ambient clock and randomness in a pipeline crate (not compiled).
use std::time::{Instant, SystemTime};

fn stamp() -> u64 {
    let _t = Instant::now();
    let _w = SystemTime::now();
    let _r = rand::thread_rng();
    let _x: u8 = rand::random();
    0
}

#[cfg(test)]
mod tests {
    fn timing_in_tests_is_fine() {
        let _t = std::time::Instant::now();
    }
}
