//! Transitive hot-path fixture: the hot-root trait impl never allocates
//! itself but reaches an allocation two hops away (relay → sink).
pub struct PcapShard;

impl SourceShard for PcapShard {
    fn absorb(&mut self, frame: &[u8]) -> usize {
        relay_stash(frame)
    }
}
