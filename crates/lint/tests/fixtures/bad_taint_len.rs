//! untrusted-len-alloc fixture: wire-read lengths sizing allocations.
//! `parse_record` never clamps; `parse_clamped` and `parse_guarded` do.
pub fn parse_record(r: &mut Reader) -> Vec<u8> {
    let n = r.u16() as usize;
    let body = Vec::with_capacity(n);
    let pad = vec![0u8; n];
    drop(pad);
    body
}

pub fn parse_clamped(r: &mut Reader) -> Vec<u8> {
    let n = r.u16() as usize;
    Vec::with_capacity(n.min(1500))
}

pub fn parse_guarded(r: &mut Reader) -> Vec<u8> {
    let n = r.u16() as usize;
    if n > 1500 {
        return Vec::new();
    }
    Vec::with_capacity(n)
}
