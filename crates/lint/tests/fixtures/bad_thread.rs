// Fixture: bespoke thread topology outside capture::engine.
use crossbeam::channel::bounded;

fn shard_by_hand() {
    std::thread::spawn(|| {});
    std::thread::scope(|_s| {});
    crossbeam::thread::scope(|_s| {}).ok();
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_in_tests_are_fine() {
        std::thread::spawn(|| {}).join().ok();
    }
}
