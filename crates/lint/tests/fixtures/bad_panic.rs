// Fixture: panicking constructs on the untrusted-input surface (not compiled).
fn parse(data: &[u8]) -> u8 {
    let first = data.first().unwrap();
    let second = data.get(1).expect("second byte");
    if *first == 0 {
        panic!("zero");
    }
    match second {
        0 => unreachable!(),
        n => *n,
    }
}
