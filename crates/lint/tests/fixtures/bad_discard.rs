//! Discarded-wire-error fixture: `let _ =` and `.ok()` must not swallow
//! a Result<_, WireError> from a workspace parser.
pub struct WireError;
pub fn decode_header(b: &[u8]) -> Result<u8, WireError> {
    b.first().copied().ok_or(WireError)
}
pub fn sloppy(b: &[u8]) {
    let _ = decode_header(b);
    let n = decode_header(b).ok();
    drop(n);
}
pub fn careful(b: &[u8]) -> Result<u8, WireError> {
    decode_header(b)
}
