// Fixture: direct slice indexing on the untrusted-input surface (not compiled).
fn parse(data: &[u8]) -> u8 {
    let head = data[0];
    let window = &data[4..8];
    head ^ window.iter().sum::<u8>()
}
