//! Signature-match fixture: wildcard arms and catch-all bindings in a
//! match over Signature must fail the gate.
pub enum Signature {
    SynNone,
    SynRst,
    AckNone,
}
pub fn class(sig: Signature) -> u8 {
    match sig {
        Signature::SynNone => 0,
        Signature::SynRst => 1,
        _ => 2,
    }
}
pub fn merge(sig: Signature) -> Signature {
    match sig {
        Signature::SynRst => Signature::SynNone,
        other => other,
    }
}
