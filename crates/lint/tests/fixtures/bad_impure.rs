// Fixture: a PURE_ROOTS report root that transitively performs I/O
// through a helper (not compiled).

pub fn full_report(rows: &[u64]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&render_row(*r));
    }
    out
}

fn render_row(r: u64) -> String {
    println!("row {r}");
    format!("{r}")
}
