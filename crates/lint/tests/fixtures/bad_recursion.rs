// Fixture: a mutually recursive SCC (`tick` ↔ `tock`) that reaches an
// ambient clock; exercises fixpoint convergence on cycles (not compiled).
use std::time::Instant;

pub fn poll_loop() {
    tick(3);
}

fn tick(n: u32) {
    if n > 0 {
        tock(n - 1);
    }
}

fn tock(n: u32) {
    tick(n);
    let _ = stamp();
}

fn stamp() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}
