// Fixture: waiver grammar coverage (not compiled).
fn covered(data: &[u8]) -> u8 {
    // tamperlint: allow(index) — length checked by the caller
    data[0]
}

// tamperlint: allow(panic) — stale waiver with nothing to excuse
fn unused() {}

fn typo(data: &[u8]) -> u8 {
    // tamperlint: allow(indexing) — misspelled rule name
    data[1]
}
