// Fixture: HashMap/HashSet in an output-producing crate (not compiled).
use std::collections::HashMap;

fn aggregate() {
    let counts: HashMap<u32, u64> = HashMap::new();
    let mut seen = std::collections::HashSet::new();
    seen.insert(counts.len());
}
