// Fixture: long-lived state where one collection only ever grows and a
// second one has eviction evidence (not compiled).
use std::collections::BTreeMap;

pub struct SeenLog {
    seen: Vec<u64>,
    counts: BTreeMap<u64, u64>,
}

impl SeenLog {
    pub fn process(&mut self, v: u64) {
        self.seen.push(v);
        *self.counts.entry(v).or_insert(0) += 1;
    }

    pub fn reset(&mut self) {
        self.counts.clear();
    }
}
