//! Transitive-containment fixture: the entry never names a clock but
//! reaches one two hops away (relay → sink).
pub fn summarize(n: u64) -> u64 {
    transitive_relay::stamp_all(n)
}
