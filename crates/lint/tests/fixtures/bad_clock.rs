// Fixture: clock types smuggled into a pipeline crate (not compiled).
use std::time::Instant;

struct Stage {
    started: Option<Instant>,
}

fn observe(s: &Stage) -> u64 {
    let t0 = Instant::now();
    let _ = &s.started;
    t0.elapsed().as_nanos() as u64
}
