//! Transitive-containment fixture, middle hop: forwards to the sink
//! without any ambient call of its own.
pub fn stamp_all(n: u64) -> u64 {
    transitive_sink::now_ns() + n
}
