//! Final hop of the transitive hot-path fixture: the allocation lives
//! here, two calls from the hot root.
pub fn sink_grow(frame: &[u8]) -> usize {
    let copy = frame.to_vec();
    copy.len()
}
