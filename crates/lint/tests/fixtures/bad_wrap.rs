//! Wraparound fixture: raw arithmetic on sequence-space names must use
//! wrapping_*/checked_* so u32 seq/ack math survives wraparound.
pub fn advance(seq: u32, len: u32) -> u32 {
    let next_seq = seq + len;
    let delta = next_seq - 1;
    let safe = seq.wrapping_add(len);
    let count = delta * 2;
    let mut ack = safe;
    ack += count;
    delta + count
}
