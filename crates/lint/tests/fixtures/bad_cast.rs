//! cast-truncation fixture: raw `as` narrowing on sequence-space and
//! length-named values; clamped variants stay clean.
pub fn emit(seq: u32, payload_len: usize) -> (u16, u8) {
    let s = seq as u16;
    let l = payload_len as u8;
    (s, l)
}

pub fn emit_clamped(payload_len: usize) -> u16 {
    payload_len.min(1500) as u16
}

pub fn emit_checked(payload_len: usize) -> u16 {
    u16::try_from(payload_len).unwrap_or(u16::MAX)
}
