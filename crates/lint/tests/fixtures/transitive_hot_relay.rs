//! Middle hop of the transitive hot-path fixture: forwards the frame
//! without allocating.
pub fn relay_stash(frame: &[u8]) -> usize {
    sink_grow(frame)
}
