//! hot-path-alloc fixture: a declared hot root allocating directly; a
//! cold sibling allocating freely stays clean.
pub struct FlowMachine;

impl FlowMachine {
    pub fn process(&mut self) -> Vec<u8> {
        let buf = Vec::new();
        let tag = format!("x");
        drop(tag);
        buf
    }

    pub fn cold_report(&self) -> Vec<u8> {
        Vec::new()
    }
}
