//! Transitive-containment fixture, the sink: a direct ambient clock.
use std::time::Instant;
pub fn now_ns() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}
