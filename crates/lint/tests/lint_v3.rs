//! v3 gate tests: the dataflow rule families (`hot-path-alloc`,
//! `untrusted-len-alloc`, `cast-truncation`) — fire/waive behaviour on
//! fixtures, transitive reach from a hot root two hops out, fingerprint
//! stability under line shifts, and determinism of the full pipeline
//! with the new families active.

use tamper_lint::{analyze_sources, lint_source, Finding};

/// Virtual in-scope paths for the fixtures.
const CORE: &str = "crates/core/src/fixture.rs";
const WIRE: &str = "crates/wire/src/fixture.rs";

fn fired(findings: &[Finding]) -> Vec<(&str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

// --- hot-path-alloc ---

#[test]
fn hot_alloc_fires_in_a_root_and_spares_cold_siblings() {
    let lint = lint_source(CORE, include_str!("fixtures/bad_alloc.rs"));
    assert_eq!(
        fired(&lint.findings),
        vec![
            ("hot-path-alloc", 7), // Vec::new in process
            ("hot-path-alloc", 8), // format! in process
        ],
        "{:?}",
        lint.findings
    );
    assert!(
        lint.findings[0]
            .message
            .contains("in hot root FlowMachine::process"),
        "{}",
        lint.findings[0].message
    );
    // `cold_report` allocates too (line 14) but is not hot-reachable.
}

#[test]
fn hot_alloc_reaches_a_sink_two_hops_from_the_root() {
    const ENTRY: &str = "crates/capture/src/transitive_hot_entry.rs";
    const RELAY: &str = "crates/capture/src/transitive_hot_relay.rs";
    const SINK: &str = "crates/capture/src/transitive_hot_sink.rs";
    let analysis = analyze_sources(&[
        (ENTRY, include_str!("fixtures/transitive_hot_entry.rs")),
        (RELAY, include_str!("fixtures/transitive_hot_relay.rs")),
        (SINK, include_str!("fixtures/transitive_hot_sink.rs")),
    ]);
    let got: Vec<(&str, &str, u32)> = analysis
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.rule, f.line))
        .collect();
    assert_eq!(
        got,
        vec![(SINK, "hot-path-alloc", 4)],
        "{:?}",
        analysis.findings
    );
    let msg = &analysis.findings[0].message;
    assert!(msg.contains(".to_vec()"), "{msg}");
    assert!(
        msg.contains("reached from PcapShard::absorb via relay_stash() → sink_grow()"),
        "{msg}"
    );
}

#[test]
fn hot_alloc_fires_in_the_batch_classifier_root() {
    // The columnar batch walk is a registered hot root: a fresh
    // allocation inside classify_batch must be flagged like one inside
    // FlowMachine::process.
    let src = "pub struct BatchClassifier;\n\
        impl BatchClassifier {\n    \
        pub fn classify_batch(&mut self) -> Vec<u8> {\n        \
        Vec::new()\n    \
        }\n}\n";
    let lint = lint_source(CORE, src);
    assert_eq!(
        fired(&lint.findings),
        vec![("hot-path-alloc", 4)],
        "{:?}",
        lint.findings
    );
    assert!(
        lint.findings[0]
            .message
            .contains("in hot root BatchClassifier::classify_batch"),
        "{}",
        lint.findings[0].message
    );
}

#[test]
fn hot_alloc_waiver_suppresses_the_finding() {
    let src = "pub struct FlowMachine;\n\
        impl FlowMachine {\n    \
        pub fn process(&mut self) -> Vec<u8> {\n        \
        // tamperlint: allow(hot-path-alloc) — fixture: scratch grown once at machine birth\n        \
        Vec::new()\n    \
        }\n}\n";
    let lint = lint_source(CORE, src);
    assert!(lint.findings.is_empty(), "{:?}", lint.findings);
    assert_eq!(fired(&lint.waived), vec![("hot-path-alloc", 5)]);
}

// --- untrusted-len-alloc ---

#[test]
fn taint_fires_on_unclamped_wire_lengths_only() {
    let lint = lint_source(WIRE, include_str!("fixtures/bad_taint_len.rs"));
    assert_eq!(
        fired(&lint.findings),
        vec![
            ("untrusted-len-alloc", 5), // Vec::with_capacity(n)
            ("untrusted-len-alloc", 6), // vec![0u8; n]
        ],
        "{:?}",
        lint.findings
    );
    assert!(
        lint.findings[0].message.contains("wire-derived length `n`"),
        "{}",
        lint.findings[0].message
    );
    // `parse_clamped` (.min) and `parse_guarded` (bounds check) are clean.
}

#[test]
fn taint_waiver_suppresses_the_finding() {
    let src = "pub fn parse(r: &mut Reader) -> Vec<u8> {\n    \
        let n = r.u16() as usize;\n    \
        // tamperlint: allow(untrusted-len-alloc) — fixture: n bounded by record framing upstream\n    \
        Vec::with_capacity(n)\n}\n";
    let lint = lint_source(WIRE, src);
    assert!(lint.findings.is_empty(), "{:?}", lint.findings);
    assert_eq!(fired(&lint.waived), vec![("untrusted-len-alloc", 4)]);
}

// --- cast-truncation ---

#[test]
fn cast_fires_on_raw_narrowing_and_respects_clamps() {
    let lint = lint_source(WIRE, include_str!("fixtures/bad_cast.rs"));
    assert_eq!(
        fired(&lint.findings),
        vec![
            ("cast-truncation", 4), // seq as u16
            ("cast-truncation", 5), // payload_len as u8
        ],
        "{:?}",
        lint.findings
    );
    assert!(
        lint.findings[0].message.contains("`seq as u16`"),
        "{}",
        lint.findings[0].message
    );
    // `emit_clamped` (.min before cast) and `emit_checked` (try_from) clean.
}

#[test]
fn cast_waiver_suppresses_the_finding() {
    let src = "pub fn emit(payload_len: usize) -> u16 {\n    \
        // tamperlint: allow(cast-truncation) — fixture: callers guarantee MTU-bounded lengths\n    \
        payload_len as u16\n}\n";
    let lint = lint_source(WIRE, src);
    assert!(lint.findings.is_empty(), "{:?}", lint.findings);
    assert_eq!(fired(&lint.waived), vec![("cast-truncation", 3)]);
}

// --- fingerprint stability ---

#[test]
fn dataflow_fingerprints_survive_line_shifts() {
    for fixture in [
        include_str!("fixtures/bad_alloc.rs"),
        include_str!("fixtures/bad_taint_len.rs"),
        include_str!("fixtures/bad_cast.rs"),
    ] {
        let path = if fixture.contains("FlowMachine") {
            CORE
        } else {
            WIRE
        };
        let shifted = format!("// padding line one\n// padding line two\n\n{fixture}");
        let a = analyze_sources(&[(path, fixture)]);
        let b = analyze_sources(&[(path, shifted.as_str())]);
        assert!(!a.findings.is_empty());
        let fa: Vec<&str> = a.findings.iter().map(|f| f.fingerprint.as_str()).collect();
        let fb: Vec<&str> = b.findings.iter().map(|f| f.fingerprint.as_str()).collect();
        assert_eq!(fa, fb, "fingerprints churned on a pure line shift");
        let la: Vec<u32> = a.findings.iter().map(|f| f.line).collect();
        let lb: Vec<u32> = b.findings.iter().map(|f| f.line).collect();
        assert_ne!(la, lb, "the lines themselves must have moved");
    }
}

// --- pipeline determinism with the new families active ---

#[test]
fn dataflow_stages_report_timings_and_stay_deterministic() {
    let files = [
        (CORE, include_str!("fixtures/bad_alloc.rs")),
        (WIRE, include_str!("fixtures/bad_cast.rs")),
    ];
    let a = analyze_sources(&files);
    let b = analyze_sources(&files);
    let fp = |x: &tamper_lint::Analysis| -> Vec<String> {
        x.findings.iter().map(|f| f.fingerprint.clone()).collect()
    };
    assert_eq!(fp(&a), fp(&b), "dataflow pipeline is not deterministic");
    let stages: Vec<&str> = a.rule_timings.iter().map(|(s, _)| *s).collect();
    for want in [
        "dataflow-build",
        "untrusted-len-alloc",
        "cast-truncation",
        "hot-path-alloc",
    ] {
        assert!(stages.contains(&want), "missing stage {want}: {stages:?}");
    }
}

#[test]
fn the_three_dataflow_families_are_registered_rules() {
    for rule in ["hot-path-alloc", "untrusted-len-alloc", "cast-truncation"] {
        assert!(
            tamper_lint::rules::RULES.contains(&rule),
            "{rule} missing from RULES"
        );
    }
}
