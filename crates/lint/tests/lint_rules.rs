//! Fixture tests: every rule family must fire on known-bad code with the
//! right rule, file, and line — and the real repo must pass the whole gate.
//! If a lint were deleted, its fixture test here fails.

use tamper_lint::{lint_source, taxonomy, Finding};

/// Virtual in-scope paths for the fixtures.
const WIRE: &str = "crates/wire/src/fixture.rs";
const ANALYSIS: &str = "crates/analysis/src/fixture.rs";
const NETSIM: &str = "crates/netsim/src/fixture.rs";

fn fired(findings: &[Finding]) -> Vec<(&str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn map_iter_fires_on_hashmap_and_hashset() {
    let lint = lint_source(ANALYSIS, include_str!("fixtures/bad_map_iter.rs"));
    assert_eq!(
        fired(&lint.findings),
        vec![
            ("map-iter", 2), // use …::HashMap
            ("map-iter", 5), // HashMap type annotation
            ("map-iter", 5), // HashMap::new()
            ("map-iter", 6), // HashSet::new()
        ]
    );
    assert!(lint.findings.iter().all(|f| f.file == ANALYSIS));
    assert!(lint.findings[0].message.contains("BTreeMap"));
}

#[test]
fn ambient_rules_fire_outside_cfg_test() {
    let lint = lint_source(NETSIM, include_str!("fixtures/bad_ambient.rs"));
    assert_eq!(
        fired(&lint.findings),
        vec![
            ("clock-containment", 2), // use …::Instant
            ("clock-containment", 2), // use …::SystemTime
            ("ambient-clock", 5),     // Instant::now()
            ("ambient-clock", 6),     // SystemTime::now()
            ("ambient-rng", 7),       // thread_rng()
            ("ambient-rng", 8),       // rand::random()
        ]
    );
    // The same clock call inside `#[cfg(test)] mod tests` did not fire.
}

#[test]
fn clock_containment_fires_on_smuggled_clock_types_but_not_on_now() {
    let lint = lint_source(NETSIM, include_str!("fixtures/bad_clock.rs"));
    assert_eq!(
        fired(&lint.findings),
        vec![
            ("clock-containment", 2), // use …::Instant
            ("clock-containment", 5), // Option<Instant> struct field
            ("ambient-clock", 9),     // Instant::now() — the now-form is
                                      // ambient-clock's finding alone
        ]
    );
    assert!(lint.findings[0].message.contains("tamper_obs"));

    // tamper-obs itself is the sanctioned home: same source, no findings.
    let obs = lint_source(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/bad_clock.rs"),
    );
    assert!(obs.findings.is_empty(), "{:?}", obs.findings);
}

#[test]
fn panic_rule_fires_on_each_construct() {
    let lint = lint_source(WIRE, include_str!("fixtures/bad_panic.rs"));
    assert_eq!(
        fired(&lint.findings),
        vec![
            ("panic", 3), // .unwrap()
            ("panic", 4), // .expect(…)
            ("panic", 6), // panic!
            ("panic", 9), // unreachable!
        ]
    );
}

#[test]
fn index_rule_fires_on_direct_indexing() {
    let lint = lint_source(WIRE, include_str!("fixtures/bad_index.rs"));
    assert_eq!(fired(&lint.findings), vec![("index", 3), ("index", 4)]);
}

#[test]
fn thread_containment_fires_everywhere_but_the_engine() {
    let lint = lint_source(ANALYSIS, include_str!("fixtures/bad_thread.rs"));
    assert_eq!(
        fired(&lint.findings),
        vec![
            ("thread-containment", 2), // use crossbeam::…
            ("thread-containment", 5), // std::thread::spawn
            ("thread-containment", 6), // std::thread::scope
            ("thread-containment", 7), // crossbeam ident…
            ("thread-containment", 7), // …and its thread::scope
        ]
    );
    assert!(lint.findings[0].message.contains("FlowSource"));
    // The spawn inside `#[cfg(test)] mod tests` did not fire.

    // capture::engine is the one sanctioned home for the thread topology.
    let engine = lint_source(
        "crates/capture/src/engine.rs",
        include_str!("fixtures/bad_thread.rs"),
    );
    assert!(
        engine
            .findings
            .iter()
            .all(|f| f.rule != "thread-containment"),
        "{:?}",
        engine.findings
    );
}

#[test]
fn panicky_code_is_clean_outside_the_untrusted_surface() {
    // The same bad code linted under an out-of-scope path: no findings.
    let lint = lint_source(
        "crates/worldgen/src/fixture.rs",
        include_str!("fixtures/bad_panic.rs"),
    );
    assert!(lint.findings.is_empty(), "{:?}", lint.findings);
}

#[test]
fn waiver_fixture_covers_use_misuse_and_typos() {
    let lint = lint_source(WIRE, include_str!("fixtures/waivers.rs"));
    // The correctly-waived data[0] is suppressed…
    assert_eq!(fired(&lint.waived), vec![("index", 4)]);
    // …while the stale waiver, the misspelled rule, and the line the typo
    // failed to cover all surface.
    assert_eq!(
        fired(&lint.findings),
        vec![("waiver", 7), ("waiver", 11), ("index", 12)]
    );
    assert!(lint.findings[0].message.contains("unused waiver"));
    assert!(lint.findings[1].message.contains("unknown rule"));
}

const GOLDEN_OK: &str = "\
{\"verdict\":\"tampered\",\"signature\":\"⟨SYN → ∅⟩\",\"stage\":\"Post-SYN\"}\n\
{\"verdict\":\"not_tampered\",\"signature\":null,\"stage\":null}\n";

/// A miniature signature.rs with seeded drift: ALL too short and missing a
/// variant, a duplicated label, and a wildcard description arm.
const SIG_DRIFT: &str = r#"
pub enum Stage { PostSyn, PostAck }
impl Stage {
    pub fn label(self) -> &'static str {
        match self {
            Stage::PostSyn => "Post-SYN",
            Stage::PostAck => "Post-ACK",
        }
    }
}
pub enum Signature { SynNone, SynRst, AckNone }
impl Signature {
    pub const ALL: [Signature; 2] = [Signature::SynNone, Signature::SynRst];
    pub fn label(self) -> &'static str {
        use Signature::*;
        match self {
            SynNone => "⟨SYN → ∅⟩",
            SynRst => "⟨SYN → ∅⟩",
            AckNone => "⟨SYN; ACK → ∅⟩",
        }
    }
    pub fn stage(self) -> Stage {
        use Signature::*;
        match self {
            SynNone | SynRst => Stage::PostSyn,
            AckNone => Stage::PostAck,
        }
    }
    pub fn description(self) -> &'static str {
        match self {
            _ => "drifted",
        }
    }
    pub fn prior_work(self) -> &'static str {
        use Signature::*;
        match self {
            SynNone => "—",
            SynRst => "—",
            AckNone => "—",
        }
    }
}
"#;

#[test]
fn taxonomy_checker_catches_seeded_drift() {
    let golden = "{\"signature\":\"⟨SYN → ∅⟩\",\"stage\":\"Post-SYN\"}\n\
        {\"signature\":\"⟨SYN; ACK → ∅⟩\",\"stage\":\"Post-ACK\"}\n";
    let findings = taxonomy::check_sources(SIG_DRIFT, golden, "a taxonomy of 3 signatures");
    let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("declares length 2")),
        "{msgs:?}"
    );
    assert!(msgs
        .iter()
        .any(|m| m.contains("missing from Signature::ALL")));
    assert!(msgs.iter().any(|m| m.contains("duplicate flag-sequence")));
    assert!(msgs.iter().any(|m| m.contains("wildcard")));
    // SynRst's label is exercised (shared), but its duplicate already fired;
    // the un-exercised check must not false-positive on the shared label.
    assert!(findings.iter().all(|f| f.rule == "taxonomy"));
}

#[test]
fn taxonomy_checker_catches_golden_drift() {
    let sig = SIG_DRIFT.replace(r#"SynRst => "⟨SYN → ∅⟩","#, r#"SynRst => "⟨SYN → RST⟩","#);
    let golden = "{\"signature\":\"⟨SYN → RST⟩\",\"stage\":\"Post-ACK\"}\n\
        {\"signature\":\"⟨NO SUCH⟩\",\"stage\":\"Post-SYN\"}\n";
    let findings = taxonomy::check_sources(&sig, golden, "a taxonomy of 3 signatures");
    let msgs: Vec<String> = findings.iter().map(|f| f.message.clone()).collect();
    // Wrong stage for a known label.
    assert!(
        msgs.iter()
            .any(|m| m.contains("disagrees with signature.rs stage")),
        "{msgs:?}"
    );
    // Unknown label in the corpus.
    assert!(msgs.iter().any(|m| m.contains("unknown signature label")));
    // Labels never exercised by the corpus.
    assert!(msgs.iter().any(|m| m.contains("never exercised")));
}

#[test]
fn taxonomy_checker_catches_design_count_drift() {
    let sig = SIG_DRIFT
        .replace("[Signature; 2]", "[Signature; 3]")
        .replace(
            "[Signature::SynNone, Signature::SynRst]",
            "[Signature::SynNone, Signature::SynRst, Signature::AckNone]",
        )
        .replace(r#"SynRst => "⟨SYN → ∅⟩","#, r#"SynRst => "⟨SYN → RST⟩","#)
        .replace(
            "match self {\n            _ => \"drifted\",\n        }",
            "use Signature::*;\n        match self {\n            SynNone => \"a\",\n            \
             SynRst => \"b\",\n            AckNone => \"c\",\n        }",
        );
    let golden = "{\"signature\":\"⟨SYN → ∅⟩\",\"stage\":\"Post-SYN\"}\n\
        {\"signature\":\"⟨SYN → RST⟩\",\"stage\":\"Post-SYN\"}\n\
        {\"signature\":\"⟨SYN; ACK → ∅⟩\",\"stage\":\"Post-ACK\"}\n";
    // Consistent enum + corpus, but the design doc states the wrong count.
    let findings = taxonomy::check_sources(&sig, golden, "a taxonomy of 19 signatures");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("taxonomy size (3)"));
    // And with the right count, everything is green.
    let findings = taxonomy::check_sources(&sig, golden, "a taxonomy of 3 signatures");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn golden_fixture_lines_parse() {
    // Smoke-check the miniature golden grammar against the checker's parser
    // via a fully-consistent run (no findings from the golden side).
    let sig = SIG_DRIFT;
    let findings = taxonomy::check_sources(sig, GOLDEN_OK, "a taxonomy of 3 signatures");
    // Only enum-side drift findings; nothing complains about GOLDEN_OK's
    // null-signature line.
    assert!(
        findings
            .iter()
            .all(|f| !f.message.contains("unknown signature label")),
        "{findings:?}"
    );
}

#[test]
fn the_real_repo_passes_the_gate() {
    // CARGO_MANIFEST_DIR = crates/lint → repo root is two levels up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let analysis = tamper_lint::analyze(&root);
    assert!(
        analysis.files_scanned > 40,
        "scanned {}",
        analysis.files_scanned
    );
    assert!(
        analysis.ok(),
        "tamperlint findings in the repo:\n{}",
        analysis.render_human()
    );
    // The waivers placed across wire/ and capture/ are all in use.
    assert!(!analysis.waived.is_empty());
}
