//! tamperlint v4 suite: the effect-summary engine and everything built on
//! it — purity-audit and unbounded-growth fire-and-waiver behavior, SCC
//! fixpoint convergence, a differential check that the summary-based
//! containment rules reproduce the pre-summary BFS implementation exactly,
//! the root-registry drift check, rule explanations, and the incremental
//! cache (hit, invalidation on edit, fail-closed corruption handling).

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::PathBuf;

use tamper_lint::callgraph::{self, CallGraph, SinkKind};
use tamper_lint::rules::{self, ScanCtx};
use tamper_lint::symbols::SymbolTable;
use tamper_lint::{analyze_sources, analyze_with, ast, effects, fingerprint, Analysis, Finding};

const CORE: &str = "crates/core/src/fixture.rs";
const REPORT: &str = "crates/analysis/src/report.rs";

// ---------------------------------------------------------------------------
// purity-audit
// ---------------------------------------------------------------------------

#[test]
fn purity_audit_fires_on_impure_report_root() {
    let files = [(REPORT, include_str!("fixtures/bad_impure.rs"))];
    let analysis = analyze_sources(&files);
    let hits: Vec<&Finding> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "purity-audit")
        .collect();
    assert_eq!(hits.len(), 1, "findings: {:?}", analysis.findings);
    let f = hits[0];
    assert_eq!(f.file, REPORT);
    assert_eq!(f.line, 4, "anchors on the root's definition line");
    assert!(f.message.contains("PerformsIo"), "{}", f.message);
    assert!(f.message.contains("render_row"), "{}", f.message);
    assert!(f.message.contains("full_report"), "{}", f.message);
}

#[test]
fn purity_audit_respects_a_waiver() {
    let src = include_str!("fixtures/bad_impure.rs").replace(
        "pub fn full_report",
        "// tamperlint: allow(purity-audit) — fixture exercises the waiver path\npub fn full_report",
    );
    let analysis = analyze_sources(&[(REPORT, &src)]);
    assert!(
        analysis.findings.iter().all(|f| f.rule != "purity-audit"),
        "findings: {:?}",
        analysis.findings
    );
    assert!(analysis.waived.iter().any(|f| f.rule == "purity-audit"));
}

#[test]
fn purity_audit_is_silent_on_a_pure_root() {
    // Same shape, no I/O: the root and its helper stay effect-free.
    let src = "pub fn full_report(rows: &[u64]) -> u64 {\n    rows.iter().map(|r| render_row(*r)).sum()\n}\n\nfn render_row(r: u64) -> u64 {\n    r + 1\n}\n";
    let analysis = analyze_sources(&[(REPORT, src)]);
    assert!(
        analysis.findings.iter().all(|f| f.rule != "purity-audit"),
        "findings: {:?}",
        analysis.findings
    );
}

// ---------------------------------------------------------------------------
// unbounded-growth
// ---------------------------------------------------------------------------

#[test]
fn unbounded_growth_fires_without_eviction_evidence() {
    let files = [(CORE, include_str!("fixtures/bad_growth.rs"))];
    let analysis = analyze_sources(&files);
    let hits: Vec<&Finding> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "unbounded-growth")
        .collect();
    assert_eq!(hits.len(), 1, "findings: {:?}", analysis.findings);
    assert_eq!(hits[0].line, 12, "anchors on the insertion site");
    assert!(hits[0].message.contains("seen"), "{}", hits[0].message);
    // `counts` has `clear()` evidence in `reset` — it must stay silent.
    assert!(
        !analysis
            .findings
            .iter()
            .any(|f| f.rule == "unbounded-growth" && f.message.contains("counts")),
        "findings: {:?}",
        analysis.findings
    );
}

#[test]
fn unbounded_growth_respects_a_waiver() {
    let src = include_str!("fixtures/bad_growth.rs").replace(
        "        self.seen.push(v);",
        "        // tamperlint: allow(unbounded-growth) — fixture waiver\n        self.seen.push(v);",
    );
    let analysis = analyze_sources(&[(CORE, &src)]);
    assert!(
        analysis
            .findings
            .iter()
            .all(|f| f.rule != "unbounded-growth"),
        "findings: {:?}",
        analysis.findings
    );
    assert!(analysis.waived.iter().any(|f| f.rule == "unbounded-growth"));
}

// ---------------------------------------------------------------------------
// SCC fixpoint convergence
// ---------------------------------------------------------------------------

#[test]
fn fixpoint_converges_on_a_recursive_cycle_and_propagates_effects() {
    let files = [(CORE, include_str!("fixtures/bad_recursion.rs"))];
    let clock: Vec<(u32, String)> = analyze_sources(&files)
        .findings
        .iter()
        .filter(|f| f.rule == "ambient-clock")
        .map(|f| (f.line, f.message.clone()))
        .collect();
    // Textual finding at the sink itself.
    assert!(clock.iter().any(|(l, _)| *l == 21), "{clock:?}");
    // Transitive findings climb through the tick ↔ tock cycle all the way
    // to poll_loop: the fixpoint must converge on the SCC, not loop.
    for line in [6, 11, 17] {
        assert!(
            clock
                .iter()
                .any(|(l, m)| *l == line && m.contains("transitively reaches")),
            "no transitive finding at line {line}: {clock:?}"
        );
    }
    assert!(
        clock
            .iter()
            .any(|(l, m)| *l == 6 && m.contains("poll_loop()") && m.contains("stamp")),
        "{clock:?}"
    );
}

// ---------------------------------------------------------------------------
// Differential parity: summary-based containment vs the pre-summary BFS
// ---------------------------------------------------------------------------

const CONTAINMENT_RULES: [&str; 3] = ["ambient-clock", "ambient-rng", "thread-containment"];

/// The pre-v4 BFS containment implementation, reconstructed verbatim from
/// the public pieces it was built on: per-kind seed sets from textual
/// sinks, one `CallGraph::taint` flood per kind, and the same hop-chain
/// message rendering. Returns (rule, file, fingerprint) triples after
/// waiver application.
fn reference_containment(files: &[(&str, &str)]) -> BTreeSet<(String, String, String)> {
    let ctx = ScanCtx::default();
    let mut scans: Vec<rules::FileScan> = files
        .iter()
        .map(|(p, s)| rules::scan_file(p, s, rules::scope_for(p), &ctx))
        .collect();
    let graph_files: Vec<(String, ast::ParsedFile)> = scans
        .iter()
        .filter(|s| !s.path.starts_with("crates/lint/"))
        .map(|s| (s.path.clone(), s.parsed.clone()))
        .collect();
    let sym = SymbolTable::build(&graph_files);
    let graph = CallGraph::build(&sym);
    let scan_idx: BTreeMap<String, usize> = scans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.path.clone(), i))
        .collect();

    let mut fn_sinks: Vec<Vec<callgraph::Sink>> = vec![Vec::new(); sym.fns.len()];
    let mut seeds: BTreeMap<SinkKind, BTreeSet<usize>> = BTreeMap::new();
    for (path, _) in &graph_files {
        let scan = &scans[scan_idx[path.as_str()]];
        for (local, id) in sym.file_fns(path).iter().enumerate() {
            let (b0, b1) = scan.parsed.fns[local].body;
            let sinks = callgraph::find_sinks(&scan.code, b0, b1);
            for s in &sinks {
                let sanctioned = match s.kind {
                    SinkKind::Clock | SinkKind::Rng => path.starts_with("crates/obs/"),
                    SinkKind::Thread => path == "crates/capture/src/engine.rs",
                };
                if !sanctioned {
                    seeds.entry(s.kind).or_default().insert(*id);
                }
            }
            fn_sinks[*id] = sinks;
        }
    }

    let mut extra: Vec<(usize, Finding)> = Vec::new();
    for (&kind, kind_seeds) in &seeds {
        let taint = graph.taint(kind_seeds);
        for (&fid, hop) in &taint {
            let fsym = &sym.fns[fid];
            let Some(&si) = scan_idx.get(fsym.file.as_str()) else {
                continue;
            };
            let scope = scans[si].scope;
            let applies = match kind {
                SinkKind::Clock | SinkKind::Rng => scope.ambient,
                SinkKind::Thread => scope.thread_containment,
            };
            if !applies || fn_sinks[fid].iter().any(|s| s.kind == kind) {
                continue;
            }
            let mut chain: Vec<String> = Vec::new();
            let mut cur = hop.callee;
            loop {
                chain.push(sym.fns[cur].def.name.clone());
                if kind_seeds.contains(&cur) {
                    break;
                }
                match taint.get(&cur) {
                    Some(next) => cur = next.callee,
                    None => break,
                }
            }
            let sink = fn_sinks[cur]
                .iter()
                .find(|s| s.kind == kind)
                .map_or_else(|| "ambient sink".to_string(), |s| s.what.clone());
            extra.push((
                si,
                Finding::new(
                    &fsym.file,
                    hop.line,
                    kind.rule(),
                    format!(
                        "{}() transitively reaches {} (in {}) via {}",
                        fsym.def.name,
                        sink,
                        sym.fns[cur].file,
                        chain.join(" → ")
                    ),
                ),
            ));
        }
    }
    for (si, f) in extra {
        scans[si].raw.push(f);
    }

    let mut findings: Vec<Finding> = Vec::new();
    for scan in &scans {
        let fl = rules::apply_waivers(&scan.path, scan.raw.clone(), &scan.waivers);
        findings.extend(fl.findings);
    }
    findings.retain(|f| CONTAINMENT_RULES.contains(&f.rule));
    findings.sort();
    let by_path: BTreeMap<&str, &rules::FileScan> =
        scans.iter().map(|s| (s.path.as_str(), s)).collect();
    let line_text = |file: &str, line: u32| {
        by_path
            .get(file)
            .and_then(|s| fingerprint::normalize_line(&s.code, line))
    };
    fingerprint::assign(&mut findings, &line_text);
    findings
        .into_iter()
        .map(|f| (f.rule.to_string(), f.file, f.fingerprint))
        .collect()
}

fn actual_containment(files: &[(&str, &str)]) -> BTreeSet<(String, String, String)> {
    analyze_sources(files)
        .findings
        .into_iter()
        .filter(|f| CONTAINMENT_RULES.contains(&f.rule))
        .map(|f| (f.rule.to_string(), f.file, f.fingerprint))
        .collect()
}

#[test]
fn summary_containment_matches_bfs_on_every_fixture() {
    let singles: &[(&str, &str)] = &[
        ("bad_alloc", include_str!("fixtures/bad_alloc.rs")),
        ("bad_ambient", include_str!("fixtures/bad_ambient.rs")),
        ("bad_cast", include_str!("fixtures/bad_cast.rs")),
        ("bad_clock", include_str!("fixtures/bad_clock.rs")),
        ("bad_discard", include_str!("fixtures/bad_discard.rs")),
        ("bad_growth", include_str!("fixtures/bad_growth.rs")),
        ("bad_impure", include_str!("fixtures/bad_impure.rs")),
        ("bad_index", include_str!("fixtures/bad_index.rs")),
        ("bad_map_iter", include_str!("fixtures/bad_map_iter.rs")),
        ("bad_match", include_str!("fixtures/bad_match.rs")),
        ("bad_panic", include_str!("fixtures/bad_panic.rs")),
        ("bad_recursion", include_str!("fixtures/bad_recursion.rs")),
        ("bad_taint_len", include_str!("fixtures/bad_taint_len.rs")),
        ("bad_thread", include_str!("fixtures/bad_thread.rs")),
        ("bad_wrap", include_str!("fixtures/bad_wrap.rs")),
        ("waivers", include_str!("fixtures/waivers.rs")),
    ];
    let mut nonempty = 0;
    for (name, src) in singles {
        let files = [(CORE, *src)];
        let reference = reference_containment(&files);
        let actual = actual_containment(&files);
        assert_eq!(reference, actual, "fixture {name}");
        nonempty += usize::from(!actual.is_empty());
    }
    // Guard against vacuous equality: the clock/rng/thread fixtures must
    // actually produce containment findings.
    assert!(nonempty >= 2, "only {nonempty} fixtures fired");

    let trio = [
        (
            "crates/analysis/src/transitive_entry.rs",
            include_str!("fixtures/transitive_entry.rs"),
        ),
        (
            "crates/analysis/src/transitive_relay.rs",
            include_str!("fixtures/transitive_relay.rs"),
        ),
        (
            "crates/analysis/src/transitive_sink.rs",
            include_str!("fixtures/transitive_sink.rs"),
        ),
    ];
    let reference = reference_containment(&trio);
    let actual = actual_containment(&trio);
    assert!(!actual.is_empty(), "transitive trio must fire");
    assert_eq!(reference, actual, "transitive trio");

    let hot = [
        (
            "crates/analysis/src/transitive_hot_entry.rs",
            include_str!("fixtures/transitive_hot_entry.rs"),
        ),
        (
            "crates/analysis/src/transitive_hot_relay.rs",
            include_str!("fixtures/transitive_hot_relay.rs"),
        ),
        (
            "crates/analysis/src/transitive_hot_sink.rs",
            include_str!("fixtures/transitive_hot_sink.rs"),
        ),
    ];
    assert_eq!(
        reference_containment(&hot),
        actual_containment(&hot),
        "hot trio"
    );

    // Everything at once: cross-file name resolution, dropped edges, and
    // SCCs all in one graph.
    let mega: Vec<(String, &str)> = singles
        .iter()
        .map(|(n, s)| (format!("crates/analysis/src/{n}.rs"), *s))
        .chain(trio.iter().map(|(p, s)| (p.to_string(), *s)))
        .collect();
    let mega_refs: Vec<(&str, &str)> = mega.iter().map(|(p, s)| (p.as_str(), *s)).collect();
    let reference = reference_containment(&mega_refs);
    let actual = actual_containment(&mega_refs);
    assert!(!actual.is_empty());
    assert_eq!(reference, actual, "combined fixture set");
}

// ---------------------------------------------------------------------------
// Root-registry drift check
// ---------------------------------------------------------------------------

#[test]
fn root_registry_reports_unresolved_entries() {
    let src = "pub struct FlowMachine;\n\
               impl FlowMachine {\n    pub fn process(&mut self) {}\n}\n\
               pub fn helper() {}\n";
    let path = "crates/core/src/machine.rs";
    let scan = rules::scan_file(path, src, rules::scope_for(path), &ScanCtx::default());
    let sym = SymbolTable::build(&[(path.to_string(), scan.parsed.clone())]);

    // Resolvable entries: an impl method by owner, a free fn by file stem.
    let entries: &[(&str, &str)] = &[("FlowMachine", "process"), ("machine", "helper")];
    assert!(effects::registry_findings(&sym, &[("R", entries)]).is_empty());

    // A renamed-away entry is rot and must be reported.
    let stale: &[(&str, &str)] = &[("FlowMachine", "vanished")];
    let found = effects::registry_findings(&sym, &[("HOT_ROOTS", stale)]);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, "root-registry");
    assert!(
        found[0].message.contains("HOT_ROOTS"),
        "{}",
        found[0].message
    );
    assert!(
        found[0].message.contains("vanished"),
        "{}",
        found[0].message
    );
}

// ---------------------------------------------------------------------------
// Explanations and timings
// ---------------------------------------------------------------------------

#[test]
fn every_rule_has_an_explanation() {
    for rule in tamper_lint::RULES {
        let text = rules::explain(rule);
        assert!(text.is_some(), "rule {rule} has no --explain text");
        assert!(text.unwrap().len() > 40, "rule {rule} explanation too thin");
    }
    assert_eq!(rules::EXPLANATIONS.len(), tamper_lint::RULES.len());
    for (rule, _) in rules::EXPLANATIONS {
        assert!(
            tamper_lint::RULES.contains(&rule),
            "stale explanation for {rule}"
        );
    }
}

#[test]
fn effect_fixpoint_stage_is_timed() {
    let analysis = analyze_sources(&[(CORE, "fn quiet() {}\n")]);
    assert!(
        analysis
            .rule_timings
            .iter()
            .any(|(name, _)| *name == "effect-fixpoint"),
        "{:?}",
        analysis.rule_timings
    );
}

// ---------------------------------------------------------------------------
// Incremental cache (integration, through analyze_with)
// ---------------------------------------------------------------------------

fn temp_repo(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("tamperlint-v4-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for (rel, src) in files {
        let p = root.join(rel);
        fs::create_dir_all(p.parent().unwrap()).unwrap();
        fs::write(&p, src).unwrap();
    }
    root
}

/// Everything that must be byte-identical between cold and warm runs.
fn digest(a: &Analysis) -> Vec<String> {
    let mut out: Vec<String> = a
        .findings
        .iter()
        .map(|f| {
            format!(
                "F\t{}\t{}\t{}\t{}\t{}",
                f.fingerprint, f.rule, f.file, f.line, f.message
            )
        })
        .collect();
    out.extend(
        a.waived
            .iter()
            .map(|f| format!("W\t{}\t{}\t{}", f.rule, f.file, f.line)),
    );
    out
}

const REPO_FILES: &[(&str, &str)] = &[
    (
        "crates/analysis/src/report.rs",
        include_str!("fixtures/bad_impure.rs"),
    ),
    (
        "crates/core/src/fixture.rs",
        include_str!("fixtures/bad_growth.rs"),
    ),
];

#[test]
fn cache_warm_run_hits_every_file_and_reproduces_findings() {
    let root = temp_repo("roundtrip", REPO_FILES);
    let cache = root.join("target/tamperlint.cache");

    let cold = analyze_with(&root, Some(&cache));
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses, 2);
    // The real rules run against the temp repo too: the impure root and
    // the growing collection are both found, and the resolvable
    // PURE_ROOTS entry ("report", "full_report") does not count as rot.
    assert!(cold.findings.iter().any(|f| f.rule == "purity-audit"));
    assert!(cold.findings.iter().any(|f| f.rule == "unbounded-growth"));
    assert!(
        !cold
            .findings
            .iter()
            .any(|f| f.rule == "root-registry" && f.message.contains("full_report")),
        "resolvable registry entry flagged as rot"
    );

    let warm = analyze_with(&root, Some(&cache));
    assert_eq!(warm.cache_hits, 2, "warm run must hit every unchanged file");
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(digest(&cold), digest(&warm));

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cache_invalidates_only_the_edited_file() {
    let root = temp_repo("edit", REPO_FILES);
    let cache = root.join("target/tamperlint.cache");

    let cold = analyze_with(&root, Some(&cache));
    assert_eq!(cold.cache_misses, 2);

    // Appending a trailing comment changes the content hash but not the
    // findings: exactly one miss, identical report.
    let edited = root.join("crates/core/src/fixture.rs");
    let mut src = fs::read_to_string(&edited).unwrap();
    src.push_str("\n// trailing comment\n");
    fs::write(&edited, src).unwrap();

    let warm = analyze_with(&root, Some(&cache));
    assert_eq!(warm.cache_hits, 1);
    assert_eq!(warm.cache_misses, 1);
    assert_eq!(digest(&cold), digest(&warm));

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cache_corruption_fails_closed() {
    let root = temp_repo("corrupt", REPO_FILES);
    let cache = root.join("target/tamperlint.cache");

    let cold = analyze_with(&root, Some(&cache));
    assert_eq!(cold.cache_misses, 2);

    // Damage one record inside the first file's block: that file becomes
    // a miss, the other still hits, findings are unchanged.
    let text = fs::read_to_string(&cache).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 3, "cache unexpectedly small: {text:?}");
    lines[2] = "@@@ not a cache record @@@";
    fs::write(&cache, lines.join("\n")).unwrap();

    let warm = analyze_with(&root, Some(&cache));
    assert_eq!(warm.cache_hits + warm.cache_misses, 2);
    assert!(warm.cache_misses >= 1, "corrupted block must not hit");
    assert_eq!(digest(&cold), digest(&warm));

    // A wrong version/salt header drops the whole store.
    let text = fs::read_to_string(&cache).unwrap();
    let rest: Vec<&str> = text.lines().skip(1).collect();
    fs::write(
        &cache,
        format!(
            "tamperlint-cache v999 0000000000000000\n{}",
            rest.join("\n")
        ),
    )
    .unwrap();
    let bumped = analyze_with(&root, Some(&cache));
    assert_eq!(
        bumped.cache_hits, 0,
        "version bump must invalidate everything"
    );
    assert_eq!(bumped.cache_misses, 2);
    assert_eq!(digest(&cold), digest(&bumped));

    let _ = fs::remove_dir_all(&root);
}
