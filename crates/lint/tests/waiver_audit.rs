//! Waiver audit: the checked-in `tamperlint.baseline` declares how many
//! in-source `// tamperlint: allow(...)` waivers the repo is expected to
//! carry (`# waivers: N`). This test runs the real analyzer over the real
//! tree and holds it to that number, so a new waiver (or a silently
//! dropped one) must come with a reviewed baseline update — the same
//! contract `--deny-new` enforces for findings.

use std::path::PathBuf;

use tamper_lint::baseline::{Baseline, BASELINE_FILE};
use tamper_lint::{analyze, scope_for};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the repo root")
        .to_path_buf()
}

#[test]
fn waiver_count_matches_the_baseline_declaration() {
    let root = repo_root();
    let text = std::fs::read_to_string(root.join(BASELINE_FILE))
        .expect("tamperlint.baseline missing — run `cargo xtask analyze --write-baseline`");
    let base = Baseline::parse(&text).expect("baseline parses");
    let declared = base.expected_waivers.expect(
        "tamperlint.baseline has no `# waivers: N` line — regenerate with \
         `cargo xtask analyze --write-baseline`",
    );

    let analysis = analyze(&root);
    assert!(analysis.files_scanned > 0, "analyzer saw no files");
    assert_eq!(
        analysis.waived.len(),
        declared,
        "in-source waiver count drifted from the baseline declaration; \
         waivers now present:\n{}",
        analysis
            .waived
            .iter()
            .map(|f| format!("  {}:{} [{}]", f.file, f.line, f.rule))
            .collect::<Vec<_>>()
            .join("\n")
    );

    // Every current finding must be baselined (the same condition the
    // `--deny-new` gate enforces), and the committed baseline must not
    // carry stale accepted findings either.
    let new = analysis.new_findings(&base);
    assert!(
        new.is_empty(),
        "{} finding(s) not in the baseline: {:?}",
        new.len(),
        new
    );
    assert!(
        analysis.stale_entries(&base).is_empty(),
        "baseline carries entries no current finding matches — prune it"
    );
}

#[test]
fn sans_io_machine_modules_are_in_determinism_scope() {
    // The tentpole modules must sit inside the ambient-clock containment
    // scope: a `SystemTime::now()` smuggled into the state machines is
    // exactly the bug class the sans-IO refactor exists to prevent.
    for path in [
        "crates/core/src/machine.rs",
        "crates/core/src/classify.rs",
        "crates/netsim/src/endpoint.rs",
        "crates/netsim/src/client.rs",
        "crates/netsim/src/server.rs",
        "crates/netsim/src/session.rs",
        "crates/analysis/src/collector.rs",
    ] {
        let scope = scope_for(path);
        assert!(scope.ambient, "{path} escaped the ambient/clock scope");
    }
    // The classification core is also in the deterministic-iteration
    // scope (its output feeds report bytes).
    assert!(scope_for("crates/core/src/machine.rs").map_iter);
    // And repo automation stays exempt: xtask measures wall time for the
    // CI summary by design.
    assert!(!scope_for("crates/xtask/src/main.rs").ambient);
}

#[test]
fn partial_aggregate_modules_are_in_scope() {
    // The .agg decoder parses untrusted bytes off disk, so it joins the
    // wire/capture parsing surface under the panic/index and
    // untrusted-length rules.
    let decoder = scope_for("crates/analysis/src/aggfile.rs");
    assert!(decoder.panic_index, "aggfile.rs escaped the panic scope");
    assert!(decoder.taint_len, "aggfile.rs escaped the taint-len scope");
    // The aggregate layer feeds report bytes directly: deterministic
    // iteration and ambient-clock containment both apply.
    for path in [
        "crates/analysis/src/agg.rs",
        "crates/analysis/src/aggfile.rs",
        "crates/analysis/src/view.rs",
    ] {
        let scope = scope_for(path);
        assert!(scope.map_iter, "{path} escaped the determinism scope");
        assert!(scope.ambient, "{path} escaped the ambient/clock scope");
    }
}
