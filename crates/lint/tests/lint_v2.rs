//! v2 gate tests: the AST-backed rule families (wraparound-arithmetic,
//! exhaustive-signature-match, discarded-wire-error), transitive
//! containment across files, fingerprint stability under edits that must
//! not churn the baseline, and `--deny-new` idempotency against the
//! checked-in baseline.

use tamper_lint::baseline::Baseline;
use tamper_lint::{analyze_sources, lint_source, Analysis, Finding};

/// Virtual in-scope paths for the fixtures.
const WIRE: &str = "crates/wire/src/fixture.rs";
const ANALYSIS: &str = "crates/analysis/src/fixture.rs";

fn fired(findings: &[Finding]) -> Vec<(&str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

// --- wraparound-arithmetic ---

#[test]
fn wraparound_fires_on_raw_seq_space_arithmetic() {
    let lint = lint_source(WIRE, include_str!("fixtures/bad_wrap.rs"));
    assert_eq!(
        fired(&lint.findings),
        vec![
            ("wraparound-arithmetic", 4), // seq + len
            ("wraparound-arithmetic", 5), // next_seq - 1
            ("wraparound-arithmetic", 9), // ack += count
        ]
    );
    assert!(lint.findings[0].message.contains("wrapping_*"));
    // wrapping_add and non-seq-space names (delta, count) stayed clean.
}

#[test]
fn wraparound_waiver_suppresses_the_finding() {
    let src = "pub fn adv(seq: u32) -> u32 {\n    \
        // tamperlint: allow(wraparound-arithmetic) — fixture: wraparound impossible by construction\n    \
        seq + 1\n}\n";
    let lint = lint_source(WIRE, src);
    assert!(lint.findings.is_empty(), "{:?}", lint.findings);
    assert_eq!(fired(&lint.waived), vec![("wraparound-arithmetic", 3)]);
}

// --- exhaustive-signature-match ---

#[test]
fn sig_match_fires_on_wildcards_and_catch_all_bindings() {
    let lint = lint_source(ANALYSIS, include_str!("fixtures/bad_match.rs"));
    assert_eq!(
        fired(&lint.findings),
        vec![
            ("exhaustive-signature-match", 12), // `_ => 2`
            ("exhaustive-signature-match", 18), // `other => other`
        ]
    );
    assert!(lint.findings[0].message.contains("wildcard"));
    assert!(lint.findings[1]
        .message
        .contains("catch-all binding `other`"));
}

#[test]
fn sig_match_waiver_suppresses_the_finding() {
    let src = "pub enum Signature { SynNone, SynRst }\n\
        pub fn merge(sig: Signature) -> Signature {\n    \
        match sig {\n        \
        Signature::SynNone => Signature::SynRst,\n        \
        // tamperlint: allow(exhaustive-signature-match) — fixture: identity arm kept by design\n        \
        other => other,\n    \
        }\n}\n";
    let lint = lint_source(ANALYSIS, src);
    assert!(lint.findings.is_empty(), "{:?}", lint.findings);
    assert_eq!(fired(&lint.waived), vec![("exhaustive-signature-match", 6)]);
}

// --- discarded-wire-error ---

#[test]
fn discard_fires_on_let_underscore_and_ok() {
    let lint = lint_source(ANALYSIS, include_str!("fixtures/bad_discard.rs"));
    assert_eq!(
        fired(&lint.findings),
        vec![
            ("discarded-wire-error", 8), // let _ = decode_header(b);
            ("discarded-wire-error", 9), // decode_header(b).ok()
        ]
    );
    assert!(lint.findings[0].message.contains("`let _ =` discards"));
    assert!(lint.findings[1].message.contains(".ok() swallows"));
    // The propagating caller (`careful`) stayed clean.
}

#[test]
fn discard_waiver_suppresses_the_finding() {
    let src = "pub struct WireError;\n\
        pub fn decode(b: &[u8]) -> Result<u8, WireError> {\n    \
        b.first().copied().ok_or(WireError)\n}\n\
        pub fn probe(b: &[u8]) -> bool {\n    \
        // tamperlint: allow(discarded-wire-error) — fixture: presence probe only, the error is the signal\n    \
        decode(b).ok().is_some()\n}\n";
    let lint = lint_source(ANALYSIS, src);
    assert!(lint.findings.is_empty(), "{:?}", lint.findings);
    assert_eq!(fired(&lint.waived), vec![("discarded-wire-error", 7)]);
}

// --- transitive containment ---

#[test]
fn transitive_containment_reaches_a_sink_two_hops_away() {
    const ENTRY: &str = "crates/analysis/src/transitive_entry.rs";
    const RELAY: &str = "crates/analysis/src/transitive_relay.rs";
    const SINK: &str = "crates/analysis/src/transitive_sink.rs";
    let analysis = analyze_sources(&[
        (ENTRY, include_str!("fixtures/transitive_entry.rs")),
        (RELAY, include_str!("fixtures/transitive_relay.rs")),
        (SINK, include_str!("fixtures/transitive_sink.rs")),
    ]);
    let got: Vec<(&str, &str, u32)> = analysis
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.rule, f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            (ENTRY, "ambient-clock", 4),    // transitive, two hops out
            (RELAY, "ambient-clock", 4),    // transitive, one hop out
            (SINK, "clock-containment", 2), // textual: use …::Instant
            (SINK, "ambient-clock", 4),     // textual: Instant::now()
        ],
        "{:?}",
        analysis.findings
    );
    let entry_msg = &analysis.findings[0].message;
    assert!(entry_msg.contains("transitively reaches"), "{entry_msg}");
    assert!(entry_msg.contains("stamp_all → now_ns"), "{entry_msg}");
}

#[test]
fn transitive_finding_is_waivable_at_the_call_site() {
    let entry = "pub fn summarize(n: u64) -> u64 {\n    \
        // tamperlint: allow(ambient-clock) — fixture: reviewed, reach is intentional here\n    \
        transitive_relay::stamp_all(n)\n}\n";
    let analysis = analyze_sources(&[
        ("crates/analysis/src/transitive_entry.rs", entry),
        (
            "crates/analysis/src/transitive_relay.rs",
            include_str!("fixtures/transitive_relay.rs"),
        ),
        (
            "crates/analysis/src/transitive_sink.rs",
            include_str!("fixtures/transitive_sink.rs"),
        ),
    ]);
    // The entry's transitive finding is waived; relay and sink still fire.
    assert!(
        analysis
            .findings
            .iter()
            .all(|f| !f.file.contains("transitive_entry")),
        "{:?}",
        analysis.findings
    );
    assert!(analysis
        .waived
        .iter()
        .any(|f| f.file.contains("transitive_entry") && f.rule == "ambient-clock"));
    assert_eq!(analysis.findings.len(), 3);
}

// --- fingerprint stability ---

#[test]
fn fingerprints_survive_lines_inserted_above_the_finding() {
    let base = include_str!("fixtures/bad_wrap.rs");
    let shifted = format!("// padding line one\n// padding line two\n\n{base}");
    let a = analyze_sources(&[(WIRE, base)]);
    let b = analyze_sources(&[(WIRE, shifted.as_str())]);
    assert!(!a.findings.is_empty());
    let fa: Vec<&str> = a.findings.iter().map(|f| f.fingerprint.as_str()).collect();
    let fb: Vec<&str> = b.findings.iter().map(|f| f.fingerprint.as_str()).collect();
    assert_eq!(fa, fb, "fingerprints churned on a pure line shift");
    // The lines themselves did move — the fingerprints are what held still.
    let la: Vec<u32> = a.findings.iter().map(|f| f.line).collect();
    let lb: Vec<u32> = b.findings.iter().map(|f| f.line).collect();
    assert_ne!(la, lb);
}

#[test]
fn fingerprints_survive_renaming_an_unrelated_sibling_file() {
    let wrap = include_str!("fixtures/bad_wrap.rs");
    let clean = "pub fn noop() {}\n";
    let a = analyze_sources(&[(WIRE, wrap), ("crates/analysis/src/other.rs", clean)]);
    let b = analyze_sources(&[(WIRE, wrap), ("crates/analysis/src/renamed.rs", clean)]);
    let fa: Vec<&str> = a.findings.iter().map(|f| f.fingerprint.as_str()).collect();
    let fb: Vec<&str> = b.findings.iter().map(|f| f.fingerprint.as_str()).collect();
    assert!(!fa.is_empty());
    assert_eq!(fa, fb, "fingerprints churned on an unrelated rename");
}

// --- baseline / --deny-new ---

#[test]
fn deny_new_is_idempotent_against_the_checked_in_baseline() {
    let root = repo_root();
    let fp = |a: &Analysis| -> Vec<String> {
        a.findings.iter().map(|f| f.fingerprint.clone()).collect()
    };
    let first = tamper_lint::analyze(&root);
    let second = tamper_lint::analyze(&root);
    assert_eq!(fp(&first), fp(&second), "analyze is not deterministic");
    let text = std::fs::read_to_string(root.join(tamper_lint::baseline::BASELINE_FILE))
        .expect("tamperlint.baseline must be checked in");
    let base = Baseline::parse(&text).expect("checked-in baseline must parse");
    assert!(
        first.new_findings(&base).is_empty(),
        "first run has findings not in the baseline: {:?}",
        first.new_findings(&base)
    );
    assert!(second.new_findings(&base).is_empty());
    assert!(
        first.stale_entries(&base).is_empty(),
        "baseline has stale entries"
    );
}

#[test]
fn baseline_parsing_fails_closed() {
    assert!(Baseline::parse("deadbeef wrong-width some/file.rs").is_err());
    assert!(Baseline::parse("0123456789abcdef0 extra-field rule file.rs").is_err());
    let ok = Baseline::parse("# comment\n\n0123456789abcdef panic crates/wire/src/tcp.rs\n")
        .expect("well-formed baseline parses");
    assert!(ok.contains("0123456789abcdef"));
}
