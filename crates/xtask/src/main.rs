//! Repo automation. `cargo xtask ci` is the one-command gate a PR must
//! pass: formatting, clippy, release build, the full workspace test suite,
//! the engine determinism suite re-run explicitly so a scheduling-dependent
//! failure gets a second chance to surface, and the tamperlint
//! static-analysis gate. `cargo xtask analyze [--json]` runs tamperlint
//! alone.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

fn run(step: &str, program: &str, args: &[&str]) -> Result<(), String> {
    eprintln!("==> {step}: {program} {}", args.join(" "));
    let status = Command::new(program)
        .args(args)
        .status()
        .map_err(|e| format!("{step}: failed to spawn {program}: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("{step}: exited with {status}"))
    }
}

/// Repo root: xtask runs from anywhere inside the workspace, so resolve
/// relative to this crate's manifest rather than the current directory.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the repo root")
        .to_path_buf()
}

/// Run the tamperlint gate in-process (xtask links tamper-lint directly).
fn analyze(json: bool) -> Result<(), String> {
    let analysis = tamper_lint::analyze(&repo_root());
    if json {
        println!("{}", analysis.render_json());
    } else {
        print!("{}", analysis.render_human());
    }
    if analysis.ok() {
        Ok(())
    } else {
        Err(format!(
            "analyze: {} unwaived finding(s)",
            analysis.findings.len()
        ))
    }
}

fn ci() -> Result<(), String> {
    run("fmt", "cargo", &["fmt", "--all", "--check"])?;
    run(
        "clippy",
        "cargo",
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
    )?;
    run("build", "cargo", &["build", "--release"])?;
    run("test", "cargo", &["test", "--workspace", "-q"])?;
    // The headline guarantee deserves its own gate: run the determinism
    // suite again so a flaky scheduling-dependent divergence has a second
    // chance to surface outside the big batch.
    run(
        "determinism",
        "cargo",
        &["test", "-q", "--test", "engine_determinism"],
    )?;
    run(
        "golden corpus",
        "cargo",
        &["test", "-q", "--test", "golden_corpus"],
    )?;
    eprintln!("==> analyze: tamperlint (in-process)");
    analyze(false)?;
    eprintln!("==> ci: all green");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let task = args.first().map(String::as_str).unwrap_or_default();
    let result = match task {
        "ci" => ci(),
        "analyze" => analyze(args.iter().any(|a| a == "--json")),
        _ => Err(format!(
            "unknown task {task:?}\n\nUSAGE: cargo xtask <task>\n\nTASKS:\n  \
             ci                 fmt + clippy + release build + workspace tests + \
             determinism gates + tamperlint\n  \
             analyze [--json]   tamperlint static-analysis gate (determinism, \
             panic-safety, taxonomy)"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("xtask: {msg}");
            ExitCode::FAILURE
        }
    }
}
