//! Repo automation. `cargo xtask ci` is the one-command gate a PR must
//! pass: release build, the full workspace test suite, and the engine
//! determinism suite re-run explicitly so a scheduling-dependent failure
//! gets a second chance to surface.

use std::process::{Command, ExitCode};

fn run(step: &str, program: &str, args: &[&str]) -> Result<(), String> {
    eprintln!("==> {step}: {program} {}", args.join(" "));
    let status = Command::new(program)
        .args(args)
        .status()
        .map_err(|e| format!("{step}: failed to spawn {program}: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("{step}: exited with {status}"))
    }
}

fn ci() -> Result<(), String> {
    run("build", "cargo", &["build", "--release"])?;
    run("test", "cargo", &["test", "--workspace", "-q"])?;
    // The headline guarantee deserves its own gate: run the determinism
    // suite again so a flaky scheduling-dependent divergence has a second
    // chance to surface outside the big batch.
    run(
        "determinism",
        "cargo",
        &["test", "-q", "--test", "engine_determinism"],
    )?;
    run(
        "golden corpus",
        "cargo",
        &["test", "-q", "--test", "golden_corpus"],
    )?;
    eprintln!("==> ci: all green");
    Ok(())
}

fn main() -> ExitCode {
    let task = std::env::args().nth(1).unwrap_or_default();
    let result = match task.as_str() {
        "ci" => ci(),
        _ => Err(format!(
            "unknown task {task:?}\n\nUSAGE: cargo xtask <task>\n\nTASKS:\n  ci    release build + workspace tests + determinism gates"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("xtask: {msg}");
            ExitCode::FAILURE
        }
    }
}
