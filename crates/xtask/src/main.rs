//! Repo automation. `cargo xtask ci` is the one-command gate a PR must
//! pass: formatting, clippy, release build, the full workspace test suite,
//! the engine determinism suite re-run explicitly so a scheduling-dependent
//! failure gets a second chance to surface, a smoke run of
//! `classify --metrics-json` on the golden fixture pcap, a cross-thread
//! byte-identity smoke of `report` (`--threads 1` vs `--threads 2`), the
//! proptest suites re-run with `PROPTEST_CASES`/`PROPTEST_SEED` pinned,
//! the zero-allocation discipline test and the linter's own fixture
//! suite, and the tamperlint static-analysis gate in `--deny-new` mode
//! (fail on any finding whose fingerprint is absent from the checked-in
//! `tamperlint.baseline`) — run cold (cache deleted) and then warm, with
//! the warm run required to hit the incremental cache for every
//! unchanged file and reproduce the cold findings byte-for-byte —
//! followed by the lint throughput bench, which writes `BENCH_lint.json`
//! and requires the warm path to be ≥3× faster than cold. Every step is
//! timed and the run ends with a per-step wall-time summary.
//! `cargo xtask analyze [--json] [--deny-new] [--write-baseline]
//! [--prune-baseline] [--no-cache] [--explain <rule>]` runs tamperlint
//! alone.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

fn run(step: &str, program: &str, args: &[&str]) -> Result<(), String> {
    run_env(step, program, args, &[])
}

/// Like [`run`], with extra environment variables set for the child.
fn run_env(step: &str, program: &str, args: &[&str], envs: &[(&str, &str)]) -> Result<(), String> {
    let env_prefix: String = envs.iter().map(|(k, v)| format!("{k}={v} ")).collect();
    eprintln!("==> {step}: {env_prefix}{program} {}", args.join(" "));
    let status = Command::new(program)
        .args(args)
        .envs(envs.iter().copied())
        .status()
        .map_err(|e| format!("{step}: failed to spawn {program}: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("{step}: exited with {status}"))
    }
}

/// Wall-clock ledger for the CI gate: every step is timed and the whole
/// run ends with a per-step summary, so a slow test binary is visible at
/// a glance instead of hiding inside the batch.
struct Stopwatch {
    rows: Vec<(String, std::time::Duration)>,
}

impl Stopwatch {
    fn new() -> Stopwatch {
        Stopwatch { rows: Vec::new() }
    }

    fn time<F>(&mut self, step: &str, f: F) -> Result<(), String>
    where
        F: FnOnce() -> Result<(), String>,
    {
        let start = std::time::Instant::now();
        let result = f();
        self.rows.push((step.to_string(), start.elapsed()));
        result
    }

    fn summarize(&self) {
        let width = self
            .rows
            .iter()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(0);
        let total: std::time::Duration = self.rows.iter().map(|(_, d)| *d).sum();
        eprintln!("==> ci wall-time summary");
        for (name, d) in &self.rows {
            eprintln!("    {name:width$}  {:8.2}s", d.as_secs_f64());
        }
        eprintln!("    {:width$}  {:8.2}s", "total", total.as_secs_f64());
    }
}

/// Repo root: xtask runs from anywhere inside the workspace, so resolve
/// relative to this crate's manifest rather than the current directory.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the repo root")
        .to_path_buf()
}

/// How `analyze` judges the findings it collects.
#[derive(Clone, Copy, PartialEq)]
enum AnalyzeMode {
    /// Fail on any unwaived finding.
    Strict,
    /// Fail only on fingerprints absent from the checked-in baseline
    /// (`tamperlint.baseline`); a missing or unparsable baseline fails.
    DenyNew,
    /// Regenerate the baseline from the current findings.
    WriteBaseline,
    /// Drop stale baseline entries (fingerprints with no live finding);
    /// never adds entries, and refreshes the declared waiver count.
    PruneBaseline,
}

/// Where the incremental analysis cache lives (inside `target/` so a
/// `cargo clean` also clears it).
fn lint_cache_path() -> PathBuf {
    repo_root().join("target").join("tamperlint.cache")
}

/// Run the tamperlint analysis in-process, with or without the
/// incremental cache.
fn run_analysis(use_cache: bool) -> tamper_lint::Analysis {
    let root = repo_root();
    if use_cache {
        tamper_lint::analyze_with(&root, Some(&lint_cache_path()))
    } else {
        tamper_lint::analyze(&root)
    }
}

/// Run the tamperlint gate in-process (xtask links tamper-lint directly).
fn analyze(json: bool, mode: AnalyzeMode, use_cache: bool) -> Result<(), String> {
    let analysis = run_analysis(use_cache);
    if json {
        println!("{}", analysis.render_json());
    } else {
        print!("{}", analysis.render_human());
    }
    judge(&analysis, mode)
}

/// Apply an [`AnalyzeMode`]'s verdict to a finished analysis.
fn judge(analysis: &tamper_lint::Analysis, mode: AnalyzeMode) -> Result<(), String> {
    let root = repo_root();
    let baseline_path = root.join(tamper_lint::baseline::BASELINE_FILE);
    match mode {
        AnalyzeMode::WriteBaseline => {
            let text =
                tamper_lint::baseline::Baseline::render(&analysis.findings, analysis.waived.len());
            std::fs::write(&baseline_path, text)
                .map_err(|e| format!("analyze: cannot write {}: {e}", baseline_path.display()))?;
            eprintln!(
                "analyze: wrote {} with {} entry(ies)",
                baseline_path.display(),
                analysis.findings.len()
            );
            Ok(())
        }
        AnalyzeMode::PruneBaseline => {
            // Pruning edits an existing baseline; a missing one is an
            // error, not an invitation to create an empty file.
            let text = std::fs::read_to_string(&baseline_path).map_err(|e| {
                format!(
                    "analyze --prune-baseline: cannot read {}: {e}",
                    baseline_path.display()
                )
            })?;
            let base = tamper_lint::baseline::Baseline::parse(&text)
                .map_err(|e| format!("analyze --prune-baseline: {e}"))?;
            let stale = analysis.stale_entries(&base).len();
            let kept: Vec<tamper_lint::Finding> = analysis
                .findings
                .iter()
                .filter(|f| base.contains(&f.fingerprint))
                .cloned()
                .collect();
            let out = tamper_lint::baseline::Baseline::render(&kept, analysis.waived.len());
            std::fs::write(&baseline_path, out)
                .map_err(|e| format!("analyze: cannot write {}: {e}", baseline_path.display()))?;
            eprintln!(
                "analyze: pruned {stale} stale entry(ies) from {}, kept {}",
                baseline_path.display(),
                kept.len()
            );
            Ok(())
        }
        AnalyzeMode::DenyNew => {
            // Fail closed on a missing or corrupt baseline: CI must never
            // silently run without one.
            let text = std::fs::read_to_string(&baseline_path).map_err(|e| {
                format!(
                    "analyze --deny-new: cannot read {} (run `cargo xtask analyze \
                     --write-baseline` and commit it): {e}",
                    baseline_path.display()
                )
            })?;
            let base = tamper_lint::baseline::Baseline::parse(&text)
                .map_err(|e| format!("analyze --deny-new: {e}"))?;
            for stale in analysis.stale_entries(&base) {
                eprintln!(
                    "analyze: stale baseline entry {} {} {} (finding fixed — prune it)",
                    stale.fingerprint, stale.rule, stale.file
                );
            }
            let new = analysis.new_findings(&base);
            if new.is_empty() {
                Ok(())
            } else {
                for f in &new {
                    eprintln!(
                        "analyze: NEW {}:{}: [{}] {} (fingerprint {})",
                        f.file, f.line, f.rule, f.message, f.fingerprint
                    );
                }
                Err(format!(
                    "analyze: {} finding(s) not in the baseline",
                    new.len()
                ))
            }
        }
        AnalyzeMode::Strict => {
            if analysis.ok() {
                Ok(())
            } else {
                Err(format!(
                    "analyze: {} unwaived finding(s)",
                    analysis.findings.len()
                ))
            }
        }
    }
}

/// A byte-stable rendering of an analysis's findings and waivers, for
/// cold-vs-warm identity checks (timings and counters excluded).
fn findings_digest(analysis: &tamper_lint::Analysis) -> String {
    let mut out = String::new();
    for f in &analysis.findings {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            f.fingerprint, f.rule, f.file, f.line, f.message
        ));
    }
    out.push_str("--waived--\n");
    for f in &analysis.waived {
        out.push_str(&format!("{}\t{}\t{}\n", f.rule, f.file, f.line));
    }
    out
}

/// The cold/warm analyze gate: run tamperlint with an empty cache, check
/// the baseline, then re-run warm and require every unchanged file to hit
/// the cache with byte-identical findings.
fn analyze_cold_warm() -> Result<(), String> {
    let cache = lint_cache_path();
    let _ = std::fs::remove_file(&cache);
    eprintln!("==> analyze: tamperlint --deny-new (cold, in-process)");
    let cold = run_analysis(true);
    judge(&cold, AnalyzeMode::DenyNew)?;
    eprintln!("==> analyze: tamperlint warm re-run (cache identity check)");
    let warm = run_analysis(true);
    if warm.cache_misses != 0 || warm.cache_hits != warm.files_scanned {
        return Err(format!(
            "analyze: warm run expected {} cache hit(s) on an unchanged tree, \
             got {} hit(s) / {} miss(es)",
            warm.files_scanned, warm.cache_hits, warm.cache_misses
        ));
    }
    if findings_digest(&cold) != findings_digest(&warm) {
        return Err("analyze: warm (cached) findings differ from the cold run".into());
    }
    eprintln!(
        "==> analyze: warm run hit the cache for all {} file(s), findings identical \
         ({} ms cold, {} ms warm)",
        warm.files_scanned, cold.runtime_ms, warm.runtime_ms
    );
    Ok(())
}

/// Lint throughput bench: time the analysis cold (cache deleted) and warm
/// (unchanged tree) over a few iterations, write the numbers to
/// `BENCH_lint.json` at the repo root, and require the warm path to be at
/// least 3× faster — the margin that keeps the gate cheap enough to never
/// get skipped.
fn lint_bench() -> Result<(), String> {
    let root = repo_root();
    let cache = lint_cache_path();
    const ITERS: u32 = 3;
    let mut cold_best = u128::MAX;
    let mut warm_best = u128::MAX;
    let mut files = 0usize;
    for _ in 0..ITERS {
        let _ = std::fs::remove_file(&cache);
        let t = std::time::Instant::now();
        let cold = run_analysis(true);
        cold_best = cold_best.min(t.elapsed().as_micros());
        let t = std::time::Instant::now();
        let warm = run_analysis(true);
        warm_best = warm_best.min(t.elapsed().as_micros());
        if warm.cache_hits != warm.files_scanned {
            return Err("lint bench: warm run missed the cache on an unchanged tree".into());
        }
        files = cold.files_scanned;
    }
    let speedup = cold_best as f64 / warm_best.max(1) as f64;
    let out = format!(
        "{{\n  \"bench\": \"lint_analyze\",\n  \"files\": {files},\n  \"iters\": {ITERS},\n  \
         \"runs\": [\n    {{\"mode\": \"cold\", \"us\": {cold_best}}},\n    \
         {{\"mode\": \"warm\", \"us\": {warm_best}}}\n  ],\n  \
         \"warm_speedup\": {speedup:.2}\n}}\n"
    );
    let path = root.join("BENCH_lint.json");
    std::fs::write(&path, &out)
        .map_err(|e| format!("lint bench: cannot write {}: {e}", path.display()))?;
    eprintln!(
        "==> lint bench: cold {cold_best}µs, warm {warm_best}µs over {files} file(s) \
         ({speedup:.1}x)"
    );
    if speedup < 3.0 {
        return Err(format!(
            "lint bench: warm analyze is only {speedup:.2}x faster than cold \
             (gate requires ≥3x)"
        ));
    }
    Ok(())
}

/// Smoke-run `tamperscope classify --metrics-json` on the golden fixture
/// pcap. The run must succeed, the metrics file must exist and parse with
/// the workspace JSON parser, and it must report a nonzero number of
/// classified flows — otherwise the observability surface has silently
/// rotted and the step fails the gate.
fn metrics_smoke() -> Result<(), String> {
    let root = repo_root();
    let pcap = root.join("tests").join("fixtures").join("golden.pcap");
    let metrics = root.join("target").join("xtask-metrics-smoke.json");
    // Stale output from an earlier run must not mask a binary that no
    // longer writes the file.
    let _ = std::fs::remove_file(&metrics);
    eprintln!(
        "==> metrics smoke: tamperscope classify {} --metrics-json {}",
        pcap.display(),
        metrics.display()
    );
    let status = Command::new("cargo")
        .args([
            "run",
            "--release",
            "--quiet",
            "--bin",
            "tamperscope",
            "--",
            "classify",
        ])
        .arg(&pcap)
        .arg("--metrics-json")
        .arg(&metrics)
        .current_dir(&root)
        .stdout(std::process::Stdio::null())
        .status()
        .map_err(|e| format!("metrics smoke: failed to spawn cargo: {e}"))?;
    if !status.success() {
        return Err(format!("metrics smoke: classify exited with {status}"));
    }
    let text = std::fs::read_to_string(&metrics).map_err(|e| {
        format!(
            "metrics smoke: metrics file {} missing after classify: {e}",
            metrics.display()
        )
    })?;
    let doc = tamper_worldgen::json::Json::parse(text.trim())
        .map_err(|e| format!("metrics smoke: metrics file does not parse: {e}"))?;
    if doc.get("kind").and_then(|v| v.as_str()) != Some("metrics") {
        return Err("metrics smoke: document kind is not \"metrics\"".into());
    }
    let flows = doc
        .get("flows_closed")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| "metrics smoke: no numeric flows_closed field".to_string())?;
    if flows == 0 {
        return Err("metrics smoke: zero classified flows on the golden fixture".into());
    }
    let scopes = doc
        .get("scopes")
        .and_then(|v| v.as_array())
        .map_or(0, <[_]>::len);
    eprintln!("==> metrics smoke: {flows} flow(s) classified, {scopes} scope(s) published");
    Ok(())
}

/// Cross-thread-count byte-identity smoke: `report` on a small world must
/// emit identical stdout at `--threads 1` and `--threads 2`. Any diff means
/// the sharded engine leaked scheduling into report bytes — fail the gate.
fn report_determinism_smoke() -> Result<(), String> {
    let root = repo_root();
    let run_at = |threads: &str| -> Result<Vec<u8>, String> {
        eprintln!(
            "==> report smoke: tamperscope report --sessions 4000 --days 2 \
             --seed 20230112 --threads {threads}"
        );
        let out = Command::new("cargo")
            .args([
                "run",
                "--release",
                "--quiet",
                "--bin",
                "tamperscope",
                "--",
                "report",
                "--sessions",
                "4000",
                "--days",
                "2",
                "--seed",
                "20230112",
                "--threads",
                threads,
            ])
            .current_dir(&root)
            .output()
            .map_err(|e| format!("report smoke: failed to spawn cargo: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "report smoke: report --threads {threads} exited with {}:\n{}",
                out.status,
                String::from_utf8_lossy(&out.stderr)
            ));
        }
        Ok(out.stdout)
    };
    let one = run_at("1")?;
    let two = run_at("2")?;
    if one.is_empty() {
        return Err("report smoke: report produced no output".into());
    }
    if one != two {
        return Err("report smoke: --threads 1 and --threads 2 report bytes differ".into());
    }
    eprintln!(
        "==> report smoke: {} byte(s), identical at 1 and 2 threads",
        one.len()
    );
    Ok(())
}

/// Multi-PoP pipeline smoke: split a small world across 3 points of
/// presence with `pop-run`, `merge` the emitted partial aggregates, and
/// require the merged report bytes to equal a single-machine `report` of
/// the same flags. This is the merge pipeline's headline identity, run
/// against the real binary end to end.
fn multi_pop_smoke() -> Result<(), String> {
    let root = repo_root();
    let dir = root.join("target").join("xtask-pop-smoke");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("multi-pop smoke: mkdir: {e}"))?;
    let world_flags = ["--sessions", "4000", "--days", "2", "--seed", "20230112"];
    let tamperscope = |step: &str, args: &[&str]| -> Result<Vec<u8>, String> {
        let out = Command::new("cargo")
            .args(["run", "--release", "--quiet", "--bin", "tamperscope", "--"])
            .args(args)
            .current_dir(&root)
            .output()
            .map_err(|e| format!("multi-pop smoke: failed to spawn cargo: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "multi-pop smoke: {step} exited with {}:\n{}",
                out.status,
                String::from_utf8_lossy(&out.stderr)
            ));
        }
        Ok(out.stdout)
    };

    let dir_s = dir.to_string_lossy().into_owned();
    eprintln!("==> multi-pop smoke: tamperscope pop-run --pops 3 --out {dir_s}");
    let mut args: Vec<&str> = vec!["pop-run", "--pops", "3", "--out", &dir_s];
    args.extend_from_slice(&world_flags);
    tamperscope("pop-run", &args)?;

    let parts: Vec<String> = (0..3)
        .map(|i| {
            dir.join(format!("pop{i}.agg"))
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    for p in &parts {
        if !std::path::Path::new(p).exists() {
            return Err(format!("multi-pop smoke: pop-run did not write {p}"));
        }
    }
    eprintln!("==> multi-pop smoke: tamperscope merge pop0..2.agg");
    let mut args: Vec<&str> = vec!["merge"];
    args.extend(parts.iter().map(String::as_str));
    args.extend_from_slice(&world_flags);
    let merged = tamperscope("merge", &args)?;

    eprintln!("==> multi-pop smoke: tamperscope report (single-machine reference)");
    let mut args: Vec<&str> = vec!["report", "--threads", "2"];
    args.extend_from_slice(&world_flags);
    let single = tamperscope("report", &args)?;

    if merged.is_empty() {
        return Err("multi-pop smoke: merge produced no output".into());
    }
    if merged != single {
        return Err(
            "multi-pop smoke: merged 3-PoP report differs from the single-machine report".into(),
        );
    }
    eprintln!(
        "==> multi-pop smoke: {} byte(s), 3-PoP merge identical to single run",
        merged.len()
    );
    Ok(())
}

/// Merge throughput smoke: run the `merge` bench (decode + fold of 8
/// per-PoP partials, with its built-in unsplit-fold byte identity
/// assertion) against a scratch path, and require a sane, non-zero
/// throughput row. The committed `BENCH_merge.json` is the reference
/// artifact; this step proves the bench still runs and the identity
/// still holds without holding CI hostage to host noise.
fn merge_bench_smoke() -> Result<(), String> {
    let root = repo_root();
    let scratch = root.join("target").join("xtask-merge-bench.json");
    let _ = std::fs::remove_file(&scratch);
    eprintln!("==> merge bench: cargo bench --bench merge");
    let status = Command::new("cargo")
        .args(["bench", "-q", "--bench", "merge", "-p", "tamper-bench"])
        .env("BENCH_OUT_PATH", &scratch)
        .current_dir(&root)
        .stdout(std::process::Stdio::null())
        .status()
        .map_err(|e| format!("merge bench: failed to spawn cargo: {e}"))?;
    if !status.success() {
        return Err(format!("merge bench: bench exited with {status}"));
    }
    let text = std::fs::read_to_string(&scratch)
        .map_err(|e| format!("merge bench: bench wrote no JSON: {e}"))?;
    let run = bench_numbers(&text).map_err(|e| format!("merge bench: bench output: {e}"))?;
    if run.batched <= 0.0 {
        return Err("merge bench: zero merged flows/s".into());
    }
    eprintln!("==> merge bench: {:.0} merged flows/s", run.batched);
    Ok(())
}

/// Throughput regression smoke: re-run the `classify_stream` bench and
/// compare its single-thread flows/s against the committed
/// `BENCH_classify_stream.json` at the repo root. A drop of more than 20%
/// below the committed number fails the gate — that is the margin between
/// "host noise" and "someone put a per-packet allocation back in the hot
/// path". On a shared box, though, external load alone can cost 20%; the
/// bench's own legacy-path row is the control for that. The legacy code
/// is untouched by hot-path work and runs in the same process seconds
/// apart, so genuine regressions collapse the batched/legacy *ratio*
/// while host load leaves it intact: an absolute drop is forgiven only
/// when the ratio stayed within 20% of the committed ratio. Three
/// attempts guard against one unlucky scheduling window; the bench
/// writes to a scratch path so the committed artifact stays untouched.
fn throughput_smoke() -> Result<(), String> {
    let root = repo_root();
    let committed = root.join("BENCH_classify_stream.json");
    let text = std::fs::read_to_string(&committed).map_err(|e| {
        format!(
            "throughput smoke: committed baseline {} unreadable: {e}",
            committed.display()
        )
    })?;
    let base =
        bench_numbers(&text).map_err(|e| format!("throughput smoke: committed baseline: {e}"))?;
    let floor = base.batched * 0.8;
    let ratio_floor = base.ratio().map(|r| r * 0.8);
    let scratch = root.join("target").join("xtask-bench-smoke.json");
    let mut best = 0f64;
    for attempt in 1..=3 {
        let _ = std::fs::remove_file(&scratch);
        eprintln!(
            "==> throughput smoke: classify_stream attempt {attempt} \
             (floor {floor:.0} flows/s)"
        );
        let status = Command::new("cargo")
            .args([
                "bench",
                "-q",
                "--bench",
                "classify_stream",
                "-p",
                "tamper-bench",
            ])
            .env("BENCH_OUT_PATH", &scratch)
            .current_dir(&root)
            .stdout(std::process::Stdio::null())
            .status()
            .map_err(|e| format!("throughput smoke: failed to spawn cargo: {e}"))?;
        if !status.success() {
            return Err(format!("throughput smoke: bench exited with {status}"));
        }
        let text = std::fs::read_to_string(&scratch)
            .map_err(|e| format!("throughput smoke: bench wrote no JSON: {e}"))?;
        let run =
            bench_numbers(&text).map_err(|e| format!("throughput smoke: bench output: {e}"))?;
        if run.batched >= floor {
            eprintln!(
                "==> throughput smoke: {:.0} flows/s (baseline {:.0}, floor {floor:.0})",
                run.batched, base.batched
            );
            return Ok(());
        }
        if let (Some(rf), Some(r)) = (ratio_floor, run.ratio()) {
            if r >= rf {
                eprintln!(
                    "==> throughput smoke: {:.0} flows/s is under the floor, but the \
                     legacy control slowed to match ({:.2}x vs committed {:.2}x) — \
                     host load, not a regression",
                    run.batched,
                    r,
                    base.ratio().unwrap_or(0.0)
                );
                return Ok(());
            }
        }
        best = best.max(run.batched);
        eprintln!(
            "==> throughput smoke: attempt {attempt} measured {:.0} < floor {floor:.0}",
            run.batched
        );
    }
    Err(format!(
        "throughput smoke: single-thread classify_stream stayed below 80% of the \
         committed baseline across 3 runs without the legacy control slowing to \
         match (best {best:.0} flows/s, floor {floor:.0}, baseline {:.0})",
        base.batched
    ))
}

/// The two single-thread throughput numbers of a bench JSON document:
/// the batched engine path and the legacy per-flow control.
struct BenchNumbers {
    batched: f64,
    legacy: Option<f64>,
}

impl BenchNumbers {
    /// Batched-over-legacy speedup, when the control row is present.
    fn ratio(&self) -> Option<f64> {
        self.legacy.filter(|&l| l > 0.0).map(|l| self.batched / l)
    }
}

fn bench_numbers(text: &str) -> Result<BenchNumbers, String> {
    let doc = tamper_worldgen::json::Json::parse(text.trim())
        .map_err(|e| format!("does not parse: {e}"))?;
    let batched = doc
        .get("runs")
        .and_then(|v| v.as_array())
        .and_then(|runs| {
            runs.iter().find_map(|run| {
                if run.get("threads")?.as_u64()? != 1 {
                    return None;
                }
                run.get("flows_per_sec")?.as_u64().map(|v| v as f64)
            })
        })
        .ok_or_else(|| "no single-thread run row".to_string())?;
    let legacy = doc
        .get("legacy")
        .and_then(|l| l.get("flows_per_sec"))
        .and_then(|v| v.as_u64())
        .map(|v| v as f64);
    Ok(BenchNumbers { batched, legacy })
}

/// Pinned proptest environment for the CI gate: an explicit case count
/// and generation seed, so every CI run draws the identical case stream
/// regardless of local defaults or per-test overrides.
const PROPTEST_ENV: &[(&str, &str)] = &[("PROPTEST_CASES", "64"), ("PROPTEST_SEED", "20230112")];

fn ci() -> Result<(), String> {
    let mut sw = Stopwatch::new();
    let gate: Result<(), String> = (|| {
        sw.time("fmt", || run("fmt", "cargo", &["fmt", "--all", "--check"]))?;
        sw.time("clippy", || {
            run(
                "clippy",
                "cargo",
                &[
                    "clippy",
                    "--workspace",
                    "--all-targets",
                    "--",
                    "-D",
                    "warnings",
                ],
            )
        })?;
        sw.time("build", || run("build", "cargo", &["build", "--release"]))?;
        sw.time("test", || {
            run("test", "cargo", &["test", "--workspace", "-q"])
        })?;
        // The headline guarantee deserves its own gate: run the determinism
        // suite again so a flaky scheduling-dependent divergence has a second
        // chance to surface outside the big batch.
        sw.time("determinism", || {
            run(
                "determinism",
                "cargo",
                &["test", "-q", "--test", "engine_determinism"],
            )
        })?;
        sw.time("golden corpus", || {
            run(
                "golden corpus",
                "cargo",
                &["test", "-q", "--test", "golden_corpus"],
            )
        })?;
        // The zero-allocation proof behind tamperlint's hot-path-alloc
        // rule, and the linter's own fixture suite, each get a gated step.
        sw.time("alloc discipline", || {
            run(
                "alloc discipline",
                "cargo",
                &["test", "-q", "--test", "alloc_discipline"],
            )
        })?;
        sw.time("lint suite", || {
            run("lint suite", "cargo", &["test", "-q", "-p", "tamper-lint"])
        })?;
        // The proptest suites re-run with the case count and seed pinned,
        // one step per test binary so its wall time lands in the summary.
        for suite in ["properties", "state_machine"] {
            sw.time(&format!("proptest {suite}"), || {
                run_env(
                    &format!("proptest {suite}"),
                    "cargo",
                    &["test", "-q", "--test", suite],
                    PROPTEST_ENV,
                )
            })?;
        }
        sw.time("metrics smoke", metrics_smoke)?;
        sw.time("report smoke", report_determinism_smoke)?;
        sw.time("multi-pop smoke", multi_pop_smoke)?;
        sw.time("throughput smoke", throughput_smoke)?;
        sw.time("merge bench", merge_bench_smoke)?;
        sw.time("analyze", analyze_cold_warm)?;
        sw.time("lint bench", lint_bench)?;
        Ok(())
    })();
    sw.summarize();
    gate?;
    eprintln!("==> ci: all green");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let task = args.first().map(String::as_str).unwrap_or_default();
    let result = match task {
        "ci" => ci(),
        "analyze" => {
            if let Some(pos) = args.iter().position(|a| a == "--explain") {
                let Some(rule) = args.get(pos + 1) else {
                    eprintln!(
                        "xtask: --explain needs a rule name; one of:\n  {}",
                        tamper_lint::RULES.join("\n  ")
                    );
                    return ExitCode::FAILURE;
                };
                match tamper_lint::rules::explain(rule) {
                    Some(text) => {
                        println!("{rule}\n\n{text}");
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "xtask: unknown rule {rule:?}; one of:\n  {}",
                            tamper_lint::RULES.join("\n  ")
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            let json = args.iter().any(|a| a == "--json");
            let deny_new = args.iter().any(|a| a == "--deny-new");
            let write = args.iter().any(|a| a == "--write-baseline");
            let prune = args.iter().any(|a| a == "--prune-baseline");
            let use_cache = !args.iter().any(|a| a == "--no-cache");
            let mode = match (write, deny_new, prune) {
                (false, false, false) => AnalyzeMode::Strict,
                (true, false, false) => AnalyzeMode::WriteBaseline,
                (false, true, false) => AnalyzeMode::DenyNew,
                (false, false, true) => AnalyzeMode::PruneBaseline,
                _ => {
                    eprintln!(
                        "xtask: --write-baseline, --deny-new, and --prune-baseline \
                         are mutually exclusive"
                    );
                    return ExitCode::FAILURE;
                }
            };
            analyze(json, mode, use_cache)
        }
        _ => Err(format!(
            "unknown task {task:?}\n\nUSAGE: cargo xtask <task>\n\nTASKS:\n  \
             ci                 fmt + clippy + release build + workspace tests + \
             determinism gates + alloc discipline + lint suite + metrics + \
             report + multi-pop + throughput + merge-bench smokes + \
             tamperlint cold+warm --deny-new + lint bench\n  \
             analyze [--json] [--deny-new] [--write-baseline] [--prune-baseline]\n          \
             [--no-cache] [--explain <rule>]\n                     \
             tamperlint static-analysis gate (determinism, purity, growth, \
             panic-safety, wraparound, taxonomy, dataflow); --deny-new fails \
             only on fingerprints absent from tamperlint.baseline, \
             --write-baseline regenerates it, --prune-baseline drops stale \
             entries, --no-cache skips the incremental cache, --explain \
             prints one rule's rationale"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("xtask: {msg}");
            ExitCode::FAILURE
        }
    }
}
